"""Figure 3 — PLT reduction across the throughput × latency grid.

The paper's headline evaluation (and its in-text claims):

- little improvement at 8 Mbps, large at 60 Mbps,
- improvement grows with latency at fixed throughput,
- ~30 % average reduction; 60 Mbps / 40 ms ≈ median global 5G.

The bench runs a subsampled corpus by default (REPRO_BENCH_SITES
overrides; EXPERIMENTS.md records a full-corpus run).  One grid is
computed once per session and shared by the assertions.
"""

import os

import pytest

from repro.experiments.figure3 import (PAPER_REVISIT_DELAYS_S, run_figure3)
from repro.netsim.clock import MINUTE, HOUR, WEEK
from repro.workload.corpus import make_corpus

SITES = int(os.environ.get("REPRO_BENCH_SITES", "8"))
DELAYS = (1 * MINUTE, 6 * HOUR, 1 * WEEK)
THROUGHPUTS = (8.0, 16.0, 30.0, 60.0)
LATENCIES = (10.0, 40.0, 100.0)


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(corpus=make_corpus(),
                       throughputs_mbps=THROUGHPUTS,
                       latencies_ms=LATENCIES,
                       delays_s=DELAYS,
                       sites=SITES)


def test_figure3_grid(benchmark, figure3, save_result):
    result = benchmark.pedantic(lambda: figure3, rounds=1, iterations=1)
    save_result("figure3_grid", result.format())
    benchmark.extra_info["overall_mean_reduction_pct"] = round(
        result.overall_mean_reduction * 100, 1)

    # catalyst wins every cell
    for cell in result.cells:
        assert cell.mean_reduction > 0, cell.label

    # bandwidth-bound corner is small; latency-bound corner is large
    worst = result.cell(8.0, 10.0).mean_reduction
    best = result.cell(60.0, 100.0).mean_reduction
    assert worst < 0.15
    assert best > 0.30
    assert best > 3 * worst


def test_figure3_monotone_in_latency(figure3, benchmark):
    """At fixed throughput, higher latency -> bigger reduction."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for mbps in THROUGHPUTS:
        series = [figure3.cell(mbps, rtt).mean_reduction
                  for rtt in LATENCIES]
        assert series == sorted(series), f"{mbps} Mbps: {series}"


def test_figure3_monotone_in_throughput(figure3, benchmark):
    """At fixed latency, higher throughput -> bigger reduction."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rtt in LATENCIES:
        series = [figure3.cell(mbps, rtt).mean_reduction
                  for mbps in THROUGHPUTS]
        assert series == sorted(series), f"{rtt} ms: {series}"


def test_headline_30pct(figure3, benchmark, save_result):
    """The paper's headline: ~30 % average PLT reduction, anchored at the
    median-5G condition (60 Mbps / 40 ms)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headline = figure3.cell(60.0, 40.0)
    overall = figure3.overall_mean_reduction
    save_result("headline_claim", "\n".join([
        f"paper claim:        ~30% average PLT reduction",
        f"overall grid mean:  {overall * 100:.1f}%",
        f"60Mbps/40ms cell:   {headline.mean_reduction * 100:.1f}%"
        f"  (std {headline.mean_standard_plt_ms:.0f}ms ->"
        f" cat {headline.mean_catalyst_plt_ms:.0f}ms,"
        f" n={headline.pairs})",
    ]))
    # band, not point: the substrate is a simulator, the shape must hold
    assert 0.15 <= overall <= 0.50
    assert 0.25 <= headline.mean_reduction <= 0.55


def test_figure3_delay_sensitivity(benchmark, save_result):
    """Reduction grows with revisit delay (more of the cache expired)."""
    corpus = make_corpus().sample(max(4, SITES // 2), seed=3)

    def run():
        rows = []
        for delay in PAPER_REVISIT_DELAYS_S:
            result = run_figure3(corpus=corpus, throughputs_mbps=(60.0,),
                                 latencies_ms=(40.0,), delays_s=(delay,))
            rows.append((delay, result.cells[0].mean_reduction))
        return rows
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.experiments.report import format_pct, format_table
    from repro.netsim.clock import format_duration
    save_result("figure3_delay_series", format_table(
        ["revisit delay", "PLT reduction @60Mbps/40ms"],
        [(format_duration(delay), format_pct(reduction))
         for delay, reduction in rows]))
    reductions = [reduction for _, reduction in rows]
    assert reductions[-1] > reductions[0]
