"""First-render (FCP-proxy) bench — the paper's deferred metric (§6).

The paper postpones FCP/SI/TTI evaluation to future work; this bench
delivers the first-render cut: the improvement must not be an onLoad
artifact — users see the benefit at render time too.
"""

from repro.experiments.first_render import (format_first_render,
                                            run_first_render)


def test_first_render_improvement(benchmark, save_result):
    results = benchmark.pedantic(lambda: run_first_render(sites=6),
                                 rounds=1, iterations=1)
    save_result("first_render", format_first_render(results))

    for result in results:
        benchmark.extra_info[result.conditions] = \
            round(result.first_render_reduction * 100, 1)
        # the win is visible at render time, not only at onLoad
        assert result.first_render_reduction > 0.15
        # and within sane distance of the PLT reduction
        assert abs(result.first_render_reduction
                   - result.plt_reduction) < 0.35
