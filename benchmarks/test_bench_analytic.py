"""Ablation: the closed-form PLT model vs the discrete-event simulator.

If the analytic expectation (built from nothing but RTT counts, byte
sums and churn probabilities) ranks conditions and modes the same way the
simulator does, the simulator's Figure 3 numbers follow from the modelled
mechanisms — not from implementation accidents.
"""

import pytest

from repro.core.analysis import AnalyticModel
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.experiments.report import format_table
from repro.netsim.clock import DAY
from repro.netsim.link import NetworkConditions
from repro.workload.corpus import make_corpus

CONDITIONS = [NetworkConditions.of(mbps, rtt)
              for mbps in (8.0, 60.0) for rtt in (10.0, 40.0, 100.0)]


def _spearman(a, b):
    def ranks(values):
        order = sorted(range(len(values)), key=values.__getitem__)
        rank = [0.0] * len(values)
        for position, index in enumerate(order):
            rank[index] = float(position)
        return rank
    ra, rb = ranks(a), ranks(b)
    n = len(a)
    mean = (n - 1) / 2.0
    cov = sum((x - mean) * (y - mean) for x, y in zip(ra, rb))
    var = sum((x - mean) ** 2 for x in ra)
    return cov / var if var else 1.0


@pytest.fixture(scope="module")
def paired_estimates():
    sites = list(make_corpus().sample(4, seed=41))
    rows = []
    for site in sites:
        for conditions in CONDITIONS:
            for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
                analytic = AnalyticModel(conditions).estimate_plt(
                    site, mode, DAY)
                setup = build_mode(mode, site)
                outcomes = run_visit_sequence(setup, conditions,
                                              [0.0, DAY])
                simulated = outcomes[1].result.plt_s
                rows.append((site.origin, conditions.describe(),
                             mode.value, analytic, simulated))
    return rows


def test_analytic_tracks_simulator(benchmark, paired_estimates,
                                   save_result):
    rows = benchmark.pedantic(lambda: paired_estimates, rounds=1,
                              iterations=1)
    analytic = [row[3] for row in rows]
    simulated = [row[4] for row in rows]
    rho = _spearman(analytic, simulated)
    save_result("analytic_vs_des", format_table(
        ["condition", "mode", "analytic ms", "simulated ms"],
        [[cond, mode, f"{a * 1000:.0f}", f"{s * 1000:.0f}"]
         for _, cond, mode, a, s in rows[:24]])
        + f"\n\nSpearman rank correlation (n={len(rows)}): {rho:.3f}")
    benchmark.extra_info["spearman_rho"] = round(rho, 3)
    assert rho > 0.85


def test_analytic_reduction_direction_agrees(paired_estimates, benchmark):
    """Per (site, condition): both models agree on who wins."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {}
    for origin, cond, mode, analytic, simulated in paired_estimates:
        by_key.setdefault((origin, cond), {})[mode] = (analytic, simulated)
    agreements = 0
    total = 0
    for pair in by_key.values():
        if len(pair) != 2:
            continue
        total += 1
        analytic_says = pair["catalyst"][0] <= pair["standard"][0]
        simulator_says = pair["catalyst"][1] <= pair["standard"][1]
        agreements += analytic_says == simulator_says
    assert total > 0
    assert agreements / total >= 0.9


def test_analytic_is_fast(benchmark):
    """The whole point of a closed form: thousands of estimates/second."""
    site = make_corpus().sample(1, seed=1)[0]
    model = AnalyticModel(NetworkConditions.of(60, 40))
    benchmark(lambda: model.estimate_plt(site, CachingMode.CATALYST, DAY))
