"""Ablation: the closed-form PLT model vs the discrete-event simulator.

If the analytic expectation (built from nothing but RTT counts, byte
sums and churn probabilities) ranks conditions and modes the same way the
simulator does, the simulator's Figure 3 numbers follow from the modelled
mechanisms — not from implementation accidents.

The ``analytic``-marked tests at the bottom are the vectorized-sweep CI
lane (``pytest -m analytic benchmarks/``).  Like the loadtest lane they
deliberately avoid the ``benchmark`` fixture: that lane installs plain
pytest only (and runs once with and once without numpy), so
pytest-benchmark may be absent.
"""

import time

import pytest

from repro.core.analysis import AnalyticModel
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.experiments.report import format_table
from repro.experiments.stats import spearman as _spearman
from repro.netsim.clock import DAY
from repro.netsim.link import NetworkConditions
from repro.workload.corpus import make_corpus

CONDITIONS = [NetworkConditions.of(mbps, rtt)
              for mbps in (8.0, 60.0) for rtt in (10.0, 40.0, 100.0)]

#: conservative wall-clock floors (estimates/s) for the shared-CI-box
#: versions of the BENCH_PR8 floors; the committed artifact records the
#: real 10^6 / 10^4 numbers and compare_bench gates the trajectory
SCALAR_FLOOR_PER_S = 2_000.0
VECTORIZED_CI_FLOOR_PER_S = 100_000.0
FALLBACK_CI_FLOOR_PER_S = 1_000.0


@pytest.fixture(scope="module")
def paired_estimates():
    sites = list(make_corpus().sample(4, seed=41))
    rows = []
    for site in sites:
        for conditions in CONDITIONS:
            for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
                analytic = AnalyticModel(conditions).estimate_plt(
                    site, mode, DAY)
                setup = build_mode(mode, site)
                outcomes = run_visit_sequence(setup, conditions,
                                              [0.0, DAY])
                simulated = outcomes[1].result.plt_s
                rows.append((site.origin, conditions.describe(),
                             mode.value, analytic, simulated))
    return rows


def test_analytic_tracks_simulator(benchmark, paired_estimates,
                                   save_result):
    rows = benchmark.pedantic(lambda: paired_estimates, rounds=1,
                              iterations=1)
    analytic = [row[3] for row in rows]
    simulated = [row[4] for row in rows]
    rho = _spearman(analytic, simulated)
    save_result("analytic_vs_des", format_table(
        ["condition", "mode", "analytic ms", "simulated ms"],
        [[cond, mode, f"{a * 1000:.0f}", f"{s * 1000:.0f}"]
         for _, cond, mode, a, s in rows[:24]])
        + f"\n\nSpearman rank correlation (n={len(rows)}): {rho:.3f}")
    benchmark.extra_info["spearman_rho"] = round(rho, 3)
    assert rho > 0.85


def test_analytic_reduction_direction_agrees(paired_estimates, benchmark):
    """Per (site, condition): both models agree on who wins."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {}
    for origin, cond, mode, analytic, simulated in paired_estimates:
        by_key.setdefault((origin, cond), {})[mode] = (analytic, simulated)
    agreements = 0
    total = 0
    for pair in by_key.values():
        if len(pair) != 2:
            continue
        total += 1
        analytic_says = pair["catalyst"][0] <= pair["standard"][0]
        simulator_says = pair["catalyst"][1] <= pair["standard"][1]
        agreements += analytic_says == simulator_says
    assert total > 0
    assert agreements / total >= 0.9


def test_analytic_is_fast(benchmark):
    """The whole point of a closed form: thousands of estimates/second.

    Besides the benchmark record, assert a hard floor so the scalar
    path (which the vectorized engine is property-tested against, and
    which prices churn straight from the stored periods rather than
    building churn objects per call) cannot silently regress.
    """
    site = make_corpus().sample(1, seed=1)[0]
    model = AnalyticModel(NetworkConditions.of(60, 40))
    benchmark(lambda: model.estimate_plt(site, CachingMode.CATALYST, DAY))

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(100):
            model.estimate_plt(site, CachingMode.CATALYST, DAY)
        best = min(best, time.perf_counter() - start)
    assert 100 / best >= SCALAR_FLOOR_PER_S


# ---------------------------------------------------------------------------
# Vectorized sweep lane (pytest -m analytic; no benchmark fixture)
# ---------------------------------------------------------------------------

@pytest.mark.analytic
def test_vectorized_matches_scalar_on_bench_grid():
    """Spot equivalence on the exact grid this module prices."""
    from repro.core.analysis_vec import (VectorAnalyticModel, compile_site,
                                         numpy_available)
    sites = list(make_corpus().sample(2, seed=41))
    modes = (CachingMode.STANDARD, CachingMode.CATALYST)
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    for backend in backends:
        model = VectorAnalyticModel(backend=backend)
        for site in sites:
            batch = model.batch_plt(compile_site(site), modes, (DAY,),
                                    CONDITIONS)
            for ci, conditions in enumerate(CONDITIONS):
                scalar_model = AnalyticModel(conditions)
                for mi, mode in enumerate(modes):
                    scalar = scalar_model.estimate_plt(site, mode, DAY)
                    vectorized = float(batch[ci][mi][0])
                    assert vectorized == pytest.approx(scalar, rel=1e-9)


@pytest.mark.analytic
def test_sweep_grid_artifact(save_result):
    """The full-grid sweep is sane and lands as a results artifact."""
    from repro.experiments.sweep import run_sweep
    result = run_sweep(sites=8, delays_s=(3600.0, 86400.0))
    save_result("analytic_sweep", result.format())
    cells = [value for row in result.reduction_grid for value in row]
    assert all(0.0 < value < 1.0 for value in cells)
    # The paper's latency story: at fixed throughput, catalyst's edge
    # grows with RTT (it removes round trips).
    top = result.reduction_grid[-1]  # highest throughput row
    assert top == sorted(top)


@pytest.mark.analytic
def test_sweep_validation_tracks_des(save_result):
    """`repro sweep --validate` semantics: seeded subgrid, rho gate."""
    from repro.experiments.sweep import validate_sweep
    validation = validate_sweep(sites=3, delays_s=(DAY,))
    save_result("sweep_validation", validation.format())
    assert validation.passed, (
        f"analytic-vs-DES rank correlation {validation.rho:.3f} "
        f"below {validation.min_rho}")


@pytest.mark.analytic
def test_analytic_bench_payload_and_floors():
    """Bench lane produces a valid manifest-stamped payload, and both
    backends clear (CI-derated) throughput floors."""
    from repro.core.analysis_vec import numpy_available
    from repro.experiments.sweep import (analytic_bench_payload,
                                         run_analytic_bench)
    from repro.obs.manifest import validate_manifest
    result = run_analytic_bench(sites=10, rounds=2)
    payload = analytic_bench_payload(result)
    assert payload["bench"] == "analytic_sweep"
    assert validate_manifest(payload["manifest"]) == []
    assert payload["manifest"]["config"]["sites"] == 10
    assert result.fallback_per_s >= FALLBACK_CI_FLOOR_PER_S
    if numpy_available():
        assert result.vectorized_per_s >= VECTORIZED_CI_FLOOR_PER_S
        assert ("estimates_per_s_vectorized"
                in payload["analytic_sweep"])
    else:
        assert result.vectorized_per_s is None
        assert ("estimates_per_s_vectorized"
                not in payload["analytic_sweep"])
