"""Fault sweep — resilience of standard vs. Catalyst caching.

Regenerates ``benchmarks/results/fault_sweep.txt``: the fault-rate ×
mode sweep, the ISSUE acceptance cell (5 % request loss at
60 Mbps / 40 ms), and the corrupted-``X-Etag-Config`` section.

The claims checked here:

- every page load completes at every swept fault rate (the retry
  machinery absorbs losses/resets/truncations/stalls),
- at 5 % request loss the Catalyst warm PLT does not exceed standard's,
- a damaged map never breaks the page — affected resources fall back to
  conditional revalidation.
"""

import os

import pytest

from repro.experiments.faults import run_fault_sweep

SITES = int(os.environ.get("REPRO_BENCH_SITES", "4"))
RATES = (0.0, 0.02, 0.05, 0.10)


@pytest.fixture(scope="module")
def sweep():
    return run_fault_sweep(rates=RATES, sites=SITES, seed=0)


@pytest.mark.faults
def test_fault_sweep(benchmark, sweep, save_result):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    save_result("fault_sweep", result.format())
    benchmark.extra_info["acceptance_holds"] = result.acceptance_holds

    # every cell completed every load at every swept rate
    for cell in result.cells:
        assert cell.all_complete, (cell.rate, cell.mode)

    # the ISSUE acceptance criterion
    assert result.acceptance_holds


@pytest.mark.faults
def test_corrupted_map_never_breaks_page(sweep):
    assert sweep.corruption, "corruption section missing"
    for cell in sweep.corruption:
        assert cell.complete, cell.corruption
        # with the map gone or damaged, affected resources must arrive
        # via the standard conditional-revalidation path
        assert cell.revalidated > 0, cell.corruption


@pytest.mark.faults
def test_faults_raise_retries_not_failures(sweep):
    clean = [c for c in sweep.cells if c.rate == 0.0]
    faulty = [c for c in sweep.cells if c.rate >= 0.05]
    assert all(c.retries == 0 for c in clean)
    assert sum(c.retries for c in faulty) > 0
    assert all(c.failed_resources == 0 for c in faulty)
