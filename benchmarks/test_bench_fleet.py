"""Population-fleet bench lane (``pytest -m fleet benchmarks/``).

Like the analytic and loadtest lanes this deliberately avoids the
``benchmark`` fixture: the fleet CI job installs plain pytest (+
hypothesis) and runs once with and once without numpy.  Floors here are
CI-derated versions of the committed ``BENCH_PR10.json`` numbers;
``compare_bench`` gates the real trajectory.
"""

import pytest

from repro.core.analysis_vec import numpy_available
from repro.experiments.fleet import (FLEET_POPULATION_FLOOR,
                                     default_population,
                                     fleet_bench_payload,
                                     run_fleet_analytic, run_fleet_bench,
                                     run_fleet_des)
from repro.obs.manifest import validate_manifest
from repro.workload.corpus import make_corpus

pytestmark = pytest.mark.fleet

#: shared-CI-box derated floors (the artifact records the real rates)
VECTORIZED_CI_FLOOR_PER_S = 1_000_000.0
FALLBACK_CI_FLOOR_PER_S = 100_000.0
DES_CI_FLOOR_PER_S = 0.5


@pytest.fixture(scope="module")
def corpus():
    return make_corpus()


def test_analytic_prices_million_visit_population(corpus, save_result):
    """The tentpole claim: a 10⁶-visit population prices closed-form in
    seconds on either backend, at fleet-realistic Zipf/cohort shape."""
    spec = default_population()          # 20k users, 1M measured visits
    assert spec.n_measured >= FLEET_POPULATION_FLOOR
    result = run_fleet_analytic(spec, corpus)
    save_result("population_fleet", result.format())
    floor = (VECTORIZED_CI_FLOOR_PER_S if result.backend == "numpy"
             else FALLBACK_CI_FLOOR_PER_S)
    assert result.visits_per_s >= floor, (
        f"{result.backend} backend priced {result.visits_per_s:,.0f} "
        f"visits/s, floor {floor:,.0f}")
    # pricing must be visit-weighted, not degenerate
    by_mode = {m.mode: m for m in result.fleet}
    assert by_mode["catalyst"].mean_ms < by_mode["standard"].mean_ms
    assert by_mode["catalyst"].hit_ratio > by_mode["standard"].hit_ratio


def test_des_sampled_replay_clears_floor(corpus):
    spec = default_population(users=2_000, measured=100_000)
    result = run_fleet_des(spec, corpus, sample=6, max_workers=0)
    assert result.visits == 6
    assert result.visits_per_s >= DES_CI_FLOOR_PER_S


def test_fleet_bench_payload_and_floors(save_result):
    """``repro fleet --bench`` semantics end to end on the bench
    population: floors met, manifest valid, backend-conditional key."""
    result = run_fleet_bench(rounds=1, des_sample=3)
    payload = fleet_bench_payload(result)
    save_result("population_fleet_bench", result.format())
    assert payload["bench"] == "population_fleet"
    assert validate_manifest(payload["manifest"]) == []
    assert payload["manifest"]["config"]["users"] == 1_000_000
    assert result.population_visits >= FLEET_POPULATION_FLOOR
    assert result.meets_floors, result.format()
    metrics = payload["population_fleet"]
    if numpy_available():
        assert "analytic_visits_per_s_vectorized" in metrics
    else:
        assert "analytic_visits_per_s_vectorized" not in metrics
    assert metrics["analytic_visits_per_s_fallback"] \
        >= FALLBACK_CI_FLOOR_PER_S
