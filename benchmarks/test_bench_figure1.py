"""Figure 1 — the worked example's three timelines.

Regenerates the paper's mechanism figure: (a) cold first visit,
(b) status-quo revisit two hours later, (c) CacheCatalyst revisit.
The *shape* assertions encode exactly what the figure shows: which
resources touch the network in each panel and the resulting PLT order.
"""

import pytest

from repro.browser.metrics import FetchSource
from repro.experiments.figure1 import run_figure1
from repro.netsim.link import NetworkConditions


@pytest.fixture(scope="module")
def panels():
    return run_figure1(NetworkConditions.of(60, 40))


def test_figure1_panels(benchmark, save_result):
    panels = benchmark.pedantic(
        lambda: run_figure1(NetworkConditions.of(60, 40)),
        rounds=3, iterations=1)
    save_result("figure1_timelines", panels.format())

    benchmark.extra_info["cold_plt_ms"] = round(panels.cold.plt_ms, 1)
    benchmark.extra_info["standard_revisit_plt_ms"] = round(
        panels.standard_revisit.plt_ms, 1)
    benchmark.extra_info["catalyst_revisit_plt_ms"] = round(
        panels.catalyst_revisit.plt_ms, 1)

    # (a): everything over the network
    assert all(e.source is FetchSource.NETWORK for e in panels.cold.events)
    # (b): a.css/c.js cached, b.js revalidated (wasted RTT), d.jpg refetched
    b_sources = {e.url: e.source for e in panels.standard_revisit.events}
    assert b_sources["/a.css"] is FetchSource.HTTP_CACHE
    assert b_sources["/b.js"] is FetchSource.REVALIDATED
    assert b_sources["/d.jpg"] is FetchSource.NETWORK
    # (c): only index + d.jpg touch the network
    network_c = {e.url for e in panels.catalyst_revisit.events
                 if e.source in (FetchSource.NETWORK,
                                 FetchSource.REVALIDATED)}
    assert network_c == {"/index.html", "/d.jpg"}
    # PLT order: (a) > (b) > (c)
    assert panels.cold.plt_ms > panels.standard_revisit.plt_ms \
        > panels.catalyst_revisit.plt_ms


def test_figure1_rtt_accounting(benchmark, save_result):
    """The saved round trips themselves, counted explicitly."""
    panels = benchmark.pedantic(
        lambda: run_figure1(NetworkConditions.of(60, 40)),
        rounds=1, iterations=1)
    rtts_b = panels.standard_revisit.rtts_paid
    rtts_c = panels.catalyst_revisit.rtts_paid
    save_result("figure1_rtts", "\n".join([
        f"standard revisit RTTs paid: {rtts_b:g}",
        f"catalyst revisit RTTs paid: {rtts_c:g}",
        f"round trips eliminated:     {rtts_b - rtts_c:g}",
    ]))
    assert rtts_c < rtts_b
