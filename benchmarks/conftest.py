"""Shared benchmark fixtures.

Every bench regenerates one of the paper's figures/claims.  Because
pytest captures stdout, each bench also writes its table to
``benchmarks/results/<name>.txt`` so the regenerated figures survive the
run as artifacts (referenced from EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a named text artifact (and echo it for -s runs)."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _save
