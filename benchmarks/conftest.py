"""Shared benchmark fixtures.

Every bench regenerates one of the paper's figures/claims.  Because
pytest captures stdout, each bench also writes its table to
``benchmarks/results/<name>.txt`` so the regenerated figures survive the
run as artifacts (referenced from EXPERIMENTS.md).

Each ``save_result`` call also records a run-manifest entry in
``benchmarks/results/RUN_MANIFEST.json`` — one provenance stamp per
artifact name (git rev, interpreter, platform, time) — so a directory
of ``.txt`` tables is attributable to the code that produced it.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SIDECAR = RESULTS_DIR / "RUN_MANIFEST.json"

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


def _record_manifest(name: str) -> None:
    from repro.obs.manifest import build_manifest

    try:
        index = json.loads(SIDECAR.read_text())
    except (OSError, json.JSONDecodeError):
        index = {}
    if not isinstance(index, dict):
        index = {}
    index[name] = build_manifest(config={"artifact": name})
    SIDECAR.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a named text artifact (and echo it for -s runs)."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        _record_manifest(name)
        print(f"\n=== {name} ===\n{text}\n")

    return _save
