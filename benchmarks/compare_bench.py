"""Perf-trajectory gate: diff the newest ``BENCH_*.json`` artifacts.

Each PR that touches a hot path appends a ``BENCH_PR<N>.json`` to
``benchmarks/results/`` (via ``python -m repro bench --out ...``).
Artifacts belong to a *bench family* (the payload's ``"bench"`` field —
``server_hot_path``, ``simcore``, ...); within each family this script
compares the newest artifact against its predecessor and fails when
throughput regressed by more than the threshold (25 % by default) — a
cheap, machine-checkable guard that perf never silently slides
backwards across PRs.  Families are independent: a new simcore artifact
is never diffed against a server hot-path one.

Every artifact must carry a **run manifest** (``"manifest"`` key, see
:mod:`repro.obs.manifest`): provenance for the numbers — config, seeds,
git rev, interpreter, workers, wall time.  A missing or schema-invalid
manifest fails the gate loudly (a provenance-free artifact proves
nothing), and two artifacts whose manifest ``config`` identities differ
are *refused* rather than compared — a 3-site run diffed against an
8-site run is not a regression, it is a category error.

Usage::

    python benchmarks/compare_bench.py            # all families
    python benchmarks/compare_bench.py --bench simcore --threshold 0.10

Exit status: 0 when there is nothing to compare (zero or one artifact
per family) or every family is within the threshold; 1 on a regression,
an unreadable artifact, a missing/invalid manifest, or a refused
cross-config comparison.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Optional

# Standalone script: make repro.obs importable without PYTHONPATH.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))

from repro.obs.manifest import comparable, validate_manifest  # noqa: E402

DEFAULT_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_THRESHOLD = 0.25

#: dotted payload paths that must not regress (higher = better), per
#: bench family; families absent here fall back to THROUGHPUT_KEYS
BENCH_KEYS: dict[str, tuple[str, ...]] = {
    "server_hot_path": ("throughput_rps.cached_warm",),
    "simcore": ("simcore.events_per_s", "simcore.transfers_per_s",
                "simcore.visits_per_s"),
    "serving_tier": ("sustained_rps.shards_1", "sustained_rps.shards_4",
                     "sustained_rps.scaling_x"),
    "analytic_sweep": ("analytic_sweep.estimates_per_s_vectorized",
                       "analytic_sweep.estimates_per_s_fallback"),
    "population_fleet": (
        "population_fleet.analytic_visits_per_s_vectorized",
        "population_fleet.analytic_visits_per_s_fallback",
        "population_fleet.des_visits_per_s"),
}

#: fallback key set for payloads without a recognized ``"bench"`` field
THROUGHPUT_KEYS = ("throughput_rps.cached_warm",)

_PR_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def find_benches(directory: pathlib.Path) -> list[pathlib.Path]:
    """``BENCH_*.json`` artifacts ordered oldest -> newest by PR number."""

    def order(path: pathlib.Path) -> tuple:
        match = _PR_RE.search(path.name)
        # Non-PR-numbered artifacts sort by name after the numbered ones.
        return (0, int(match.group(1))) if match else (1, path.name)

    return sorted(directory.glob("BENCH_*.json"), key=order)


def lookup(payload: dict, dotted: str) -> Optional[float]:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def keys_for(payload: dict) -> tuple[str, ...]:
    """The gated metric paths for a payload's bench family."""
    return BENCH_KEYS.get(payload.get("bench", ""), THROUGHPUT_KEYS)


def manifest_errors(path: pathlib.Path, payload: dict) -> list[str]:
    """Provenance problems for one artifact, prefixed with its name."""
    manifest = payload.get("manifest")
    if manifest is None:
        return [f"{path.name}: missing run manifest "
                "(regenerate with `python -m repro bench`)"]
    return [f"{path.name}: {error}"
            for error in validate_manifest(manifest)]


def compare(previous: dict, newest: dict,
            threshold: float = DEFAULT_THRESHOLD) -> tuple[bool, list[str]]:
    """Check the newest payload against the previous one.

    Returns ``(ok, messages)``; a metric missing from either side is
    reported but not fatal (schemas may grow across PRs).
    """
    ok = True
    messages: list[str] = []
    for key in keys_for(newest):
        old = lookup(previous, key)
        new = lookup(newest, key)
        if old is None or new is None:
            messages.append(f"{key}: not comparable "
                            f"(old={old!r}, new={new!r})")
            continue
        if old <= 0:
            messages.append(f"{key}: previous value {old} not positive; "
                            "skipped")
            continue
        change = (new - old) / old
        if change < -threshold:
            ok = False
            messages.append(
                f"REGRESSION {key}: {old:,.1f} -> {new:,.1f} "
                f"({change:+.1%}, threshold -{threshold:.0%})")
        else:
            messages.append(f"{key}: {old:,.1f} -> {new:,.1f} "
                            f"({change:+.1%}) ok")
    return ok, messages


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold throughput regression between the "
                    "two newest BENCH_*.json artifacts of each bench family")
    parser.add_argument("--dir", default=str(DEFAULT_DIR),
                        help="artifact directory (default benchmarks/results)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop (default 0.25)")
    parser.add_argument("--bench", default=None,
                        help="gate only this bench family "
                             "(e.g. simcore, server_hot_path)")
    args = parser.parse_args(argv)

    directory = pathlib.Path(args.dir)
    benches = find_benches(directory) if directory.is_dir() else []

    # Load every artifact once, bucketing by bench family in trajectory
    # order; any unreadable artifact fails the gate outright, and so
    # does any artifact shipped without a (valid) run manifest — an
    # unattributed number cannot gate anything.
    families: dict[str, list[tuple[pathlib.Path, dict]]] = {}
    provenance_problems: list[str] = []
    for path in benches:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"compare_bench: unreadable artifact: {exc}",
                  file=sys.stderr)
            return 1
        if not isinstance(payload, dict):
            payload = {}
        provenance_problems.extend(manifest_errors(path, payload))
        family = payload.get("bench", "server_hot_path")
        families.setdefault(family, []).append((path, payload))
    if args.bench is not None:
        families = {name: runs for name, runs in families.items()
                    if name == args.bench}
        scoped = {path.name for runs in families.values()
                  for path, _ in runs}
        provenance_problems = [
            problem for problem in provenance_problems
            if problem.split(":", 1)[0] in scoped]
    if provenance_problems:
        for problem in provenance_problems:
            print(f"compare_bench: PROVENANCE {problem}", file=sys.stderr)
        return 1

    pairs = {name: runs for name, runs in families.items()
             if len(runs) >= 2}
    if not pairs:
        total = sum(len(runs) for runs in families.values())
        print(f"compare_bench: {total} artifact(s) in {directory}; "
              "nothing to compare")
        return 0

    ok = True
    for name in sorted(pairs):
        (previous_path, previous), (newest_path, newest) = pairs[name][-2:]
        same, reason = comparable(previous["manifest"], newest["manifest"])
        if not same:
            print(f"[{name}] REFUSED {previous_path.name} "
                  f"-> {newest_path.name}: {reason}", file=sys.stderr)
            ok = False
            continue
        print(f"[{name}] comparing {previous_path.name} "
              f"-> {newest_path.name}")
        family_ok, messages = compare(previous, newest,
                                      threshold=args.threshold)
        ok = ok and family_ok
        for message in messages:
            print(f"  {message}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
