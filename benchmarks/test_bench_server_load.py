"""Server-load bench — §6's deferred "effect on web servers", measured.

Counts origin-side requests over a week-long visit schedule per mode.
Eliminated revalidations are requests the origin never has to serve;
the cost side is the stapling work (maps built, header bytes emitted).
"""

from repro.experiments.server_load import (format_server_load,
                                           run_server_load)


def test_server_load(benchmark, save_result):
    results = benchmark.pedantic(lambda: run_server_load(sites=5),
                                 rounds=1, iterations=1)
    save_result("server_load", format_server_load(results))

    by_mode = {r.mode: r for r in results}
    standard = by_mode["standard"]
    catalyst = by_mode["catalyst"]
    benchmark.extra_info["request_reduction_pct"] = round(
        (standard.origin_requests - catalyst.origin_requests)
        / standard.origin_requests * 100, 1)

    # catalyst serves strictly fewer origin requests than the status quo
    assert catalyst.origin_requests < standard.origin_requests
    # most of the saving comes from killed revalidations
    assert catalyst.not_modified < standard.not_modified / 2
    # the stapling work exists and is accounted
    assert catalyst.maps_stapled > 0
    assert catalyst.config_bytes > 0
    # session stapling (covering JS-discovered URLs) saves even more
    assert by_mode["catalyst-sessions"].origin_requests \
        <= catalyst.origin_requests
