"""§5 comparisons: CacheCatalyst vs Server Push, RDR, and Extreme Cache.

The paper argues each alternative qualitatively; these benches put the
arguments in numbers on the same workload:

- Server Push avoids request RTTs on *cold* loads but wastes bandwidth on
  warm ones (it cannot see the client's cache).
- RDR collapses dependency resolution to ~1 client RTT, but revisits gain
  nothing from the client cache and every visit re-ships the bundle.
- Extreme Cache fixes TTLs by estimation, at a measurable stale-serve
  risk the original paper never reported.
"""

import pytest

from repro.baselines.extreme_cache import ExtremeCacheProxy
from repro.baselines.rdr import RdrProxy
from repro.browser.engine import BrowserConfig, BrowserSession
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.experiments.harness import _stale_hits
from repro.experiments.report import format_table
from repro.netsim.clock import DAY
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.server.site import OriginSite
from repro.workload.corpus import make_corpus

COND = NetworkConditions.of(60, 40)
DELAY = DAY


@pytest.fixture(scope="module")
def sites():
    return list(make_corpus().sample(5, seed=23).frozen())


def rdr_pair(site_spec, conditions=COND):
    results = []
    for at_time in (0.0, DELAY):
        sim = Simulator()
        sim.run(until=at_time)
        proxy = RdrProxy(OriginSite(site_spec))
        link = Link(sim, conditions)
        results.append(sim.run_process(
            proxy.load(sim, link, "/index.html")))
    return results


def test_mode_comparison_table(benchmark, sites, save_result):
    """Cold and warm PLT plus warm bytes for every compared system."""
    modes = (CachingMode.NO_CACHE, CachingMode.STANDARD,
             CachingMode.PUSH_ALL, CachingMode.PUSH_BLOCKING,
             CachingMode.HINTS,
             CachingMode.CATALYST, CachingMode.CATALYST_SESSIONS,
             CachingMode.CATALYST_HINTS)

    def run():
        rows = {}
        for mode in modes:
            cold = warm = bytes_warm = 0.0
            for site in sites:
                setup = build_mode(mode, site)
                outcomes = run_visit_sequence(setup, COND, [0.0, DELAY])
                cold += outcomes[0].result.plt_ms
                warm += outcomes[1].result.plt_ms
                bytes_warm += outcomes[1].result.bytes_down
            n = len(sites)
            rows[mode.value] = (cold / n, warm / n, bytes_warm / n)
        # RDR is not a ModeSetup; measured with its own loader
        cold = warm = bytes_warm = 0.0
        for site in sites:
            first, revisit = rdr_pair(site)
            cold += first.plt_ms
            warm += revisit.plt_ms
            bytes_warm += revisit.bytes_down
        n = len(sites)
        rows["rdr"] = (cold / n, warm / n, bytes_warm / n)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("baseline_comparison", format_table(
        ["system", "cold PLT ms", "warm PLT ms", "warm bytes"],
        [[name, f"{cold:.0f}", f"{warm:.0f}", f"{int(nbytes):,}"]
         for name, (cold, warm, nbytes) in rows.items()]))

    # Shape assertions from §5:
    # 1. catalyst has the best warm PLT of the cache-respecting systems
    assert rows["catalyst"][1] <= rows["standard"][1]
    assert rows["catalyst"][1] <= rows["push-all"][1]
    # 1b. hints alone do not remove revalidation RTTs (§5): catalyst wins
    assert rows["catalyst"][1] <= rows["hints"][1]
    # 2. push wastes warm bytes relative to both standard and catalyst
    assert rows["push-all"][2] > rows["standard"][2]
    assert rows["push-all"][2] > rows["catalyst"][2]
    # 3. RDR's warm visit barely improves on its cold one and re-ships
    #    the bundle every time; catalyst ships almost nothing
    assert rows["rdr"][1] > rows["catalyst"][1]
    assert rows["rdr"][2] > 5 * rows["catalyst"][2]


def test_rdr_shines_only_at_high_latency(benchmark, sites, save_result):
    """RDR's value is collapsing dependency-resolution RTTs, so it beats a
    plain cold load on high-latency paths and loses that edge when the
    link is bandwidth-bound (§5's nuance, measured)."""

    def run():
        rows = []
        for rtt in (40.0, 150.0, 400.0):
            conditions = NetworkConditions.of(60, rtt)
            rdr_plt = cold_plt = 0.0
            for site in sites:
                first, _ = rdr_pair(site, conditions)
                rdr_plt += first.plt_ms
                setup = build_mode(CachingMode.NO_CACHE, site)
                outcomes = run_visit_sequence(setup, conditions, [0.0])
                cold_plt += outcomes[0].result.plt_ms
            n = len(sites)
            rows.append((rtt, cold_plt / n, rdr_plt / n))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("rdr_latency_profile", format_table(
        ["RTT ms", "cold direct PLT ms", "cold RDR PLT ms"],
        [[f"{rtt:g}", f"{direct:.0f}", f"{rdr:.0f}"]
         for rtt, direct, rdr in rows]))
    # at 400 ms RTT the proxy wins big; the gap narrows as latency drops
    assert rows[-1][2] < rows[-1][1]
    gap = [direct - rdr for _, direct, rdr in rows]
    assert gap[-1] > gap[0]


def test_extreme_cache_stale_risk(benchmark, sites, save_result):
    """Estimation quality vs stale serves — the unreported trade-off."""
    # use churned (non-frozen) sites: staleness needs real change
    churned = list(make_corpus().sample(5, seed=23))

    def run():
        rows = []
        for sigma in (0.0, 1.0, 2.0):
            stale_total = 0
            reval_rtts = 0
            for site_spec in churned:
                site = OriginSite(site_spec)
                proxy = ExtremeCacheProxy(site, estimation_sigma=sigma,
                                          safety_factor=1.0)
                session = BrowserSession(BrowserConfig())
                sim = Simulator()
                link = Link(sim, COND)
                sim.run_process(session.load(
                    sim, link, proxy.handle, "/index.html",
                    mode_label="xc"))
                sim.run(until=7 * DAY)
                link = Link(sim, COND)
                warm = sim.run_process(session.load(
                    sim, link, proxy.handle, "/index.html",
                    mode_label="xc"))
                stale_total += _stale_hits(warm, site_spec, 7 * DAY)
                reval_rtts += sum(
                    1 for e in warm.events
                    if e.source.value == "revalidated")
            rows.append((sigma, stale_total, reval_rtts))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("extreme_cache_staleness", format_table(
        ["estimator sigma", "stale serves (5 sites)", "revalidations"],
        [[f"{sigma:g}", stale, reval] for sigma, stale, reval in rows]))
    # even a perfect-period estimator serves stale content: change times
    # are random, the TTL is a guess about the *future*
    assert rows[0][1] > 0


def test_catalyst_vs_standard_staleness(benchmark, save_result):
    """Catalyst needs no TTL estimator and serves strictly less stale
    content than the status quo on the same churned workload.  (Residual
    catalyst staleness comes only from JS-discovered resources invisible
    to static stapling; the stapled set is provably fresh.)"""
    churned = list(make_corpus().sample(5, seed=23))

    def run():
        stale = {"standard": 0, "catalyst": 0}
        for site_spec in churned:
            for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
                setup = build_mode(mode, site_spec)
                outcomes = run_visit_sequence(setup, COND, [0.0, 7 * DAY])
                stale[mode.value] += _stale_hits(
                    outcomes[1].result, site_spec, 7 * DAY)
        return stale
    stale = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("catalyst_staleness", "\n".join([
        "stale serves over 5 churned sites, 1-week revisit:",
        f"  standard caching: {stale['standard']}",
        f"  catalyst:         {stale['catalyst']}",
    ]))
    assert stale["catalyst"] <= stale["standard"]
    assert stale["standard"] > 0  # TTL guessing really does serve stale
