"""User-weighted benefit bench.

Figure 3 weights five arbitrary delays equally; this bench weights
revisit intervals the way users actually return (heavy-tailed mixture)
and reports the population-level expected PLT reduction with a
bootstrap confidence interval.
"""

from repro.experiments.user_weighted import run_user_weighted
from repro.netsim.link import NetworkConditions


def test_user_weighted_benefit(benchmark, save_result):
    def run():
        return [run_user_weighted(conditions=conditions, sites=5,
                                  revisits_per_site=4)
                for conditions in (
                    NetworkConditions.of(60, 40, label="60Mbps/40ms"),
                    NetworkConditions.of(8, 40, label="8Mbps/40ms"))]
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("user_weighted",
                "\n".join(result.format() for result in results))

    anchor, bandwidth_bound = results
    benchmark.extra_info["mean_reduction_5g_pct"] = round(
        anchor.summary.mean * 100, 1)
    # population-level benefit at the 5G anchor stays in the headline band
    assert 0.20 <= anchor.summary.mean <= 0.60
    # and the bandwidth-bound condition shows far less
    assert bandwidth_bound.summary.mean < anchor.summary.mean
