"""Hot-path wall-clock bench — the perf-trajectory baseline (PR 3).

Measures the Catalyst server's ``handle()`` itself: requests/sec and
p50/p99 latency for cold (cache-miss) vs warm (cache-hit) document
requests, with the content-addressed caches on vs off.  Writes both the
human table (``hot_path.txt``) and the machine-readable trajectory
artifact (``BENCH_PR3.json``) that ``compare_bench.py`` diffs across PRs.

Run with ``pytest -m bench benchmarks/`` (wall-clock assertions live in
this lane, not in tier-1, so a loaded CI box cannot flake unit runs).
"""

import json

import pytest

from repro.experiments.server_load import (format_hot_path,
                                           hot_path_bench_payload,
                                           run_hot_path)

#: acceptance floor for this PR: warm-path throughput at least 3x the
#: uncached seed path (measured ~20-30x in development)
MIN_WARM_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def hot_path():
    return run_hot_path(sites=3, repeats=300, seed=21)


@pytest.mark.bench
def test_hot_path_writes_trajectory(hot_path, results_dir, save_result):
    save_result("hot_path", format_hot_path(hot_path))
    payload = hot_path_bench_payload(hot_path)
    path = results_dir / "BENCH_PR3.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    assert payload["throughput_rps"]["cached_warm"] > 0
    assert payload["cached"]["latency_us"]["warm_p99"] > 0


@pytest.mark.bench
def test_hot_path_byte_identical(hot_path):
    assert hot_path.byte_identical


@pytest.mark.bench
def test_hot_path_speedup(hot_path):
    assert hot_path.warm_speedup >= MIN_WARM_SPEEDUP


@pytest.mark.bench
def test_hot_path_amortizes_parses(hot_path):
    # cached: one parse + map build per (site, version); uncached: one per
    # request — the whole point of the content-addressed caches
    assert hot_path.cached.html_parses <= hot_path.sites
    assert hot_path.uncached.html_parses >= hot_path.sites * hot_path.repeats
    assert hot_path.cached.map_builds < hot_path.uncached.map_builds
