"""Sustained-load smoke lane for the hardened serving tier.

Seconds-scale by design (CI runs it on every push): one single-shard
in-process run under overload plus a fault-preset run, writing
``benchmarks/results/load_test.txt`` (with its ``RUN_MANIFEST.json``
sidecar entry), and a validation pass over the committed
``BENCH_PR7.json`` scaling artifact.

Deliberately does NOT use the ``benchmark`` fixture: the CI lane that
runs ``-m loadtest`` has no pytest-benchmark installed.  The real
1-vs-4-shard sweep is regenerated with ``python -m repro loadtest
--scaling`` and gated by ``compare_bench.py --bench serving_tier``.
"""

import json
import os
import pathlib

import pytest

from repro.experiments.load_test import (format_load_test, run_load_test)
from repro.obs.manifest import validate_manifest

RESULTS = pathlib.Path(__file__).parent / "results"
CLIENTS = int(os.environ.get("REPRO_LOADTEST_CLIENTS", "16"))
DURATION_S = float(os.environ.get("REPRO_LOADTEST_DURATION_S", "1.5"))


@pytest.fixture(scope="module")
def overload_run():
    return run_load_test(inprocess=True, clients=CLIENTS,
                         duration_s=DURATION_S, warmup_s=0.3,
                         latency_s=0.02, max_inflight=8, seed=7,
                         retry_after_s=0.5, drain_s=2.0)


@pytest.mark.loadtest
def test_sustained_overload_smoke(overload_run, save_result):
    save_result("load_test", format_load_test(overload_run))
    result = overload_run
    assert result.ok > 0
    assert result.errors == 0
    assert result.shed_503 > 0  # 2x clients vs slots must shed
    # exact accounting: shed + served covers everything offered
    assert result.served_total + result.shed_503 \
        + result.shed_connections > 0
    # stays under the admission ceiling K / latency
    assert result.sustained_rps <= (8 / 0.02) * 1.1
    assert result.hard_cancelled == 0
    assert result.drain_s < 2.0  # drained well inside the window


@pytest.mark.loadtest
def test_chaos_preset_smoke():
    result = run_load_test(inprocess=True, clients=8, duration_s=1.0,
                           warmup_s=0.2, latency_s=0.01, max_inflight=8,
                           seed=7, preset="flaky_5g", drain_s=2.0)
    assert result.faults_injected > 0
    assert result.ok > 0  # the tier keeps serving through the chaos
    assert result.hard_cancelled == 0


@pytest.mark.loadtest
def test_committed_scaling_artifact_is_valid():
    """BENCH_PR7.json: present, provenance-stamped, and showing real
    SO_REUSEPORT scaling (>1.5x at 4 shards, the ISSUE criterion)."""
    path = RESULTS / "BENCH_PR7.json"
    payload = json.loads(path.read_text())
    assert payload["bench"] == "serving_tier"
    assert validate_manifest(payload["manifest"]) == []
    sustained = payload["sustained_rps"]
    assert sustained["shards_1"] > 0
    assert sustained["shards_4"] > 0
    assert sustained["scaling_x"] > 1.5
