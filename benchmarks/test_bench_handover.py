"""Mobility bench: the win under *time-varying* cellular conditions.

The paper's motivation is mobile access, where RTT and throughput swing
during a single page load (cell handover, congestion).  The simulator's
:class:`~repro.netsim.variable.VariableLink` replays three schedules and
checks CacheCatalyst's warm-visit advantage survives all of them —
including a mid-load collapse to congested 3G-like conditions.
"""

import pytest

from repro.core.modes import CachingMode, build_mode
from repro.experiments.report import format_pct, format_table
from repro.netsim.clock import DAY
from repro.netsim.link import NetworkConditions
from repro.netsim.sim import Simulator
from repro.netsim.variable import VariableLink
from repro.workload.corpus import make_corpus

SCHEDULES = {
    "stable 5G": [(0.0, NetworkConditions.of(60, 40))],
    "5G -> congested": [(0.0, NetworkConditions.of(60, 40)),
                        (0.20, NetworkConditions.of(8, 150))],
    "flaky (3 swings)": [(0.0, NetworkConditions.of(60, 40)),
                         (0.15, NetworkConditions.of(10, 120)),
                         (0.40, NetworkConditions.of(40, 60)),
                         (0.80, NetworkConditions.of(15, 100))],
}


def warm_pair(site_spec, mode, schedule):
    setup = build_mode(mode, site_spec)
    sim = Simulator()
    link = VariableLink(sim, [(at, cond) for at, cond in schedule])
    sim.run_process(setup.session.load(
        sim, link, setup.handler, "/index.html", mode_label=mode.value))
    sim.run(until=DAY)
    warm_schedule = [(sim.now + at, cond) for at, cond in schedule]
    link = VariableLink(sim, warm_schedule)
    return sim.run_process(setup.session.load(
        sim, link, setup.handler, "/index.html", mode_label=mode.value))


def test_handover_schedules(benchmark, save_result):
    sites = list(make_corpus().sample(4, seed=37).frozen())

    def run():
        rows = []
        for name, schedule in SCHEDULES.items():
            std = cat = 0.0
            for site in sites:
                std += warm_pair(site, CachingMode.STANDARD,
                                 schedule).plt_ms
                cat += warm_pair(site, CachingMode.CATALYST,
                                 schedule).plt_ms
            n = len(sites)
            rows.append((name, std / n, cat / n))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("handover_schedules", format_table(
        ["schedule", "standard warm ms", "catalyst warm ms", "reduction"],
        [[name, f"{std:.0f}", f"{cat:.0f}",
          format_pct((std - cat) / std)] for name, std, cat in rows]))
    for name, std, cat in rows:
        assert cat < std, name
    # degrading conditions hurt both, but the advantage never flips
    stable = rows[0]
    congested = rows[1]
    assert congested[1] > stable[1]  # standard suffers from the handover
