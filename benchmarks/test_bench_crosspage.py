"""Cross-page navigation bench (§1's "other pages on the same website").

Not a numbered figure in the paper, but the second half of its central
motivation sentence: cached resources help "future requests to the same
page or other pages within the same website".  The bench measures first
visits to never-seen inner pages after one homepage load.
"""

from repro.experiments.cross_page import (format_cross_page,
                                          make_multipage_site,
                                          run_cross_page)


def test_cross_page_navigation(benchmark, save_result):
    site = make_multipage_site(seed=1234, pages=3)

    results = benchmark.pedantic(lambda: run_cross_page(site),
                                 rounds=1, iterations=1)
    save_result("cross_page_navigation", format_cross_page(results))

    by_mode = {r.mode: r for r in results}
    benchmark.extra_info["catalyst_inner_plt_ms"] = round(
        by_mode["catalyst"].mean_inner_plt_ms, 1)

    # homepage (cold, empty caches) costs the same in every mode
    homepage = [r.homepage_plt_ms for r in results]
    assert max(homepage) - min(homepage) < 0.05 * max(homepage)
    # caching helps pages the user has never visited...
    assert by_mode["standard"].mean_inner_plt_ms < \
        by_mode["no-cache"].mean_inner_plt_ms
    # ...and stapled tokens beat TTL guessing there too
    assert by_mode["catalyst"].mean_inner_plt_ms <= \
        by_mode["standard"].mean_inner_plt_ms
