"""§2.2 motivation statistics — the numbers that justify the redesign.

The corpus must independently reproduce the measurement studies the paper
cites; if these drift, Figure 3 rests on an uncalibrated workload.
"""

from repro.experiments.motivation import measure_motivation
from repro.workload.corpus import make_corpus


def test_motivation_statistics(benchmark, save_result):
    stats = benchmark.pedantic(
        lambda: measure_motivation(make_corpus()), rounds=1, iterations=1)
    save_result("motivation_stats", stats.format())

    benchmark.extra_info["actually_cached_pct"] = round(
        stats.effectively_cached_share * 100, 1)
    benchmark.extra_info["short_ttl_pct"] = round(
        stats.short_ttl_share * 100, 1)

    # paper-cited bands (see experiments/motivation.py for sources)
    assert 0.42 <= stats.effectively_cached_share <= 0.62   # ≈50 %
    assert 0.30 <= stats.short_ttl_share <= 0.50            # 40 %
    assert 0.75 <= stats.short_ttl_unchanged_share <= 0.95  # 86 %
    assert 0.32 <= stats.expire_unchanged_share <= 0.55     # 47 %


def test_corpus_shape(benchmark, save_result):
    """Corpus composition vs the httparchive targets it was built from."""
    from repro.workload.validation import measure_corpus_shape
    shape = benchmark.pedantic(
        lambda: measure_corpus_shape(make_corpus()), rounds=1,
        iterations=1)
    save_result("corpus_shape", shape.format())
    assert 1.2e6 < shape.median_page_bytes < 6e6
    assert 50 < shape.median_resource_count < 200
    assert max(shape.request_share, key=shape.request_share.get) == "image"


def test_redundant_transfer_traffic(benchmark, save_result):
    """The §2.2 'significant redundant transfers' claim, measured as
    wasted warm-visit bytes: content re-downloaded although identical."""
    from repro.core.modes import CachingMode, build_mode
    from repro.core.catalyst import run_visit_sequence
    from repro.netsim.clock import DAY
    from repro.netsim.link import NetworkConditions

    corpus = make_corpus().sample(6, seed=11).frozen()

    def run():
        waste = {"standard": 0, "catalyst": 0}
        cold_total = 0
        for site in corpus:
            for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
                setup = build_mode(mode, site)
                outcomes = run_visit_sequence(
                    setup, NetworkConditions.of(60, 40), [0.0, DAY])
                if mode is CachingMode.STANDARD:
                    cold_total += outcomes[0].result.bytes_down
                # frozen content: every warm byte is by definition
                # redundant (nothing changed except dynamic endpoints)
                waste[mode.value] += outcomes[1].result.bytes_down
        return cold_total, waste
    cold_total, waste = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("redundant_transfers", "\n".join([
        f"cold-load bytes (6 sites):          {cold_total:,}",
        f"warm redundant bytes, standard:     {waste['standard']:,}"
        f" ({waste['standard'] / cold_total:.1%} of cold)",
        f"warm redundant bytes, catalyst:     {waste['catalyst']:,}"
        f" ({waste['catalyst'] / cold_total:.1%} of cold)",
    ]))
    assert waste["catalyst"] < waste["standard"]
