"""Micro-benchmarks of the substrate's hot paths.

Not paper figures — these keep the simulator fast enough that the real
benches stay cheap, and catch accidental quadratic behaviour.
"""

import pytest

from repro.core.etag_config import EtagConfig
from repro.core.modes import CachingMode, build_mode
from repro.html.css import extract_css_urls
from repro.html.parser import extract_resources, parse_html
from repro.http.cache_control import parse_cache_control
from repro.http.etag import ETag
from repro.http.headers import Headers
from repro.netsim.link import Link, NetworkConditions, ProcessorSharingPipe
from repro.netsim.sim import Simulator
from repro.workload.corpus import make_corpus
from repro.workload.sitegen import generate_site, render_html


@pytest.fixture(scope="module")
def site_spec():
    return generate_site("https://micro.example", seed=3,
                         median_resources=80)


def test_des_page_load(benchmark, site_spec):
    """One full cold page load through the simulator."""
    def load():
        setup = build_mode(CachingMode.CATALYST, site_spec)
        sim = Simulator()
        link = Link(sim, NetworkConditions.of(60, 40))
        return sim.run_process(setup.session.load(
            sim, link, setup.handler, "/index.html", mode_label="bench"))
    result = benchmark(load)
    assert result.plt_s > 0


def test_html_parse_and_extract(benchmark, site_spec):
    markup = render_html(site_spec.index, version=0)
    refs = benchmark(lambda: extract_resources(parse_html(markup)))
    assert refs


def test_cache_control_parse(benchmark):
    value = "public, max-age=3600, stale-while-revalidate=60, x-cdn=hit"
    cc = benchmark(lambda: parse_cache_control(value))
    assert cc.max_age == 3600


def test_headers_roundtrip(benchmark):
    pairs = [(f"X-Header-{i}", f"value-{i}") for i in range(30)]

    def roundtrip():
        headers = Headers(pairs)
        return headers.get("X-Header-29"), headers.wire_size()
    value, _ = benchmark(roundtrip)
    assert value == "value-29"


def test_etag_config_codec(benchmark):
    config = EtagConfig(entries={
        f"/assets/resource_{i:03d}.js": ETag(opaque=f"{i:016x}")
        for i in range(150)})

    def codec():
        return EtagConfig.from_header_value(config.to_header_value())
    parsed = benchmark(codec)
    assert len(parsed) == 150


def test_css_extraction(benchmark):
    css = "\n".join(f".c{i} {{ background: url(/img/{i}.png); }}"
                    for i in range(200))
    urls = benchmark(lambda: extract_css_urls(css))
    assert len(urls) == 200


def test_processor_sharing_pipe(benchmark):
    def run():
        sim = Simulator()
        pipe = ProcessorSharingPipe(sim, capacity_bps=60e6)
        for i in range(100):
            pipe.transfer(20_000 + i * 31)
        sim.run()
        return sim.now
    elapsed = benchmark(run)
    assert elapsed > 0


def test_corpus_generation(benchmark):
    corpus = benchmark.pedantic(lambda: make_corpus(size=20, seed=99),
                                rounds=3, iterations=1)
    assert len(corpus) == 20
