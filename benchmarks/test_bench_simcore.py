"""Simulation-core wall-clock bench — the perf-trajectory artifact (PR 5).

Measures the three layers the fast-path work touched: raw DES event
dispatch (events/sec), processor-sharing transfer completion
(transfers/sec), and full ``measure_pair`` visits (visits/sec) — the
grid's actual unit of work.  Writes both the human table
(``simcore.txt``) and the machine-readable trajectory artifact
(``BENCH_PR5.json``) that ``compare_bench.py`` diffs across PRs.

Run with ``pytest -m bench benchmarks/`` (wall-clock assertions live in
this lane, not in tier-1, so a loaded CI box cannot flake unit runs).
"""

import json

import pytest

from repro.experiments.simcore import (format_simcore, run_simcore,
                                       simcore_bench_payload)

#: acceptance floor for this PR: end-to-end visit throughput at least
#: 3x the pre-fast-path kernel (measured ~5x in development)
MIN_VISITS_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def simcore():
    return run_simcore()


@pytest.mark.bench
def test_simcore_writes_trajectory(simcore, results_dir, save_result):
    save_result("simcore", format_simcore(simcore))
    payload = simcore_bench_payload(simcore)
    path = results_dir / "BENCH_PR5.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    assert payload["simcore"]["events_per_s"] > 0
    assert payload["simcore"]["transfers_per_s"] > 0
    assert payload["simcore"]["visits_per_s"] > 0


@pytest.mark.bench
def test_simcore_visits_speedup(simcore):
    assert simcore.speedup_vs_pre_pr5("visits_per_s") >= MIN_VISITS_SPEEDUP


@pytest.mark.bench
def test_simcore_kernel_not_regressed(simcore):
    # The kernel probes are noisier than visits/sec; a generous floor
    # still catches a fast path accidentally reverted to the seed.
    assert simcore.speedup_vs_pre_pr5("events_per_s") >= 1.2
    assert simcore.speedup_vs_pre_pr5("transfers_per_s") >= 1.2
