"""CacheCatalyst's own costs: header bytes and server-side work.

The paper (§6) worries about "the effect of this approach on the
performance of web servers" and about map size.  These benches measure
both on the corpus:

- ``X-Etag-Config`` size per page, absolute and relative to the HTML,
- the per-request CPU cost of serving with stapling vs without
  (pytest-benchmark's actual timing, not simulation).
"""

import pytest

from repro.core.etag_config import EtagConfig
from repro.experiments.report import format_table
from repro.http.messages import Request
from repro.server.catalyst import CatalystServer
from repro.server.site import OriginSite
from repro.server.static import StaticServer
from repro.workload.corpus import make_corpus


@pytest.fixture(scope="module")
def sites():
    return [OriginSite(spec)
            for spec in make_corpus().sample(10, seed=31)]


def test_etag_config_size(benchmark, sites, save_result):
    def run():
        rows = []
        for site in sites:
            server = CatalystServer(site)
            response = server.handle(Request(url="/index.html"), 0.0)
            config = EtagConfig.from_headers(response.headers)
            html_bytes = len(response.body)
            rows.append((site.origin, len(config), config.header_size(),
                         html_bytes))
        return rows
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("etag_config_overhead", format_table(
        ["site", "entries", "config bytes", "html bytes", "overhead"],
        [[origin.split("//")[1], entries, f"{size:,}", f"{html:,}",
          f"{size / html:.1%}"]
         for origin, entries, size, html in rows]))
    sizes = [size for _, _, size, _ in rows]
    ratios = [size / html for _, _, size, html in rows]
    benchmark.extra_info["mean_config_bytes"] = int(sum(sizes) / len(sizes))
    # the map must stay a small fraction of the document it rides on
    assert max(sizes) < 64 * 1024
    assert sum(ratios) / len(ratios) < 0.5


def test_server_cpu_cost_static(benchmark, sites):
    """Baseline: plain static serving of the base HTML."""
    server = StaticServer(sites[0])
    request = Request(url="/index.html")
    benchmark(lambda: server.handle(request, 0.0))


def test_server_cpu_cost_catalyst(benchmark, sites, save_result):
    """Stapling adds DOM traversal + ETag-map construction per HTML
    response; the paper requires this overhead to be tolerable."""
    server = CatalystServer(sites[0])
    request = Request(url="/index.html")
    result = benchmark(lambda: server.handle(request, 0.0))
    assert result.status == 200
    # sanity: a single stapled response is still comfortably sub-second
    assert benchmark.stats.stats.mean < 1.0


def test_sw_script_size(benchmark, save_result):
    """The injected artifacts are tiny; quantify them."""
    from repro.html.rewrite import sw_registration_script
    from repro.server.catalyst import SERVICE_WORKER_JS

    snippet = benchmark.pedantic(sw_registration_script, rounds=5,
                                 iterations=1)
    save_result("injection_overhead", "\n".join([
        f"registration snippet: {len(snippet)} bytes",
        f"service worker script: {len(SERVICE_WORKER_JS)} bytes",
    ]))
    assert len(snippet) < 1024
    assert len(SERVICE_WORKER_JS) < 8 * 1024


def test_map_digest_savings(benchmark, save_result):
    """The digest extension: revisits whose map is unchanged cost a
    ~20-byte header instead of kilobytes of JSON."""
    from repro.browser.engine import BrowserConfig, BrowserSession
    from repro.core.catalyst import run_visit_sequence
    from repro.core.modes import CachingMode, ModeSetup
    from repro.netsim.clock import DAY, HOUR
    from repro.netsim.link import NetworkConditions
    from repro.server.catalyst import CatalystConfig, CatalystServer
    from repro.workload.sitegen import freeze_site

    site_spec = freeze_site(make_corpus().sample(3, seed=61)[0])
    conditions = NetworkConditions.of(60, 40)

    def measure(use_digest: bool) -> int:
        server = CatalystServer(
            OriginSite(site_spec),
            config=CatalystConfig(use_map_digest=use_digest))
        setup = ModeSetup(
            mode=CachingMode.CATALYST, server=server,
            session=BrowserSession(BrowserConfig(
                use_service_worker=True)))
        run_visit_sequence(setup, conditions,
                           [0.0, HOUR, 6 * HOUR, DAY])
        return server.config_bytes_emitted

    def run():
        return measure(False), measure(True)
    plain, digested = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("map_digest_savings", "\n".join([
        f"config bytes over 4 visits, full maps:   {plain:,}",
        f"config bytes over 4 visits, with digest: {digested:,}",
        f"saved: {1 - digested / plain:.0%}",
    ]))
    assert digested < plain / 2


def test_session_recorder_footprint(benchmark, save_result):
    """§6: session recording 'potentially incurs a significant memory
    footprint'.  Measure it for 10k sessions with capped URL lists."""
    from repro.server.sessions import SessionRecorder

    def run():
        recorder = SessionRecorder(max_sessions=10_000,
                                   max_urls_per_session=256)
        for session in range(12_000):  # 2k more than the cap
            sid = f"client-{session}"
            recorder.begin_visit(sid)
            for i in range(40):
                recorder.record(sid, f"/assets/resource_{i:03d}.js")
        return recorder
    recorder = benchmark.pedantic(run, rounds=1, iterations=1)
    footprint = recorder.memory_footprint_bytes()
    save_result("session_footprint", "\n".join([
        f"sessions retained: {recorder.session_count}",
        f"sessions evicted:  {recorder.evicted_sessions}",
        f"string footprint:  {footprint / 1e6:.1f} MB",
    ]))
    assert recorder.session_count == 10_000
    assert footprint < 100e6
