"""Design-choice ablations called out in DESIGN.md.

Each bench flips exactly one modelling decision and reports how the
headline cell (60 Mbps / 40 ms) moves:

- clone semantics vs realistic content churn (the methodology choice),
- careless vs well-configured developers (how much of the win is just
  bad headers),
- CSS-transitive stapling on/off (the §3 server-side parsing depth),
- simple-pipe vs TCP-slow-start transfer model (network-model robustness).
"""

import pytest

from repro.browser.engine import BrowserConfig
from repro.core.modes import CachingMode
from repro.experiments.figure3 import run_figure3
from repro.experiments.report import format_pct, format_table
from repro.netsim.clock import DAY, HOUR, MINUTE, WEEK
from repro.netsim.tcp import ConnectionPolicy
from repro.workload.corpus import make_corpus
from repro.workload.headers_model import DeveloperModel

SITES = 6
DELAYS = (MINUTE, 6 * HOUR, WEEK)


def headline_reduction(**kwargs) -> float:
    result = run_figure3(throughputs_mbps=(60.0,), latencies_ms=(40.0,),
                         delays_s=DELAYS, sites=SITES, **kwargs)
    return result.cells[0].mean_reduction


def test_ablation_content_churn(benchmark, save_result):
    """Clone methodology (paper) vs realistic churn (this repo's add-on)."""
    def run():
        frozen = headline_reduction(content_churn=False)
        churned = headline_reduction(content_churn=True)
        return frozen, churned
    frozen, churned = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_churn", format_table(
        ["content model", "PLT reduction @60Mbps/40ms"],
        [["frozen clones (paper methodology)", format_pct(frozen)],
         ["realistic churn (extension)", format_pct(churned)]]))
    # churn shrinks but does not erase the win
    assert churned < frozen
    assert churned > 0.10


def test_ablation_developer_quality(benchmark, save_result):
    """How much of CacheCatalyst's win is merely fixing bad headers?

    Against a perfectly configured site (every immutable asset marked,
    nothing needlessly uncacheable) the status quo is already strong, so
    the residual catalyst win isolates the pure revalidation-RTT effect.
    """
    def run():
        careless = headline_reduction()
        diligent_corpus = make_corpus(
            developer=DeveloperModel.well_configured())
        diligent = headline_reduction(corpus=diligent_corpus)
        return careless, diligent
    careless, diligent = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_developer", format_table(
        ["developer model", "PLT reduction @60Mbps/40ms"],
        [["careless (measured reality)", format_pct(careless)],
         ["well-configured (best case for status quo)",
          format_pct(diligent)]]))
    assert diligent < careless
    assert diligent >= 0.0


def test_ablation_css_transitive(benchmark, save_result):
    """§3: the server parses CSS too; what do those entries buy?"""
    from repro.core.catalyst import run_visit_sequence
    from repro.core.modes import build_mode
    from repro.netsim.link import NetworkConditions
    from repro.server.catalyst import CatalystConfig, CatalystServer
    from repro.server.site import OriginSite

    corpus = make_corpus().sample(SITES, seed=7).frozen()
    conditions = NetworkConditions.of(60, 40)

    def measure(include_css: bool) -> float:
        total = 0.0
        for site_spec in corpus:
            setup = build_mode(CachingMode.CATALYST, site_spec)
            setup.server.config = CatalystConfig(
                include_css_transitive=include_css)
            outcomes = run_visit_sequence(setup, conditions, [0.0, DAY])
            total += outcomes[1].result.plt_ms
        return total / len(corpus)

    def run():
        return measure(True), measure(False)
    with_css, without_css = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_css_transitive", format_table(
        ["stapling depth", "mean warm PLT ms"],
        [["HTML + CSS children (§3 full)", f"{with_css:.0f}"],
         ["HTML only", f"{without_css:.0f}"]]))
    assert with_css <= without_css


def test_ablation_slow_start(benchmark, save_result):
    """Does the headline survive a TCP slow-start transfer model?"""
    def run():
        simple = headline_reduction()
        slow_start = headline_reduction(base_config=BrowserConfig(
            connection_policy=ConnectionPolicy(slow_start=True)))
        return simple, slow_start
    simple, slow_start = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_slow_start", format_table(
        ["transfer model", "PLT reduction @60Mbps/40ms"],
        [["throttle pipe (paper's tool)", format_pct(simple)],
         ["TCP slow start", format_pct(slow_start)]]))
    # conclusion must be robust to the transfer model
    assert slow_start > 0.15


def test_ablation_http2(benchmark, save_result):
    """The paper's Caddy speaks h2.  Multiplexing collapses revalidation
    waves onto one connection, shrinking — but not erasing — the win:
    each conditional request still costs its round trip, there are just
    no handshake/queueing multipliers on top.

    The h2 model here is *idealized* (unlimited concurrent streams, no
    TCP head-of-line blocking, no priority inversion), i.e. the most
    favourable possible rendering of the status quo; catalyst still
    comes out ahead."""
    def run():
        h1 = headline_reduction()
        h2 = headline_reduction(base_config=BrowserConfig(http2=True))
        return h1, h2
    h1, h2 = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_http2", format_table(
        ["transport", "PLT reduction @60Mbps/40ms"],
        [["HTTP/1.1, 6 connections", format_pct(h1)],
         ["HTTP/2, 1 multiplexed connection (idealized)",
          format_pct(h2)]]))
    assert h2 > 0.02   # the RTT elimination survives multiplexing
    assert h2 < h1     # but ideal h2 already removed the amplification


def test_ablation_push_cancellation(benchmark, save_result):
    """Server push with client RST of cached pushes: does fixing push's
    waste close the gap to catalyst?  (No: RTT structure, not bytes.)"""
    from repro.core.catalyst import run_visit_sequence
    from repro.core.modes import build_mode
    from repro.netsim.link import NetworkConditions
    from dataclasses import replace

    corpus = make_corpus().sample(SITES, seed=7).frozen()
    conditions = NetworkConditions.of(60, 40)

    def measure(mode, cancel=False):
        plt = bytes_down = 0.0
        for site_spec in corpus:
            base = BrowserConfig(push_cancel_cached=cancel)
            setup = build_mode(mode, site_spec, base)
            outcomes = run_visit_sequence(setup, conditions, [0.0, DAY])
            plt += outcomes[1].result.plt_ms
            bytes_down += outcomes[1].result.bytes_down
        return plt / len(corpus), bytes_down / len(corpus)

    def run():
        return {
            "push-all": measure(CachingMode.PUSH_ALL),
            "push-all+cancel": measure(CachingMode.PUSH_ALL, cancel=True),
            "catalyst": measure(CachingMode.CATALYST),
        }
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_push_cancel", format_table(
        ["system", "warm PLT ms", "warm bytes"],
        [[name, f"{plt:.0f}", f"{int(nbytes):,}"]
         for name, (plt, nbytes) in rows.items()]))
    # cancellation fixes the byte waste...
    assert rows["push-all+cancel"][1] < rows["push-all"][1]
    # ...but catalyst still leads on bytes
    assert rows["catalyst"][1] < rows["push-all+cancel"][1]
