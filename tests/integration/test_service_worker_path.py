"""Integration: the Figure 2 interception path, end to end.

Walks the exact lifecycle the paper describes: first visit registers the
SW and fills its cache; each later visit's base-HTML response refreshes
the ETag map; interception serves current content and forwards the rest.
"""

import pytest

from repro.browser.metrics import FetchSource
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.netsim.clock import HOUR, WEEK
from repro.netsim.link import NetworkConditions
from repro.workload.sitegen import freeze_site, generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site():
    return freeze_site(generate_site("https://sw.example", seed=17,
                                     median_resources=30))


class TestLifecycle:
    def test_first_visit_registers_and_fills_cache(self, site):
        setup = build_mode(CachingMode.CATALYST, site)
        run_visit_sequence(setup, COND, [0.0])
        sw = setup.session.sw
        assert sw.registered
        assert sw.knows > 0
        assert sw.cache.entry_count > 0

    def test_no_interception_during_first_visit(self, site):
        setup = build_mode(CachingMode.CATALYST, site)
        outcomes = run_visit_sequence(setup, COND, [0.0])
        assert all(e.source is not FetchSource.SW_CACHE
                   for e in outcomes[0].result.events)

    def test_second_visit_intercepts(self, site):
        setup = build_mode(CachingMode.CATALYST, site)
        outcomes = run_visit_sequence(setup, COND, [0.0, HOUR])
        sw = setup.session.sw
        assert sw.intercepted_hits > 0
        warm_sources = {e.source for e in outcomes[1].result.events}
        assert FetchSource.SW_CACHE in warm_sources

    def test_sw_cache_not_consulted_for_no_store(self, site):
        setup = build_mode(CachingMode.CATALYST, site)
        run_visit_sequence(setup, COND, [0.0, HOUR])
        sw = setup.session.sw
        for url, spec in site.index.resources.items():
            if spec.policy.mode == "no-store":
                assert url not in sw.cache

    def test_map_refreshed_each_visit(self, site):
        setup = build_mode(CachingMode.CATALYST, site)
        run_visit_sequence(setup, COND, [0.0])
        first_map = dict(setup.session.sw.etag_config.entries)
        run_visit_sequence_more = run_visit_sequence  # readability
        # another visit a week later: map re-learned (same content here,
        # so equality is the expected outcome — the point is it arrived)
        outcomes = run_visit_sequence_more(setup, COND, [WEEK])
        assert setup.session.sw.etag_config is not None
        assert outcomes[0].result.events
        second_map = dict(setup.session.sw.etag_config.entries)
        assert set(second_map) >= set(first_map)

    def test_cache_clear_resets_to_cold_behaviour(self, site):
        setup = build_mode(CachingMode.CATALYST, site)
        outcomes = run_visit_sequence(setup, COND, [0.0, HOUR])
        warm_plt = outcomes[1].result.plt_s
        setup.session.clear_caches()
        cold_again = run_visit_sequence(setup, COND, [2 * HOUR])
        assert cold_again[0].result.plt_s > warm_plt
