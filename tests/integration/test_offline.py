"""Integration: offline mode — the Service Worker serves without origin.

Paper §3: a Service Worker "can ... respond to requests on its own ...
when the origin server is not accessible (for example, in offline
mode)".  After catalyst visits have populated the SW cache, the page
still loads when the origin goes dark.
"""

import pytest

from repro.browser.fetcher import OriginUnreachable
from repro.browser.metrics import FetchSource
from repro.core.modes import CachingMode, build_mode
from repro.http.messages import Request
from repro.netsim.clock import HOUR
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.workload.sitegen import freeze_site, generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site_spec():
    return freeze_site(generate_site("https://off.example", seed=23,
                                     median_resources=20))


def down_handler(request, at_time):
    raise OriginUnreachable(request.url)


def visit(setup, handler, at_time, sim):
    sim.run(until=at_time)
    link = Link(sim, COND)
    return sim.run_process(setup.session.load(
        sim, link, handler, "/index.html", mode_label=setup.label))


def warmed_catalyst(site_spec):
    """Two online visits: the second stores the HTML through the (by
    then active) Service Worker, completing the offline-capable cache —
    exactly the real SW lifecycle."""
    setup = build_mode(CachingMode.CATALYST, site_spec)
    sim = Simulator()
    visit(setup, setup.handler, 0.0, sim)
    visit(setup, setup.handler, HOUR, sim)
    return setup, sim


class TestOffline:
    def test_catalyst_survives_origin_outage(self, site_spec):
        setup, sim = warmed_catalyst(site_spec)
        online_plt = None
        offline = visit(setup, down_handler, 2 * HOUR, sim)
        sources = offline.count_by_source()
        assert sources.get(FetchSource.OFFLINE_CACHE, 0) >= 1
        # nothing succeeded over the network; un-cached (no-store)
        # subresources failed with 504 and the page load carried on
        for event in offline.events:
            if event.source is FetchSource.NETWORK:
                assert event.status == 504
                assert event.bytes_down == 0
        assert offline.plt_s > 0

    def test_offline_faster_than_online(self, site_spec):
        setup, sim = warmed_catalyst(site_spec)
        sim2 = Simulator()
        fresh = build_mode(CachingMode.CATALYST, site_spec)
        online = visit(fresh, fresh.handler, 0.0, sim2)
        offline = visit(setup, down_handler, 2 * HOUR, sim)
        assert offline.plt_s < online.plt_s

    def test_offline_responses_carry_warning(self, site_spec):
        """Stale-because-offline content is marked per RFC 9111 §5.5."""
        setup, sim = warmed_catalyst(site_spec)
        fallback = setup.session.sw.offline_fallback(
            Request(url="/index.html"), sim.now)
        assert fallback is not None
        assert "111" in fallback.headers.get("Warning", "")

    def test_standard_browser_fails_offline(self, site_spec):
        """Without the SW, an outage mid-revalidation kills the load."""
        setup = build_mode(CachingMode.STANDARD, site_spec)
        sim = Simulator()
        visit(setup, setup.handler, 0.0, sim)
        with pytest.raises(OriginUnreachable):
            visit(setup, down_handler, HOUR, sim)

    def test_cold_catalyst_cannot_help_offline(self, site_spec):
        """No prior visit, nothing cached: offline is offline."""
        setup = build_mode(CachingMode.CATALYST, site_spec)
        sim = Simulator()
        with pytest.raises(OriginUnreachable):
            visit(setup, down_handler, 0.0, sim)

    def test_no_store_content_never_served_offline(self, site_spec):
        """Personalised (no-store) responses were never cached, so the
        SW cannot leak them in offline mode."""
        no_store_urls = {s.url for s in site_spec.index.iter_resources()
                         if s.policy.mode == "no-store"}
        if not no_store_urls:
            pytest.skip("seed has no no-store resources")
        setup, sim = warmed_catalyst(site_spec)
        for url in no_store_urls:
            assert setup.session.sw.offline_fallback(
                Request(url=url), sim.now) is None
