"""Integration: wall-clock PLT measurement over real sockets.

The end-to-end validation the reproduction hint asks for: a headless
loader fetching a live Catalyst origin through real TCP, with injected
server latency, measured on the OS clock.  The *orderings* the simulator
predicts must show up in real time measurements.
"""

import asyncio

import pytest

from repro.browser.metrics import FetchSource
from repro.browser.real_loader import RealBrowserSession, RealLoaderConfig
from repro.http.aserver import AsyncHttpServer
from repro.server.adapter import as_async_handler
from repro.server.catalyst import CatalystServer
from repro.server.site import OriginSite
from repro.server.static import StaticServer
from repro.workload.sitegen import freeze_site, generate_site

#: injected one-way latency per response; small but >> localhost noise
LATENCY_S = 0.015


@pytest.fixture(scope="module")
def site_spec():
    return freeze_site(generate_site("https://rl.example", seed=29,
                                     median_resources=12))


def revalidation_heavy_site():
    """A hand-built page whose warm visits are all revalidation traffic.

    Eight static-but-``no-cache`` resources: the status quo pays eight
    conditional round trips per revisit, CacheCatalyst pays none — a
    deterministic wall-clock discriminator, immune to TTL-menu luck.
    """
    from repro.html.parser import ResourceKind
    from repro.workload.headers_model import HeaderPolicy
    from repro.workload.sitegen import PageSpec, ResourceSpec, SiteSpec

    resources = {}
    refs = []
    for index in range(8):
        url = f"/widget_{index}.js"
        resources[url] = ResourceSpec(
            url=url, kind=ResourceKind.SCRIPT, size_bytes=4_000,
            policy=HeaderPolicy(mode="no-cache"), change_period_s=1e12,
            content_seed=900 + index, discovered_via="html",
            blocking=False, fixed_change_times=())
        refs.append(url)
    page = PageSpec(url="/index.html", html_size_bytes=6_000,
                    html_change_period_s=1e12, html_content_seed=899,
                    html_refs=tuple(refs), resources=resources,
                    html_fixed_change_times=())
    return SiteSpec(origin="https://reval.example", seed=0,
                    pages={"/index.html": page})


def run(coro):
    return asyncio.run(coro)


async def _visits(site_spec, server_factory, config, visits=2):
    """Load the page ``visits`` times with ~1 simulated day between.

    time_scale maps the ~0.3 s wall gap between visits onto >1 day of
    simulated aging, so short TTLs expire like in the paper's
    advance-the-clock methodology.
    """
    site = OriginSite(site_spec, materialize_fully=True)
    origin = server_factory(site)
    handler = as_async_handler(origin, time_scale=400_000.0)
    results = []
    async with AsyncHttpServer(handler, latency_s=LATENCY_S) as server:
        session = RealBrowserSession(config)
        for visit in range(visits):
            if visit:
                await asyncio.sleep(0.25)
            results.append(await session.load(server.base_url,
                                              "/index.html"))
    return results


class TestRealCatalyst:
    def test_cold_load_fetches_everything(self, site_spec):
        results = run(_visits(site_spec, CatalystServer,
                              RealLoaderConfig(use_service_worker=True),
                              visits=1))
        cold = results[0]
        assert cold.plt_s > 0
        expected = set(site_spec.index.resources) | {"/index.html"}
        assert {e.url for e in cold.events} == expected
        assert all(e.source is FetchSource.NETWORK for e in cold.events)

    def test_warm_visit_uses_sw_cache(self, site_spec):
        results = run(_visits(site_spec, CatalystServer,
                              RealLoaderConfig(use_service_worker=True)))
        warm = results[1]
        sources = warm.count_by_source()
        assert sources.get(FetchSource.SW_CACHE, 0) > 0

    def test_real_catalyst_faster_than_real_standard_warm(self):
        """The headline ordering, measured on the OS clock.

        Uses the revalidation-heavy page so the saved round trips are
        deterministic: standard must pay 8 conditional requests (> one
        injected latency even with 6-wide parallelism); catalyst answers
        them from the SW cache.
        """
        spec = revalidation_heavy_site()
        catalyst = run(_visits(spec, CatalystServer,
                               RealLoaderConfig(use_service_worker=True)))
        standard = run(_visits(spec, StaticServer, RealLoaderConfig()))
        assert catalyst[0].plt_s > LATENCY_S
        assert standard[1].request_count >= 9   # HTML + 8 revalidations
        assert catalyst[1].request_count <= 2   # HTML (+ nothing else)
        assert catalyst[1].plt_s < standard[1].plt_s

    def test_warm_visit_wall_clock_speedup(self, site_spec):
        results = run(_visits(site_spec, CatalystServer,
                              RealLoaderConfig(use_service_worker=True)))
        cold, warm = results
        assert warm.plt_s < cold.plt_s

    def test_served_etags_are_current(self, site_spec):
        results = run(_visits(site_spec, CatalystServer,
                              RealLoaderConfig(use_service_worker=True)))
        warm = results[1]
        oracle = OriginSite(site_spec)
        for event in warm.events:
            if event.source is FetchSource.SW_CACHE:
                # frozen site: time argument is irrelevant
                assert event.served_etag == oracle.etag_of(event.url, 0.0)
