"""Cross-process distributed tracing + telemetry, end to end.

The PR-9 acceptance path: a traced load test must produce ONE
Perfetto-valid trace in which a client ``http.request`` span (driver
process) parents the ``server.request`` span that answered it (fleet
worker process) — verified on trace/parent IDs across real pids — and
tracing must not change a single served byte.  Plus the Prometheus
endpoint: scraped counter totals must equal the registry dump.
"""

import asyncio
import json

import pytest

from repro.http.aclient import AsyncHttpClient
from repro.http.aserver import METRICS_PATH, AsyncHttpServer
from repro.http.fleet import HAVE_REUSEPORT
from repro.http.messages import Response
from repro.obs.export import to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (parse_prometheus_text, scrape_value)
from repro.obs.trace import Tracer

needs_reuseport = pytest.mark.skipif(
    not HAVE_REUSEPORT, reason="platform lacks SO_REUSEPORT")


def run(coro):
    return asyncio.run(coro)


class TestMetricsEndpoint:
    def test_scrape_totals_equal_registry_dump(self):
        metrics = MetricsRegistry()

        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"ok"),
                    metrics=metrics) as server:
                async with AsyncHttpClient() as client:
                    for _ in range(7):
                        await client.get(server.base_url + "/page")
                    scraped = await client.get(
                        server.base_url + METRICS_PATH)
                    return scraped.response

        response = run(scenario())
        assert response.status == 200
        assert "version=0.0.4" in response.headers.get("Content-Type")
        parsed = parse_prometheus_text(response.body.decode())
        dump = metrics.dump()
        # scrape observed at least the 7 page requests; the exposition
        # request itself may add one more by the time of the dump, so
        # compare the scrape against what the registry said it had
        scraped_total = scrape_value(parsed, "repro_http_requests_total")
        assert scraped_total >= 7
        assert dump["http.requests"]["value"] >= scraped_total
        assert scrape_value(parsed, "repro_http_request_ms_count") \
            == scraped_total

    def test_endpoint_without_registry_is_empty_but_alive(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"ok")) as server:
                async with AsyncHttpClient() as client:
                    return (await client.get(
                        server.base_url + METRICS_PATH)).response

        response = run(scenario())
        assert response.status == 200
        assert parse_prometheus_text(response.body.decode()) == {}


class TestTracePropagation:
    def test_server_span_parents_under_client_span(self):
        client_tracer = Tracer()
        server_tracer = Tracer()

        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"ok"),
                    tracer=server_tracer) as server:
                async with AsyncHttpClient(
                        tracer=client_tracer) as client:
                    await client.get(server.base_url + "/x")

        run(scenario())
        cspan, = client_tracer.spans_named("http.request")
        sspan, = server_tracer.spans_named("server.request")
        assert sspan.remote_parent \
            == (client_tracer.pid, cspan.span_id)
        assert sspan.args["remote_trace_id"] is not None
        assert sspan.args["client_attempt"] == 0

    def test_retry_reinjects_context_with_attempt_ordinal(self):
        client_tracer = Tracer()
        server_tracer = Tracer()
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first attempt dies")
            return Response(body=b"ok")

        async def scenario():
            async with AsyncHttpServer(
                    flaky, tracer=server_tracer) as server:
                async with AsyncHttpClient(
                        tracer=client_tracer, max_retries=2,
                        backoff_base_s=0.01,
                        breaker_threshold=None) as client:
                    result = await client.get(server.base_url + "/x")
                    assert result.response.status == 500
                    result = await client.get(server.base_url + "/x")
                    assert result.response.status == 200

        run(scenario())
        attempts = [span.args["client_attempt"]
                    for span in server_tracer.spans_named(
                        "server.request")]
        assert 0 in attempts
        # every server span names a real client request span as parent
        client_ids = {(client_tracer.pid, span.span_id)
                      for span in client_tracer.spans_named(
                          "http.request")}
        for span in server_tracer.spans_named("server.request"):
            assert span.remote_parent in client_ids

    def test_untraced_request_carries_no_context_headers(self):
        seen = {}

        def handler(request):
            seen["traceparent"] = request.headers.get("traceparent")
            return Response(body=b"ok")

        async def scenario():
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient() as client:
                    await client.get(server.base_url + "/x")

        run(scenario())
        assert seen["traceparent"] is None


@needs_reuseport
class TestFleetCrossProcessTrace:
    """Seconds-scale: real worker processes, real sockets."""

    def run_load(self, trace: bool):
        from repro.experiments.load_test import run_load_test
        return run_load_test(shards=2, clients=6, duration_s=0.8,
                             warmup_s=0.2, seed=5, trace=trace,
                             max_inflight=8)

    def test_client_span_parents_worker_span_across_pids(self):
        result = self.run_load(trace=True)
        client = {(s["pid"], s["span_id"]): s for s in result.spans
                  if s["name"] == "http.request"}
        server = [s for s in result.spans
                  if s["name"] == "server.request"]
        assert client and server
        driver_pids = {pid for pid, _ in client}
        linked = [s for s in server
                  if tuple(s.get("remote_parent") or ()) in client]
        assert linked, "no worker span linked back to a driver span"
        cross = [s for s in linked if s["pid"] not in driver_pids]
        assert cross, "no link crossed a process boundary"
        # parent/trace ids agree across the pid boundary
        sample = cross[0]
        parent = client[tuple(sample["remote_parent"])]
        assert sample["args"]["remote_trace_id"] \
            == parent["trace_id"].rjust(32, "0")

    def test_merged_trace_is_perfetto_valid_with_per_pid_lanes(self):
        result = self.run_load(trace=True)
        trace = to_chrome_trace(result.spans)
        json.dumps(trace)  # serializable
        events = trace["traceEvents"]
        span_events = [e for e in events if e["ph"] in ("X", "i")]
        assert span_events
        for event in events:
            assert set(event) >= {"name", "ph", "pid", "tid"}
        ids = [e["args"]["span_id"] for e in span_events]
        assert len(ids) == len(set(ids)), "span IDs alias across pids"
        assert len({e["pid"] for e in span_events}) >= 2

    def test_tracing_does_not_change_served_bytes(self):
        """Paired runs, same seed: the traced fleet serves exactly the
        bytes the untraced fleet serves (headers modulo none — the
        static app emits no date-varying headers)."""
        from repro.http.fleet import FleetConfig, ServerFleet

        async def fetch_all(base_url):
            async with AsyncHttpClient() as client:
                pages = {}
                for path in ("/", "/a", "/b"):
                    result = await client.get(base_url + path)
                    pages[path] = (result.response.status,
                                   sorted(result.response.headers.items()),
                                   result.response.body)
                return pages

        def serve_once(trace):
            config = FleetConfig(shards=2, seed=5, app="static",
                                 trace=trace)
            with ServerFleet(config) as fleet:
                return run(fetch_all(fleet.base_url))

        assert serve_once(trace=False) == serve_once(trace=True)
