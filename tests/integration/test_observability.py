"""End-to-end observability: one visit, one trace, every layer.

Acceptance for the repro.obs subsystem: a traced cold+warm visit must
produce spans from at least four layers sharing a single trace ID, the
Chrome trace export must be Perfetto-loadable (monotonic, non-negative
timestamps), faults and retries must be visible in the tree, and —
critically — tracing must cost nothing when disabled (identical PLTs
with and without a live tracer).
"""

import asyncio
import json

import pytest

from repro.core.modes import CachingMode
from repro.experiments.tracing import capture_visit_trace
from repro.netsim.faults import FaultPlan
from repro.obs import (NULL_SPAN, NULL_TRACER, MetricsRegistry, Tracer,
                       collapsed_stacks, self_times)

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def capture():
    """One traced cold+warm Catalyst visit, shared across tests."""
    return capture_visit_trace(seed=7, mode=CachingMode.CATALYST)


@pytest.fixture(scope="module")
def faulty_capture():
    """A traced visit over a lossy link so retries land in the trace."""
    return capture_visit_trace(seed=7, mode=CachingMode.CATALYST,
                               fault_plan=FaultPlan.mixed(0.3, seed=11))


class TestCrossLayerTrace:
    def test_spans_cover_at_least_four_layers(self, capture):
        categories = capture.tracer.categories()
        assert {"browser", "netsim", "sw", "server"} <= categories

    def test_single_trace_id_everywhere(self, capture):
        ids = {span.trace_id for span in capture.tracer.spans()}
        assert ids == {capture.trace_id}

    def test_parent_links_resolve(self, capture):
        spans = capture.tracer.spans()
        known = {span.span_id for span in spans}
        orphans = [s for s in spans
                   if s.parent_id is not None and s.parent_id not in known]
        assert orphans == []

    def test_server_spans_nest_under_network_attempts(self, capture):
        by_id = {s.span_id: s for s in capture.tracer.spans()}
        handles = capture.tracer.spans_named("server.handle")
        assert handles
        for span in handles:
            assert by_id[span.parent_id].name == "net.attempt"

    def test_warm_visit_shows_sw_hits(self, capture):
        hits = capture.tracer.spans_named("sw.etag_hit")
        assert hits, "warm Catalyst visit should be served from the SW"


class TestFaultVisibility:
    def test_faults_and_retries_land_in_trace(self, faulty_capture):
        names = {s.name for s in faulty_capture.tracer.spans()}
        assert names & {"fault.loss", "fault.reset", "fault.truncate"}
        assert "net.retry" in names

    def test_retry_instants_point_at_their_attempt_tree(self, faulty_capture):
        known = {s.span_id for s in faulty_capture.tracer.spans()}
        for retry in faulty_capture.tracer.spans_named("net.retry"):
            assert retry.parent_id in known


class TestChromeTraceExport:
    def test_schema_is_perfetto_valid(self, capture):
        trace = json.loads(capture.chrome_trace_json())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in {"M", "X", "i"}
            if event["ph"] == "M":
                continue  # metadata events carry no timestamp
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert event.get("dur", 0) >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_har_entries_link_back_to_spans(self, capture):
        har = capture.har()
        entries = har["log"]["entries"]
        assert entries
        linked = [e for e in entries if "_spanId" in e]
        assert len(linked) == len(entries)
        assert all(e["_traceId"] == capture.trace_id for e in linked)

    def test_jsonl_rows_parse(self, capture):
        rows = [json.loads(line) for line in capture.jsonl().splitlines()]
        assert len(rows) == len(capture.tracer.spans())


class TestZeroOverheadWhenDisabled:
    def test_null_tracer_allocates_nothing(self):
        assert NULL_TRACER.begin("x", "cat") is NULL_SPAN
        assert NULL_TRACER.instant("x") is NULL_SPAN

    def test_plt_identical_traced_vs_untraced(self):
        # The DES is deterministic, so tracing must not perturb a
        # single timestamp: identical PLTs, byte-for-byte.
        untraced = capture_visit_trace(seed=21, tracer=NULL_TRACER)
        traced = capture_visit_trace(seed=21, tracer=Tracer())
        assert traced.tracer.spans(), "traced run must record spans"
        plts = lambda cap: [o.plt_ms for o in cap.outcomes]  # noqa: E731
        assert plts(traced) == plts(untraced)


class TestStatsEndpoint:
    def test_stats_route_reports_tracer_and_app(self):
        from repro.http.aclient import AsyncHttpClient
        from repro.http.aserver import STATS_PATH, AsyncHttpServer
        from repro.http.messages import Response

        tracer = Tracer()

        async def scenario():
            server = AsyncHttpServer(lambda req: Response(body=b"ok"),
                                     tracer=tracer,
                                     stats_source=lambda: {"hits": 4})
            async with server:
                async with AsyncHttpClient() as client:
                    await client.get(server.base_url + "/warm")
                    stats = await client.get(server.base_url + STATS_PATH)
                    return stats.response

        response = asyncio.run(scenario())
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["requests_served"] >= 1
        assert payload["app"] == {"hits": 4}
        assert payload["tracer"]["trace_id"] == tracer.trace_id
        assert tracer.spans_named("server.request")

    def test_stats_route_reports_histogram_percentiles(self):
        # The satellite fix: with a registry wired in, the endpoint must
        # report request-latency *distributions* (p50/p90/p99), not just
        # counts.
        from repro.http.aclient import AsyncHttpClient
        from repro.http.aserver import STATS_PATH, AsyncHttpServer
        from repro.http.messages import Response

        metrics = MetricsRegistry()

        async def scenario():
            server = AsyncHttpServer(lambda req: Response(body=b"ok"),
                                     metrics=metrics)
            async with server:
                async with AsyncHttpClient() as client:
                    for _ in range(5):
                        await client.get(server.base_url + "/page")
                    stats = await client.get(server.base_url + STATS_PATH)
                    return stats.response

        response = asyncio.run(scenario())
        payload = json.loads(response.body)
        latency = payload["metrics"]["http.request_ms"]
        assert latency["count"] == 5
        assert 0.0 < latency["p50"] <= latency["p90"] <= latency["p99"]
        assert payload["metrics"]["http.requests"] == 5
        assert payload["metrics"]["http.status.2xx"] == 5

    def test_stats_request_itself_not_metered(self):
        # /__repro/stats short-circuits before dispatch metering, so
        # probing the endpoint does not pollute the latency series.
        from repro.http.aclient import AsyncHttpClient
        from repro.http.aserver import STATS_PATH, AsyncHttpServer
        from repro.http.messages import Response

        metrics = MetricsRegistry()

        async def scenario():
            server = AsyncHttpServer(lambda req: Response(body=b"ok"),
                                     metrics=metrics)
            async with server:
                async with AsyncHttpClient() as client:
                    await client.get(server.base_url + STATS_PATH)
                    await client.get(server.base_url + STATS_PATH)

        asyncio.run(scenario())
        assert metrics.get("http.requests") is None


class TestProfilerZeroOverhead:
    def test_plt_identical_profiled_vs_unprofiled(self):
        # Paired-run satellite: profiling is a post-hoc read of the span
        # ring, so a run without it must produce byte-identical PLTs.
        unprofiled = capture_visit_trace(seed=33, tracer=NULL_TRACER)
        profiled = capture_visit_trace(seed=33, tracer=Tracer())
        stacks = collapsed_stacks(profiled.tracer)  # the actual profile
        assert stacks, "profiled run must yield weighted stacks"
        plts = lambda cap: [o.plt_ms for o in cap.outcomes]  # noqa: E731
        assert plts(profiled) == plts(unprofiled)

    def test_self_times_cover_every_layer(self, capture):
        totals = self_times(capture.tracer)
        categories = {category for category, _ in totals}
        assert {"browser", "netsim", "server"} <= categories
        # self time never exceeds inclusive time
        for entry in totals.values():
            assert 0.0 <= entry["self_s"] <= entry["total_s"] + 1e-9

    def test_flamegraph_export_shape(self, capture):
        text = capture.flamegraph()
        assert text.endswith("\n")
        for line in text.splitlines():
            path, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert path  # frames survive sanitization
        # root frames must include the page load
        assert any(line.startswith("browser:page.load")
                   for line in text.splitlines())

    def test_self_time_table_renders(self, capture):
        table = capture.self_time_table(top=5)
        assert "self ms" in table and "share" in table
