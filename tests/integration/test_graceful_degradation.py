"""Integration: deployability without client changes (paper §1/§3).

"It is noteworthy that the proposed solution can be deployed without any
changes to the existing client browsers."  Two halves to that claim:

1. a Service-Worker-capable browser gets the full benefit purely from
   what the server sends (registration snippet + header) — no browser
   modification;
2. a client *without* Service Worker support (or with it disabled) must
   see exactly standard-caching behaviour against a Catalyst server —
   the header is advisory, the injection inert.
"""

import pytest

from repro.browser.engine import BrowserConfig
from repro.browser.metrics import FetchSource
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, ModeSetup, build_mode
from repro.netsim.clock import DAY
from repro.netsim.link import NetworkConditions
from repro.server.catalyst import CatalystServer
from repro.server.site import OriginSite
from repro.workload.sitegen import freeze_site, generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site_spec():
    return freeze_site(generate_site("https://deg.example", seed=19,
                                     median_resources=30))


def catalyst_server_with_plain_browser(site_spec) -> ModeSetup:
    """A Catalyst origin serving a browser that ignores Service Workers."""
    from repro.browser.engine import BrowserSession
    site = OriginSite(site_spec)
    return ModeSetup(mode=CachingMode.STANDARD,
                     server=CatalystServer(site),
                     session=BrowserSession(BrowserConfig(
                         use_service_worker=False)))


class TestNoClientChanges:
    def test_plain_browser_unharmed_by_catalyst_server(self, site_spec):
        """SW-less client + Catalyst server == plain standard caching
        (modulo the few header bytes, which cost < 1% at 60 Mbps)."""
        degraded = catalyst_server_with_plain_browser(site_spec)
        degraded_outcomes = run_visit_sequence(degraded, COND, [0.0, DAY])

        standard = build_mode(CachingMode.STANDARD, site_spec)
        standard_outcomes = run_visit_sequence(standard, COND, [0.0, DAY])

        for index in (0, 1):
            a = degraded_outcomes[index].result
            b = standard_outcomes[index].result
            assert a.plt_s == pytest.approx(b.plt_s, rel=0.02)

    def test_plain_browser_never_uses_sw_sources(self, site_spec):
        degraded = catalyst_server_with_plain_browser(site_spec)
        outcomes = run_visit_sequence(degraded, COND, [0.0, DAY])
        for outcome in outcomes:
            for event in outcome.result.events:
                assert event.source is not FetchSource.SW_CACHE

    def test_plain_browser_cache_semantics_identical(self, site_spec):
        degraded = catalyst_server_with_plain_browser(site_spec)
        standard = build_mode(CachingMode.STANDARD, site_spec)
        warm_a = run_visit_sequence(degraded, COND, [0.0, DAY])[1].result
        warm_b = run_visit_sequence(standard, COND, [0.0, DAY])[1].result
        sources_a = {s.value: c for s, c in warm_a.count_by_source().items()}
        sources_b = {s.value: c for s, c in warm_b.count_by_source().items()}
        assert sources_a == sources_b

    def test_capable_browser_needs_no_modification(self, site_spec):
        """The full benefit arrives through ordinary web platform
        machinery: the registration is part of the served HTML, the map
        is an ordinary response header."""
        setup = build_mode(CachingMode.CATALYST, site_spec)
        outcomes = run_visit_sequence(setup, COND, [0.0, DAY])
        # registration happened because of served content alone
        assert setup.session.sw.registered
        warm_sources = outcomes[1].result.count_by_source()
        assert warm_sources.get(FetchSource.SW_CACHE, 0) > 0


class TestCorruptedMapDegradation:
    """ISSUE acceptance: a damaged ``X-Etag-Config`` must degrade to
    standard conditional revalidation — never an exception, never an
    unvouched resource served from the SW cache."""

    @pytest.mark.faults
    @pytest.mark.parametrize("corruption",
                             ["truncate", "garbage", "partial", "drop"])
    def test_corrupted_map_midflight_page_still_loads(self, site_spec,
                                                      corruption):
        from types import SimpleNamespace

        from repro.experiments.faults import HeaderCorruptingMiddlebox

        setup = build_mode(CachingMode.CATALYST, site_spec)
        # cold visit sees a clean map; every later map is damaged
        middlebox = HeaderCorruptingMiddlebox(setup.handler,
                                              mode=corruption,
                                              start_after=1)
        damaged = ModeSetup(mode=setup.mode,
                            server=SimpleNamespace(handle=middlebox),
                            session=setup.session)
        outcomes = run_visit_sequence(damaged, COND, [0.0, DAY, 2 * DAY])
        assert middlebox.corrupted > 0
        for outcome in outcomes:
            result = outcome.result
            assert result.failure_count == 0, result.failed_urls()
            assert len(result.events) == len(outcomes[0].result.events)

    @pytest.mark.faults
    def test_degraded_resources_revalidate_conditionally(self, site_spec):
        from types import SimpleNamespace

        from repro.experiments.faults import HeaderCorruptingMiddlebox

        setup = build_mode(CachingMode.CATALYST, site_spec)
        middlebox = HeaderCorruptingMiddlebox(setup.handler,
                                              mode="truncate",
                                              start_after=1)
        damaged = ModeSetup(mode=setup.mode,
                            server=SimpleNamespace(handle=middlebox),
                            session=setup.session)
        warm = run_visit_sequence(damaged, COND, [0.0, DAY])[1].result
        sources = warm.count_by_source()
        # no usable map on the warm document: zero SW hits, the cached
        # resources fall back to the standard conditional path
        assert sources.get(FetchSource.SW_CACHE, 0) == 0
        assert sources.get(FetchSource.REVALIDATED, 0) > 0
        assert setup.session.sw.degraded_documents >= 1

    @pytest.mark.faults
    def test_partial_map_salvages_surviving_entries(self, site_spec):
        from types import SimpleNamespace

        from repro.experiments.faults import HeaderCorruptingMiddlebox

        setup = build_mode(CachingMode.CATALYST, site_spec)
        middlebox = HeaderCorruptingMiddlebox(setup.handler,
                                              mode="partial",
                                              start_after=1)
        damaged = ModeSetup(mode=setup.mode,
                            server=SimpleNamespace(handle=middlebox),
                            session=setup.session)
        warm = run_visit_sequence(damaged, COND, [0.0, DAY])[1].result
        sources = warm.count_by_source()
        assert warm.failure_count == 0
        # surviving entries keep the zero-RTT path; broken ones revalidate
        assert sources.get(FetchSource.SW_CACHE, 0) > 0
        assert sources.get(FetchSource.REVALIDATED, 0) > 0

    @pytest.mark.faults
    def test_server_fail_open_serves_page_without_map(self, site_spec):
        from repro.core.etag_config import ETAG_CONFIG_HEADER
        from repro.http.messages import Request
        from repro.server.catalyst import CatalystConfig
        from repro.server.site import OriginSite

        site = OriginSite(site_spec)
        server = CatalystServer(site)
        server._build_config_for_html = _raises  # map construction breaks
        response = server.handle(Request(url="/index.html"), 0.0)
        assert response.status == 200
        assert response.headers.get(ETAG_CONFIG_HEADER) is None
        assert server.map_build_failures == 1

        strict = CatalystServer(OriginSite(site_spec),
                                config=CatalystConfig(fail_open=False))
        strict._build_config_for_html = _raises
        with pytest.raises(RuntimeError):
            strict.handle(Request(url="/index.html"), 0.0)


def _raises(*args, **kwargs):
    raise RuntimeError("synthetic map-construction failure")


class TestLossAcceptance:
    """ISSUE acceptance: 5 % request loss at 60 Mbps / 40 ms — both modes
    complete every load, and Catalyst's PLT does not exceed standard's."""

    @pytest.mark.faults
    def test_both_modes_complete_and_catalyst_not_worse(self, site_spec):
        from repro.browser.engine import BrowserConfig
        from repro.netsim.faults import FaultPlan

        plan = FaultPlan.request_loss(0.05, seed=0)
        config = BrowserConfig(request_timeout_s=3.0, max_retries=4)
        warm = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site_spec, config)
            outcomes = run_visit_sequence(setup, COND, [0.0, DAY],
                                          fault_plan=plan)
            for outcome in outcomes:
                result = outcome.result
                assert result.failure_count == 0, (mode,
                                                   result.failed_urls())
            assert len(outcomes[0].result.events) \
                == len(outcomes[1].result.events)
            warm[mode] = outcomes[1].result
        assert warm[CachingMode.CATALYST].plt_s \
            <= warm[CachingMode.STANDARD].plt_s
