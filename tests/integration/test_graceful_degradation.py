"""Integration: deployability without client changes (paper §1/§3).

"It is noteworthy that the proposed solution can be deployed without any
changes to the existing client browsers."  Two halves to that claim:

1. a Service-Worker-capable browser gets the full benefit purely from
   what the server sends (registration snippet + header) — no browser
   modification;
2. a client *without* Service Worker support (or with it disabled) must
   see exactly standard-caching behaviour against a Catalyst server —
   the header is advisory, the injection inert.
"""

import pytest

from repro.browser.engine import BrowserConfig
from repro.browser.metrics import FetchSource
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, ModeSetup, build_mode
from repro.netsim.clock import DAY
from repro.netsim.link import NetworkConditions
from repro.server.catalyst import CatalystServer
from repro.server.site import OriginSite
from repro.workload.sitegen import freeze_site, generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site_spec():
    return freeze_site(generate_site("https://deg.example", seed=19,
                                     median_resources=30))


def catalyst_server_with_plain_browser(site_spec) -> ModeSetup:
    """A Catalyst origin serving a browser that ignores Service Workers."""
    from repro.browser.engine import BrowserSession
    site = OriginSite(site_spec)
    return ModeSetup(mode=CachingMode.STANDARD,
                     server=CatalystServer(site),
                     session=BrowserSession(BrowserConfig(
                         use_service_worker=False)))


class TestNoClientChanges:
    def test_plain_browser_unharmed_by_catalyst_server(self, site_spec):
        """SW-less client + Catalyst server == plain standard caching
        (modulo the few header bytes, which cost < 1% at 60 Mbps)."""
        degraded = catalyst_server_with_plain_browser(site_spec)
        degraded_outcomes = run_visit_sequence(degraded, COND, [0.0, DAY])

        standard = build_mode(CachingMode.STANDARD, site_spec)
        standard_outcomes = run_visit_sequence(standard, COND, [0.0, DAY])

        for index in (0, 1):
            a = degraded_outcomes[index].result
            b = standard_outcomes[index].result
            assert a.plt_s == pytest.approx(b.plt_s, rel=0.02)

    def test_plain_browser_never_uses_sw_sources(self, site_spec):
        degraded = catalyst_server_with_plain_browser(site_spec)
        outcomes = run_visit_sequence(degraded, COND, [0.0, DAY])
        for outcome in outcomes:
            for event in outcome.result.events:
                assert event.source is not FetchSource.SW_CACHE

    def test_plain_browser_cache_semantics_identical(self, site_spec):
        degraded = catalyst_server_with_plain_browser(site_spec)
        standard = build_mode(CachingMode.STANDARD, site_spec)
        warm_a = run_visit_sequence(degraded, COND, [0.0, DAY])[1].result
        warm_b = run_visit_sequence(standard, COND, [0.0, DAY])[1].result
        sources_a = {s.value: c for s, c in warm_a.count_by_source().items()}
        sources_b = {s.value: c for s, c in warm_b.count_by_source().items()}
        assert sources_a == sources_b

    def test_capable_browser_needs_no_modification(self, site_spec):
        """The full benefit arrives through ordinary web platform
        machinery: the registration is part of the served HTML, the map
        is an ordinary response header."""
        setup = build_mode(CachingMode.CATALYST, site_spec)
        outcomes = run_visit_sequence(setup, COND, [0.0, DAY])
        # registration happened because of served content alone
        assert setup.session.sw.registered
        warm_sources = outcomes[1].result.count_by_source()
        assert warm_sources.get(FetchSource.SW_CACHE, 0) > 0
