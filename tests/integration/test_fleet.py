"""Multi-process SO_REUSEPORT fleet: start, serve, merge stats, drain.

Worker processes are real (spawn), so these tests are seconds-scale;
they skip wholesale on platforms without ``SO_REUSEPORT``.
"""

import asyncio
import socket

import pytest

from repro.http.aclient import AsyncHttpClient
from repro.http.fleet import (HAVE_REUSEPORT, FleetConfig, ServerFleet,
                              build_app, reuseport_socket)
from repro.http.messages import Response

needs_reuseport = pytest.mark.skipif(
    not HAVE_REUSEPORT, reason="platform lacks SO_REUSEPORT")


def run(coro):
    return asyncio.run(coro)


class TestReuseportSocket:
    @needs_reuseport
    def test_two_sockets_share_one_port(self):
        first = reuseport_socket("127.0.0.1", 0)
        port = first.getsockname()[1]
        second = reuseport_socket("127.0.0.1", port)  # no EADDRINUSE
        assert second.getsockname()[1] == port
        first.close()
        second.close()

    def test_sockets_bound_but_not_listening(self):
        sock = reuseport_socket("127.0.0.1", 0)
        try:
            with pytest.raises(OSError):
                socket.create_connection(sock.getsockname(), timeout=0.5)
        finally:
            sock.close()


class TestBuildApp:
    def test_static_app_deterministic_for_seed(self):
        handler_a, _ = build_app(FleetConfig(app="static", seed=5))
        handler_b, _ = build_app(FleetConfig(app="static", seed=5))
        handler_c, _ = build_app(FleetConfig(app="static", seed=6))
        a = handler_a(None).body
        assert a == handler_b(None).body
        assert a != handler_c(None).body
        assert len(a) == 2048

    def test_catalyst_app_serves_site(self):
        handler, stats_source = build_app(
            FleetConfig(app="catalyst", seed=1, median_resources=8))
        from repro.http.messages import Request
        response = handler(Request(url="/index.html"))
        assert isinstance(response, Response)
        assert response.status == 200
        assert callable(stats_source)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            build_app(FleetConfig(app="nope"))


@needs_reuseport
class TestServerFleet:
    def test_two_shards_serve_and_drain(self):
        config = FleetConfig(shards=2, seed=3, app="static",
                             max_inflight=16)
        fleet = ServerFleet(config).start()
        try:
            async def drive():
                async with AsyncHttpClient() as client:
                    bodies = set()
                    for _ in range(12):
                        result = await client.get(fleet.base_url + "/")
                        assert result.response.status == 200
                        bodies.add(result.response.body)
                    return bodies

            bodies = run(drive())
            assert len(bodies) == 1  # same seed -> identical shards
            stats = fleet.stats()
            assert stats["shards"] == 2
            assert stats["totals"]["requests_served"] == 12
            assert stats["totals"]["shed_503"] == 0
            # the merged registry folded per-worker dumps: the request
            # counter matches the summed per-worker counters
            assert stats["metrics"]["http.requests"] == 12
            per_worker = [w["requests_served"] for w in stats["workers"]]
            assert sum(per_worker) == 12
        finally:
            reports = fleet.stop(drain_s=2.0)
        assert len(reports) == 2
        assert all(r["hard_cancelled"] == 0 for r in reports)

    def test_fleet_context_manager(self):
        with ServerFleet(FleetConfig(shards=2, seed=1,
                                     app="static")) as fleet:
            async def one():
                async with AsyncHttpClient() as client:
                    return (await client.get(fleet.base_url + "/")).response
            assert run(one()).status == 200

    def test_multi_shard_without_reuseport_raises(self, monkeypatch):
        monkeypatch.setattr("repro.http.fleet.HAVE_REUSEPORT", False)
        with pytest.raises(RuntimeError, match="SO_REUSEPORT"):
            ServerFleet(FleetConfig(shards=2)).start()
