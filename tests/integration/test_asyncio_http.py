"""Integration tests: real TCP sockets, the same servers the DES measures.

This is the paper's deployment story made concrete: the identical
CatalystServer object that the simulator measures also serves real HTTP
over localhost through the asyncio front end.
"""

import asyncio
import json

import pytest

from repro.http.aclient import AsyncHttpClient
from repro.http.aserver import AsyncHttpServer
from repro.http.headers import Headers
from repro.http.messages import Request, Response
from repro.server.adapter import as_async_handler
from repro.server.catalyst import CatalystServer
from repro.server.site import OriginSite
from repro.workload.sitegen import generate_site


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def site():
    return OriginSite(generate_site("https://real.example", seed=13,
                                    median_resources=15),
                      materialize_fully=True)


class TestRawServer:
    def test_echo_handler(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=req.path.encode())) as server:
                async with AsyncHttpClient() as client:
                    result = await client.get(f"{server.base_url}/hello")
                    return result.response
        response = run(scenario())
        assert response.status == 200
        assert response.body == b"/hello"

    def test_async_handler_supported(self):
        async def handler(request):
            await asyncio.sleep(0)
            return Response(body=b"async-ok")

        async def scenario():
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient() as client:
                    return (await client.get(server.base_url + "/")).response
        assert run(scenario()).body == b"async-ok"

    def test_handler_exception_is_500(self):
        def handler(request):
            raise RuntimeError("boom")

        async def scenario():
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient() as client:
                    return (await client.get(server.base_url + "/")).response
        assert run(scenario()).status == 500

    def test_keep_alive_reuses_connection(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                async with AsyncHttpClient() as client:
                    first = await client.get(server.base_url + "/a")
                    second = await client.get(server.base_url + "/b")
                    return first.timing, second.timing
        first, second = run(scenario())
        assert not first.reused_connection
        assert second.reused_connection

    def test_many_concurrent_requests(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=req.path.encode())) as server:
                async with AsyncHttpClient() as client:
                    results = await asyncio.gather(*[
                        client.get(f"{server.base_url}/r{i}")
                        for i in range(24)])
                    return [r.response.body for r in results]
        bodies = run(scenario())
        assert bodies == [f"/r{i}".encode() for i in range(24)]

    def test_latency_injection_visible(self):
        async def timed(latency):
            async with AsyncHttpServer(lambda req: Response(body=b"x"),
                                       latency_s=latency) as server:
                async with AsyncHttpClient() as client:
                    result = await client.get(server.base_url + "/")
                    return result.timing.total_s
        fast = run(timed(0.0))
        slow = run(timed(0.08))
        assert slow > fast + 0.05

    def test_bad_request_rejected(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"NOT A REQUEST\r\n\r\n")
                await writer.drain()
                data = await reader.read(64)
                writer.close()
                return data
        assert b"400" in run(scenario())


class TestCatalystOverSockets:
    def test_full_catalyst_flow(self, site):
        catalyst = CatalystServer(site)

        async def scenario():
            handler = as_async_handler(catalyst)
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient() as client:
                    base = server.base_url
                    html = (await client.get(f"{base}/index.html")).response
                    assert html.status == 200
                    config = json.loads(html.headers["X-Etag-Config"])
                    assert config
                    # fetch one stapled resource and check its live ETag
                    url, expected_tag = next(iter(config.items()))
                    asset = (await client.get(base + url)).response
                    assert asset.status == 200
                    assert asset.etag.opaque == expected_tag
                    # conditional revisit of the HTML
                    revisit = (await client.request(Request(
                        url=f"{base}/index.html",
                        headers=Headers(
                            {"If-None-Match": html.headers["ETag"]}))
                    )).response
                    return revisit
        revisit = run(scenario())
        assert revisit.status == 304
        assert "X-Etag-Config" in revisit.headers

    def test_service_worker_script_served(self, site):
        catalyst = CatalystServer(site)

        async def scenario():
            async with AsyncHttpServer(as_async_handler(catalyst)) as server:
                async with AsyncHttpClient() as client:
                    return (await client.get(
                        server.base_url + "/cache-catalyst-sw.js")).response
        response = run(scenario())
        assert response.status == 200
        assert b"etagConfig" in response.body

    def test_time_scale_ages_content(self, site):
        import itertools
        ticker = itertools.count()
        clock = lambda: float(next(ticker))
        catalyst = CatalystServer(site)
        handler = as_async_handler(catalyst, clock=clock,
                                   time_scale=3600.0)

        async def scenario():
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient() as client:
                    first = (await client.get(
                        server.base_url + "/index.html")).response
                    second = (await client.get(
                        server.base_url + "/index.html")).response
                    return first, second
        first, second = run(scenario())
        # each wall "second" = 1 simulated hour; HTML churns in hours, so
        # Dates must differ and the serving stayed coherent
        assert first.headers["Date"] != second.headers["Date"]
