"""Integration: full corpus-site page loads through every caching mode."""

import pytest

from repro.browser.metrics import FetchSource
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.netsim.clock import DAY, HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.sitegen import freeze_site, generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site():
    return generate_site("https://int.example", seed=4, median_resources=45)


@pytest.fixture(scope="module")
def frozen(site):
    return freeze_site(site)


def warm_result(site_spec, mode, delay=DAY, conditions=COND):
    setup = build_mode(mode, site_spec)
    outcomes = run_visit_sequence(setup, conditions, [0.0, delay])
    return outcomes[0].result, outcomes[1].result


class TestEveryModeLoadsThePage:
    @pytest.mark.parametrize("mode", list(CachingMode))
    def test_full_resource_coverage(self, site, mode):
        cold, warm = warm_result(site, mode)
        expected = set(site.index.resources) | {"/index.html"}
        assert {e.url for e in cold.events} == expected
        assert {e.url for e in warm.events} == expected

    @pytest.mark.parametrize("mode", list(CachingMode))
    def test_events_within_load_window(self, site, mode):
        cold, warm = warm_result(site, mode)
        for result in (cold, warm):
            for event in result.events:
                assert result.start_s <= event.start_s <= event.end_s
                assert event.end_s <= result.onload_s + 1e-9


class TestModeOrdering:
    def test_warm_plt_ordering_on_frozen_content(self, frozen):
        """On clone content: no-cache >= standard >= catalyst."""
        plts = {}
        for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                     CachingMode.CATALYST):
            _, warm = warm_result(frozen, mode)
            plts[mode] = warm.plt_s
        assert plts[CachingMode.NO_CACHE] >= plts[CachingMode.STANDARD]
        assert plts[CachingMode.STANDARD] > plts[CachingMode.CATALYST]

    def test_catalyst_saves_bytes_vs_standard(self, frozen):
        _, warm_std = warm_result(frozen, CachingMode.STANDARD)
        _, warm_cat = warm_result(frozen, CachingMode.CATALYST)
        assert warm_cat.bytes_down <= warm_std.bytes_down

    def test_push_wastes_bytes_on_revisit(self, frozen):
        _, warm_std = warm_result(frozen, CachingMode.STANDARD)
        _, warm_push = warm_result(frozen, CachingMode.PUSH_ALL)
        pushed = [e for e in warm_push.events
                  if e.source is FetchSource.PUSHED]
        assert pushed
        # push re-ships bytes the standard client served from cache


class TestCatalystMechanics:
    def test_sw_hits_dominate_on_frozen_revisit(self, frozen):
        _, warm = warm_result(frozen, CachingMode.CATALYST)
        counts = {source.value: count
                  for source, count in warm.count_by_source().items()}
        total = sum(counts.values())
        assert counts.get("sw-cache", 0) > 0.5 * total

    def test_revalidations_nearly_eliminated(self, frozen):
        _, warm_std = warm_result(frozen, CachingMode.STANDARD)
        _, warm_cat = warm_result(frozen, CachingMode.CATALYST)
        reval_std = sum(1 for e in warm_std.events
                        if e.source is FetchSource.REVALIDATED)
        reval_cat = sum(1 for e in warm_cat.events
                        if e.source is FetchSource.REVALIDATED)
        assert reval_std > 0
        assert reval_cat < reval_std / 2

    def test_dynamic_resources_always_fetched(self, frozen):
        _, warm = warm_result(frozen, CachingMode.CATALYST)
        page = frozen.index
        for event in warm.events:
            spec = page.resources.get(event.url)
            if spec is not None and spec.dynamic:
                assert event.source is FetchSource.NETWORK

    def test_sessions_mode_beats_plain_catalyst_eventually(self, frozen):
        """Third visit: session stapling covers js-discovered resources."""
        js_urls = {u for u, s in frozen.index.resources.items()
                   if s.discovered_via == "js" and not s.dynamic}
        if not js_urls:
            pytest.skip("no js-discovered resources in this seed")
        plain = build_mode(CachingMode.CATALYST, frozen)
        sessions = build_mode(CachingMode.CATALYST_SESSIONS, frozen)
        times = [0.0, HOUR, 2 * HOUR]
        plain_results = run_visit_sequence(plain, COND, times)
        session_results = run_visit_sequence(sessions, COND, times)
        assert session_results[2].result.plt_s <= \
            plain_results[2].result.plt_s

    def test_multi_visit_sequence_stays_consistent(self, site):
        """Churned content across five visits: no errors, PLT bounded."""
        setup = build_mode(CachingMode.CATALYST, site)
        times = [0.0, HOUR, 6 * HOUR, DAY, 7 * DAY]
        outcomes = run_visit_sequence(setup, COND, times)
        cold_plt = outcomes[0].result.plt_s
        for outcome in outcomes[1:]:
            assert 0 < outcome.result.plt_s <= cold_plt * 1.1
