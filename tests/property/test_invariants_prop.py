"""Property-based tests of the reproduction's system-level invariants.

These are the claims the whole evaluation stands on, checked across
randomly generated sites and conditions:

- **Catalyst is never slower** than status-quo caching on a warm visit
  (it degenerates to exactly the status-quo fetch path on every miss).
- **Catalyst never serves stale content**: every resource the browser
  ends up using carries the origin's current ETag (or was fetched).
- PLT is **monotone in RTT**.
"""

from hypothesis import given, settings, strategies as st

from repro.browser.metrics import FetchSource
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.experiments.harness import _stale_hits
from repro.netsim.clock import DAY, HOUR, MINUTE, WEEK
from repro.netsim.link import NetworkConditions
from repro.workload.sitegen import generate_site

seeds = st.integers(min_value=0, max_value=10_000)
delays = st.sampled_from([MINUTE, HOUR, 6 * HOUR, DAY, WEEK])
rtts = st.sampled_from([10.0, 40.0, 100.0])
mbps = st.sampled_from([8.0, 60.0])


def small_site(seed: int):
    return generate_site(f"https://prop{seed}.example", seed=seed,
                         median_resources=18)


@settings(max_examples=15, deadline=None)
@given(seeds, delays, rtts, mbps)
def test_catalyst_never_slower_unless_buying_freshness(seed, delay, rtt,
                                                       rate):
    """Catalyst may lose time only through two well-understood effects.

    1. *Buying freshness*: the SW veto demotes TTL-fresh-but-changed
       entries to real fetches; on bandwidth-bound links that honesty
       costs transfer time (and must show up as fewer stale serves).
    2. *Cold connection pools*: the eliminated revalidations would have
       warmed TCP/TLS connections that late JS-triggered fetches then
       reuse; without them those fetches pay fresh handshakes — bounded
       by one connection setup (+ lookup noise).

    Anything beyond those bounds is a bug.
    """
    site = small_site(seed)
    conditions = NetworkConditions.of(rate, rtt)
    warm = {}
    for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
        setup = build_mode(mode, site)
        outcomes = run_visit_sequence(setup, conditions, [0.0, delay])
        warm[mode] = outcomes[1].result
    cat, std = warm[CachingMode.CATALYST], warm[CachingMode.STANDARD]
    handshake_slack = 2.0 * conditions.rtt_s + 0.010
    if cat.plt_s <= std.plt_s * 1.02 + handshake_slack:
        return
    assert _stale_hits(cat, site, delay) < _stale_hits(std, site, delay)


@settings(max_examples=15, deadline=None)
@given(seeds, delays)
def test_catalyst_sw_path_never_stale(seed, delay):
    """Every SW-cache hit carries the origin's *current* ETag.

    (HTTP-cache hits for JS-discovered resources can still go stale —
    stapling cannot see them; that inherited staleness is bounded by the
    next property.)
    """
    site = small_site(seed)
    setup = build_mode(CachingMode.CATALYST, site)
    outcomes = run_visit_sequence(setup, NetworkConditions.of(60, 40),
                                  [0.0, delay])
    warm = outcomes[1].result
    from repro.server.site import OriginSite
    oracle = OriginSite(site)
    for event in warm.events:
        if event.source is FetchSource.SW_CACHE:
            current = oracle.etag_of(event.url, delay)
            assert current is None or event.served_etag == current


@settings(max_examples=15, deadline=None)
@given(seeds, delays)
def test_catalyst_no_staler_than_standard(seed, delay):
    site = small_site(seed)
    stale = {}
    for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
        setup = build_mode(mode, site)
        outcomes = run_visit_sequence(setup, NetworkConditions.of(60, 40),
                                      [0.0, delay])
        stale[mode] = _stale_hits(outcomes[1].result, site, delay)
    assert stale[CachingMode.CATALYST] <= stale[CachingMode.STANDARD]


@settings(max_examples=10, deadline=None)
@given(seeds, delays)
def test_plt_monotone_in_rtt(seed, delay):
    site = small_site(seed)
    plts = []
    for rtt in (10.0, 40.0, 100.0):
        setup = build_mode(CachingMode.STANDARD, site)
        outcomes = run_visit_sequence(
            setup, NetworkConditions.of(60, rtt), [0.0, delay])
        plts.append(outcomes[0].result.plt_s)
    assert plts == sorted(plts)


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_cold_load_identical_across_cache_modes(seed):
    """Mode changes must not affect a cold, empty-cache load (beyond the
    catalyst header/injection overhead, which is sub-millisecond)."""
    site = small_site(seed)
    plts = {}
    for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                 CachingMode.CATALYST):
        setup = build_mode(mode, site)
        outcomes = run_visit_sequence(setup, NetworkConditions.of(60, 40),
                                      [0.0])
        plts[mode] = outcomes[0].result.plt_s
    assert plts[CachingMode.STANDARD] == \
        plts[CachingMode.NO_CACHE]
    assert abs(plts[CachingMode.CATALYST]
               - plts[CachingMode.STANDARD]) < 0.020
