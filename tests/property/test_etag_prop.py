"""Property-based tests for ETags and the If-None-Match algebra."""

import string

from hypothesis import given, strategies as st

from repro.http.etag import (ETag, etag_for_content, if_none_match_matches,
                             parse_etag, parse_etag_list)

opaque = st.text(alphabet=string.ascii_letters + string.digits + "-._:/+",
                 min_size=0, max_size=24)
etags = st.builds(ETag, opaque=opaque, weak=st.booleans())


@given(etags)
def test_parse_str_roundtrip(tag):
    assert parse_etag(str(tag)) == tag


@given(etags)
def test_weak_compare_reflexive(tag):
    assert tag.weak_compare(tag)


@given(etags, etags)
def test_weak_compare_symmetric(a, b):
    assert a.weak_compare(b) == b.weak_compare(a)


@given(etags, etags)
def test_strong_implies_weak(a, b):
    if a.strong_compare(b):
        assert a.weak_compare(b)


@given(st.lists(etags, min_size=1, max_size=8))
def test_list_roundtrip(tags):
    header_value = ", ".join(str(tag) for tag in tags)
    assert parse_etag_list(header_value) == tags


@given(st.lists(etags, min_size=1, max_size=8), etags)
def test_if_none_match_equivalent_to_any(tags, current):
    header_value = ", ".join(str(tag) for tag in tags)
    expected = any(tag.weak_compare(current) for tag in tags)
    assert if_none_match_matches(header_value, current) == expected


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_content_etag_injective_enough(a, b):
    """Equal content -> equal tag; differing tags -> differing content."""
    tag_a, tag_b = etag_for_content(a), etag_for_content(b)
    if a == b:
        assert tag_a == tag_b
    if tag_a != tag_b:
        assert a != b
