"""Property-based tests for the LRU cache store invariants."""

from hypothesis import given, strategies as st

from repro.cache.store import CacheStore
from repro.http.messages import Request, Response

urls = st.sampled_from([f"/r{i}" for i in range(8)])
bodies = st.binary(min_size=0, max_size=200)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("store"), urls, bodies),
        st.tuples(st.just("lookup"), urls, st.just(b"")),
        st.tuples(st.just("invalidate"), urls, st.just(b"")),
    ),
    max_size=60)


def apply_ops(store: CacheStore, operations):
    clock = 0.0
    for op, url, body in operations:
        clock += 1.0
        if op == "store":
            store.store(Request(url=url), Response(body=body), clock, clock)
        elif op == "lookup":
            store.lookup(Request(url=url), clock)
        else:
            store.invalidate(url)


@given(ops)
def test_byte_size_matches_entries(operations):
    store = CacheStore()
    apply_ops(store, operations)
    assert store.byte_size == sum(e.size_bytes for e in store.entries())


@given(ops, st.integers(min_value=300, max_value=2000))
def test_budget_respected(operations, budget):
    store = CacheStore(max_bytes=budget)
    apply_ops(store, operations)
    assert store.byte_size <= budget or store.entry_count <= 1


@given(ops)
def test_lookup_after_store_returns_latest_body(operations):
    store = CacheStore()
    latest: dict[str, bytes] = {}
    clock = 0.0
    for op, url, body in operations:
        clock += 1.0
        if op == "store":
            stored = store.store(Request(url=url), Response(body=body),
                                 clock, clock)
            if stored is not None:
                latest[url] = body
        elif op == "invalidate":
            store.invalidate(url)
            latest.pop(url, None)
    for url, body in latest.items():
        entry = store.lookup(Request(url=url), clock)
        assert entry is not None
        assert entry.response.body == body


@given(ops)
def test_hits_never_exceed_lookups(operations):
    store = CacheStore()
    apply_ops(store, operations)
    assert 0 <= store.hits <= store.lookups
