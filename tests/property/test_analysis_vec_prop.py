"""Property: the vectorized engine equals the scalar model everywhere.

The vectorized engine refactors every branch of the scalar model into
masked affine coefficients and a sort-and-stride wave aggregation — a
lot of algebra to get wrong silently.  Hypothesis drives both models
over generated (site, mode, delay, condition, cold) grids and demands
agreement to float tolerance, on every available backend.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import AnalyticModel
from repro.core.analysis_vec import (VectorAnalyticModel, compile_site,
                                     numpy_available)
from repro.core.modes import CachingMode
from repro.netsim.link import NetworkConditions
from repro.workload.sitegen import generate_site

pytestmark = pytest.mark.analytic

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

ALL_MODES = (CachingMode.NO_CACHE, CachingMode.STANDARD,
             CachingMode.CATALYST, CachingMode.CATALYST_SESSIONS,
             CachingMode.PUSH_ALL, CachingMode.HINTS)

delays = st.lists(
    st.one_of(st.just(0.0),
              st.floats(min_value=1e-3, max_value=10 * 7 * 86400.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=4)
conditions = st.lists(
    st.builds(NetworkConditions.of,
              st.floats(min_value=0.5, max_value=1000.0),
              st.floats(min_value=1.0, max_value=600.0)),
    min_size=1, max_size=3)
mode_subsets = st.lists(st.sampled_from(ALL_MODES), min_size=1,
                        max_size=4, unique=True)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       modes=mode_subsets, delay_list=delays,
       conditions_list=conditions, cold=st.booleans())
def test_vectorized_equals_scalar(seed, modes, delay_list,
                                  conditions_list, cold):
    site = generate_site(f"https://prop{seed}.example", seed=seed)
    compiled = compile_site(site)
    scalar_models = [AnalyticModel(cond) for cond in conditions_list]
    expected = [[[scalar_models[ci].estimate_plt(site, mode, delay,
                                                 cold=cold)
                  for delay in delay_list]
                 for mode in modes]
                for ci in range(len(conditions_list))]
    for backend in BACKENDS:
        batch = VectorAnalyticModel(backend=backend).batch_plt(
            compiled, modes, delay_list, conditions_list, cold=cold)
        for ci in range(len(conditions_list)):
            for mi in range(len(modes)):
                for di in range(len(delay_list)):
                    got = float(batch[ci][mi][di])
                    want = expected[ci][mi][di]
                    assert math.isfinite(got)
                    assert got == pytest.approx(want, rel=1e-9, abs=1e-12)
