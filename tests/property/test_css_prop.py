"""Property-based tests for CSS/JS reference extraction round trips."""

import string

from hypothesis import given, strategies as st

from repro.browser.js import extract_js_fetches
from repro.html.css import extract_css_urls
from repro.workload.sitegen import JS_FETCH_DIRECTIVE

url_chars = string.ascii_letters + string.digits + "/._-"
urls = st.lists(
    st.text(alphabet=url_chars, min_size=1, max_size=30)
    .map(lambda s: "/" + s),
    min_size=0, max_size=10, unique=True)
filler = st.text(alphabet=string.ascii_letters + string.digits + " ;{}:\n",
                 max_size=80)


@given(urls, filler)
def test_css_url_extraction_roundtrip(url_list, noise):
    css = noise + "\n" + "\n".join(
        f".c{i} {{ background: url({url}); }}"
        for i, url in enumerate(url_list))
    assert extract_css_urls(css) == url_list


@given(urls, filler)
def test_css_import_roundtrip(url_list, noise):
    css = "\n".join(f"@import '{url}';" for url in url_list) + "\n" + noise
    extracted = extract_css_urls(css)
    assert extracted[:len(url_list)] == url_list


@given(urls, filler)
def test_js_directive_roundtrip(url_list, noise):
    js = noise.replace("/*", "").replace("*/", "") + "\n" + "\n".join(
        f"{JS_FETCH_DIRECTIVE}{url}*/" for url in url_list)
    assert extract_js_fetches(js) == url_list


@given(st.text(max_size=200))
def test_extractors_never_raise(text):
    extract_css_urls(text)
    extract_js_fetches(text)
