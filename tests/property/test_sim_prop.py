"""Property-based tests for the DES kernel's ordering invariants."""

from hypothesis import given, settings, strategies as st

from repro.netsim.sim import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=1e4,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=30)


@given(delays)
def test_callbacks_fire_in_time_order(values):
    sim = Simulator()
    fired = []
    for delay in values:
        sim.timeout(delay).add_callback(lambda _ev, d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == max(values)


@given(delays)
def test_clock_never_goes_backwards(values):
    sim = Simulator()
    observed = []
    for delay in values:
        sim.timeout(delay).add_callback(lambda _ev: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)


@given(delays, delays)
def test_process_completion_equals_sum_of_waits(first, second):
    sim = Simulator()

    def proc(waits):
        for wait in waits:
            yield sim.timeout(wait)
        return sim.now
    a = sim.process(proc(first))
    b = sim.process(proc(second))
    sim.run()
    assert a.value == sum(first)
    assert b.value == sum(second)


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=5),
       st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=20))
def test_resource_conservation(capacity, durations):
    """Work conservation: makespan >= total_work / capacity."""
    sim = Simulator()
    resource = sim.resource(capacity)

    def worker(duration):
        yield resource.request()
        yield sim.timeout(duration)
        resource.release()
    for duration in durations:
        sim.process(worker(duration))
    sim.run()
    lower_bound = sum(durations) / capacity
    assert sim.now >= lower_bound - 1e-9
    assert sim.now <= sum(durations) + 1e-9
