"""Property-based tests for the DES kernel's ordering invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.netsim.sim import AllOf, AnyOf, Interrupt, Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=1e4,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=30)


@given(delays)
def test_callbacks_fire_in_time_order(values):
    sim = Simulator()
    fired = []
    for delay in values:
        sim.timeout(delay).add_callback(lambda _ev, d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == max(values)


@given(delays)
def test_clock_never_goes_backwards(values):
    sim = Simulator()
    observed = []
    for delay in values:
        sim.timeout(delay).add_callback(lambda _ev: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)


@given(delays, delays)
def test_process_completion_equals_sum_of_waits(first, second):
    sim = Simulator()

    def proc(waits):
        for wait in waits:
            yield sim.timeout(wait)
        return sim.now
    a = sim.process(proc(first))
    b = sim.process(proc(second))
    sim.run()
    assert a.value == sum(first)
    assert b.value == sum(second)


def _chaotic_trace(seed: int) -> tuple[list, float]:
    """Run a seed-derived tangle of AnyOf/AllOf/Interrupt workers and
    record every observable step as (who, sim.now, what)."""
    rng = random.Random(seed)
    sim = Simulator()
    trace: list = []
    workers = []

    def worker(ident: int):
        local = random.Random(seed * 1000 + ident)
        try:
            for step in range(local.randint(2, 6)):
                kind = local.choice(("timeout", "any", "all"))
                if kind == "timeout":
                    yield sim.timeout(local.uniform(0.0, 5.0))
                else:
                    parts = [sim.timeout(local.uniform(0.0, 5.0))
                             for _ in range(local.randint(1, 3))]
                    condition = (AnyOf(sim, parts) if kind == "any"
                                 else AllOf(sim, parts))
                    yield condition
                trace.append((ident, sim.now, kind))
        except Interrupt as exc:
            trace.append((ident, sim.now, f"interrupted:{exc.cause}"))

    def saboteur():
        for round_no in range(rng.randint(1, 4)):
            yield sim.timeout(rng.uniform(0.5, 4.0))
            victim = workers[rng.randrange(len(workers))]
            if victim.is_alive:
                victim.interrupt(cause=round_no)
                trace.append(("saboteur", sim.now, round_no))

    for ident in range(4):
        workers.append(sim.process(worker(ident)))
    sim.process(saboteur())
    sim.run()
    return trace, sim.now


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=10_000))
def test_interleaved_conditions_are_deterministic(seed):
    """Identical seeds give identical event orderings and final clocks,
    however AnyOf/AllOf/Interrupt interleave — reruns of a grid cell are
    bit-for-bit reproducible."""
    first_trace, first_clock = _chaotic_trace(seed)
    second_trace, second_clock = _chaotic_trace(seed)
    assert first_trace == second_trace
    assert first_clock == second_clock
    assert first_trace  # the tangle actually did something


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=5),
       st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=20))
def test_resource_conservation(capacity, durations):
    """Work conservation: makespan >= total_work / capacity."""
    sim = Simulator()
    resource = sim.resource(capacity)

    def worker(duration):
        yield resource.request()
        yield sim.timeout(duration)
        resource.release()
    for duration in durations:
        sim.process(worker(duration))
    sim.run()
    lower_bound = sum(durations) / capacity
    assert sim.now >= lower_bound - 1e-9
    assert sim.now <= sum(durations) + 1e-9
