"""Property tests for the mergeable sketch's accuracy contract.

The documented guarantee (see ``repro.obs.sketch``): for any
distribution of positive samples split across any number of shards —
including empty shards and single-sample shards — merging the shard
sketches and asking for ``percentile(q)`` returns a value within the
sketch's relative error of the *pooled* samples' true nearest-rank
percentile.  This is the property that makes ``run_grid_parallel``'s
fleet aggregates trustworthy.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import LogHistogram

pytestmark = pytest.mark.obs

# Positive, finite, spanning ~9 decades — latencies, byte counts, ratios.
values = st.lists(
    st.floats(min_value=1e-3, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300)

# Shard assignment is arbitrary; empty shards must be harmless.
shard_counts = st.integers(min_value=1, max_value=8)
quantiles = st.sampled_from([1.0, 10.0, 50.0, 90.0, 99.0, 100.0])


def true_nearest_rank(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@given(samples=values, shards=shard_counts, q=quantiles)
@settings(max_examples=200, deadline=None)
def test_merged_shards_match_pooled_percentiles(samples, shards, q):
    sharded = [LogHistogram() for _ in range(shards)]
    for i, value in enumerate(samples):
        sharded[i % shards].observe(value)

    merged = LogHistogram()
    for shard in sharded:  # some shards may be empty: len < shards
        merged.merge(shard)

    assert merged.count == len(samples)
    truth = true_nearest_rank(samples, q)
    estimate = merged.percentile(q)
    # bounded relative error, with a whisker of float slack for values
    # sitting exactly on a bucket boundary
    assert abs(estimate - truth) <= merged.relative_error * truth + 1e-9


@given(samples=values, shards=shard_counts)
@settings(max_examples=100, deadline=None)
def test_merge_equals_single_sketch_bucket_for_bucket(samples, shards):
    # Stronger than the error bound: merging is *lossless* sketching —
    # the merged state is identical to one sketch fed every sample.
    pooled = LogHistogram()
    sharded = [LogHistogram() for _ in range(shards)]
    for i, value in enumerate(samples):
        pooled.observe(value)
        sharded[i % shards].observe(value)
    merged = LogHistogram()
    for shard in sharded:
        merged.merge(shard.to_dict())  # over the portable dump, as the
        # process pool does
    merged_state, pooled_state = merged.to_dict(), pooled.to_dict()
    # float sums depend on addition order across shards; everything
    # else — bucket counts included — must be identical
    assert merged_state.pop("total") == pytest.approx(
        pooled_state.pop("total"))
    assert merged_state == pooled_state


@given(value=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_single_sample_is_exact(value):
    sketch = LogHistogram()
    sketch.observe(value)
    for q in (1.0, 50.0, 100.0):
        # min == max clamping makes a one-sample sketch exact
        assert sketch.percentile(q) == value


def test_merging_only_empty_shards_stays_empty():
    merged = LogHistogram()
    for _ in range(5):
        merged.merge(LogHistogram())
    assert merged.count == 0
    assert merged.percentile(50) == 0.0
