"""Property-based tests for the X-Etag-Config codec."""

import string

from hypothesis import given, strategies as st

from repro.core.etag_config import EtagConfig
from repro.http.etag import ETag

url_chars = string.ascii_letters + string.digits + "/._-~%"
urls = st.text(alphabet=url_chars, min_size=1, max_size=40) \
    .map(lambda s: "/" + s)
opaques = st.text(alphabet=string.ascii_letters + string.digits,
                  min_size=1, max_size=20)
entry_dicts = st.dictionaries(urls, opaques, max_size=30)


def config_from(entries: dict[str, str]) -> EtagConfig:
    return EtagConfig(entries={url: ETag(opaque=tag)
                               for url, tag in entries.items()})


@given(entry_dicts)
def test_header_roundtrip(entries):
    config = config_from(entries)
    parsed = EtagConfig.from_header_value(config.to_header_value())
    assert {u: e.opaque for u, e in parsed.entries.items()} == entries


@given(entry_dicts)
def test_header_size_matches_actual(entries):
    config = config_from(entries)
    if entries:
        expected = len("X-Etag-Config") + 2 \
            + len(config.to_header_value().encode()) + 2
        assert config.header_size() == expected
    else:
        assert config.header_size() == 0


@given(entry_dicts, entry_dicts)
def test_merge_prefers_right_operand(a, b):
    merged = config_from(a).merged_with(config_from(b))
    for url, opaque in b.items():
        assert merged.etag_for(url).opaque == opaque
    for url, opaque in a.items():
        if url not in b:
            assert merged.etag_for(url).opaque == opaque


@given(entry_dicts, st.integers(min_value=1, max_value=10))
def test_cap_is_a_prefix(entries, cap):
    pairs = list(entries.items())
    config = EtagConfig.from_pairs(
        [(u, ETag(opaque=t)) for u, t in pairs], max_entries=cap)
    assert len(config) == min(cap, len(pairs))
    for url, tag in pairs[:len(config)]:
        assert config.etag_for(url).opaque == tag
