"""Property-based tests for workload generation invariants."""

from hypothesis import given, settings, strategies as st

from repro.html import extract_resources, parse_html
from repro.html.parser import ResourceKind
from repro.workload.churn import ResourceChurn
from repro.workload.sitegen import (freeze_site, generate_site, render_html)

seeds = st.integers(min_value=0, max_value=100_000)
medians = st.sampled_from([12, 30, 70])


@settings(max_examples=20, deadline=None)
@given(seeds, medians)
def test_site_structure_invariants(seed, median):
    site = generate_site(f"https://p{seed}.example", seed=seed,
                         median_resources=median)
    page = site.index
    # every HTML ref resolves; every child resolves; URLs unique
    for url in page.html_refs:
        assert url in page.resources
    for spec in page.iter_resources():
        assert spec.size_bytes > 0
        assert spec.change_period_s > 0
        for child in spec.children:
            assert child in page.resources
        if spec.dynamic:
            assert spec.policy.mode == "no-store"


@settings(max_examples=15, deadline=None)
@given(seeds, medians, st.integers(min_value=0, max_value=5))
def test_render_extract_round_trip(seed, median, version):
    site = generate_site(f"https://p{seed}.example", seed=seed,
                         median_resources=median)
    markup = render_html(site.index, version=version)
    extracted = {r.url for r in extract_resources(parse_html(markup))}
    assert extracted == set(site.index.html_refs)


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_generation_is_pure(seed):
    a = generate_site(f"https://p{seed}.example", seed=seed)
    b = generate_site(f"https://p{seed}.example", seed=seed)
    assert a.index.resources == b.index.resources
    assert a.index.html_refs == b.index.html_refs


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_freezing_preserves_structure(seed):
    site = generate_site(f"https://p{seed}.example", seed=seed,
                         median_resources=20)
    frozen = freeze_site(site)
    assert set(frozen.index.resources) == set(site.index.resources)
    assert frozen.index.html_refs == site.index.html_refs
    for url, spec in frozen.index.resources.items():
        original = site.index.resources[url]
        assert spec.policy == original.policy
        assert spec.size_bytes == original.size_bytes


churn_seeds = st.integers(min_value=0, max_value=10_000)
periods = st.floats(min_value=60.0, max_value=1e8, allow_nan=False)
times = st.lists(st.floats(min_value=0.0, max_value=1e7,
                           allow_nan=False), min_size=2, max_size=10)


@given(churn_seeds, periods, times)
def test_churn_version_monotone_any_order(seed, period, query_times):
    churn = ResourceChurn(period_s=period, seed=seed)
    results = [(t, churn.version_at(t)) for t in query_times]
    for t_a, v_a in results:
        for t_b, v_b in results:
            if t_a <= t_b:
                assert v_a <= v_b


@given(churn_seeds, periods, times)
def test_churn_pure_across_instances(seed, period, query_times):
    a = ResourceChurn(period_s=period, seed=seed)
    b = ResourceChurn(period_s=period, seed=seed)
    for t in query_times:
        assert a.version_at(t) == b.version_at(t)
