"""Property-based tests for Cache-Control parsing."""

import string

from hypothesis import given, strategies as st

from repro.http.cache_control import parse_cache_control

directive_name = st.sampled_from([
    "no-store", "no-cache", "must-revalidate", "private", "public",
    "immutable"])
delta = st.integers(min_value=0, max_value=10 ** 9)


@st.composite
def directive_strings(draw):
    parts = []
    for _ in range(draw(st.integers(0, 6))):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            parts.append(draw(directive_name))
        elif choice == 1:
            parts.append(f"max-age={draw(delta)}")
        elif choice == 2:
            parts.append(f"s-maxage={draw(delta)}")
        else:
            name = draw(st.text(alphabet=string.ascii_lowercase + "-",
                                min_size=1, max_size=12))
            parts.append(name)
    return ", ".join(parts)


@given(directive_strings())
def test_never_raises(value):
    parse_cache_control(value)


@given(directive_strings())
def test_serialization_fixpoint(value):
    once = parse_cache_control(value)
    twice = parse_cache_control(str(once))
    assert once == twice


@given(st.text(max_size=100))
def test_arbitrary_garbage_never_raises(value):
    parse_cache_control(value)


@given(delta)
def test_max_age_parsed_exactly(seconds):
    capped = min(seconds, 2 ** 31)
    assert parse_cache_control(f"max-age={seconds}").max_age == capped


@given(directive_strings())
def test_no_store_dominates_cacheability(value):
    cc = parse_cache_control(value)
    assert cc.is_cacheable == (not cc.no_store)
