"""Property-based tests for the header multimap."""

import string

from hypothesis import given, strategies as st

from repro.http.headers import Headers

token_chars = string.ascii_letters + string.digits + "-_"
names = st.text(alphabet=token_chars, min_size=1, max_size=20)
values = st.text(alphabet=string.ascii_letters + string.digits + " .,;=\"'",
                 min_size=0, max_size=60).map(str.strip)
pairs = st.lists(st.tuples(names, values), max_size=20)


@given(pairs)
def test_roundtrip_through_items(items):
    headers = Headers(items)
    rebuilt = Headers(list(headers.items()))
    assert rebuilt == headers


@given(pairs, names)
def test_get_all_matches_manual_filter(items, probe):
    headers = Headers(items)
    expected = [value.strip() for name, value in items
                if name.lower() == probe.lower()]
    assert headers.get_all(probe) == expected


@given(pairs, names, values)
def test_set_then_get(items, name, value):
    headers = Headers(items)
    headers.set(name, value)
    assert headers.get(name) == value
    assert headers.get_all(name) == [value]


@given(pairs, names)
def test_remove_removes_everything(items, name):
    headers = Headers(items)
    headers.remove(name)
    assert name not in headers
    assert headers.get_all(name) == []


@given(pairs)
def test_wire_size_matches_serialized_length(items):
    headers = Headers(items)
    serialized = "".join(f"{n}: {v}\r\n" for n, v in headers.items())
    assert headers.wire_size() == len(serialized.encode("utf-8"))


@given(pairs)
def test_copy_equal_but_independent(items):
    headers = Headers(items)
    clone = headers.copy()
    assert clone == headers
    clone.add("X-Extra", "1")
    assert ("X-Extra" in clone) and ("X-Extra" not in headers)


@given(pairs)
def test_len_counts_occurrences(items):
    assert len(Headers(items)) == len(items)
