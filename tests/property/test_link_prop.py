"""Property-based tests for the processor-sharing bandwidth pipe.

Work conservation is what makes the PLT numbers trustworthy: whatever
the arrival pattern, the pipe must deliver every byte, never finish a
transfer faster than the line rate allows, and never be lazier than a
work-conserving scheduler.
"""

from hypothesis import given, settings, strategies as st

from repro.netsim.link import ProcessorSharingPipe
from repro.netsim.sim import Simulator

sizes = st.lists(st.integers(min_value=1, max_value=2_000_000),
                 min_size=1, max_size=15)
offsets = st.lists(st.floats(min_value=0.0, max_value=2.0,
                             allow_nan=False), min_size=1, max_size=15)
rates = st.sampled_from([1e6, 8e6, 60e6])


def run_transfers(rate, transfer_sizes, start_offsets):
    sim = Simulator()
    pipe = ProcessorSharingPipe(sim, capacity_bps=rate)
    completions: dict[int, float] = {}
    starts: dict[int, float] = {}

    def launch(index, offset, nbytes):
        yield sim.timeout(offset)
        starts[index] = sim.now
        yield pipe.transfer(nbytes)
        completions[index] = sim.now

    for index, nbytes in enumerate(transfer_sizes):
        offset = start_offsets[index % len(start_offsets)]
        sim.process(launch(index, offset, nbytes))
    sim.run()
    return sim, pipe, starts, completions


@settings(max_examples=40, deadline=None)
@given(rates, sizes, offsets)
def test_every_transfer_completes(rate, transfer_sizes, start_offsets):
    _, pipe, _, completions = run_transfers(rate, transfer_sizes,
                                            start_offsets)
    assert len(completions) == len(transfer_sizes)
    assert pipe.active_count == 0


@settings(max_examples=40, deadline=None)
@given(rates, sizes, offsets)
def test_no_transfer_beats_line_rate(rate, transfer_sizes, start_offsets):
    _, _, starts, completions = run_transfers(rate, transfer_sizes,
                                              start_offsets)
    for index, done in completions.items():
        solo_time = transfer_sizes[index] * 8.0 / rate
        elapsed = done - starts[index]
        assert elapsed >= solo_time - 1e-6


@settings(max_examples=40, deadline=None)
@given(rates, sizes, offsets)
def test_work_conserving_makespan(rate, transfer_sizes, start_offsets):
    """The pipe finishes no later than (last arrival + total work)."""
    _, _, starts, completions = run_transfers(rate, transfer_sizes,
                                              start_offsets)
    total_work = sum(transfer_sizes) * 8.0 / rate
    last_arrival = max(starts.values())
    assert max(completions.values()) <= last_arrival + total_work + 1e-6


@settings(max_examples=40, deadline=None)
@given(rates, sizes)
def test_simultaneous_equal_transfers_tie(rate, transfer_sizes):
    """Equal transfers arriving together finish together."""
    nbytes = transfer_sizes[0]
    sim = Simulator()
    pipe = ProcessorSharingPipe(sim, capacity_bps=rate)
    ends = []
    for _ in range(min(len(transfer_sizes), 5)):
        pipe.transfer(nbytes).add_callback(lambda _e: ends.append(sim.now))
    sim.run()
    assert max(ends) - min(ends) <= 1e-9


@settings(max_examples=30, deadline=None)
@given(rates, sizes, offsets)
def test_total_bits_accounting(rate, transfer_sizes, start_offsets):
    _, pipe, _, _ = run_transfers(rate, transfer_sizes, start_offsets)
    assert pipe.total_bits == sum(transfer_sizes) * 8.0
