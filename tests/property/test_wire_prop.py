"""Property-based tests for the HTTP/1.1 wire codec."""

import asyncio
import string

from hypothesis import given, settings, strategies as st

from repro.http.errors import (ConnectionClosed, HttpError, MessageTooLarge,
                               ProtocolError)
from repro.http.headers import Headers
from repro.http.messages import Request, Response
from repro.http.wire import (read_request, read_response, serialize_request,
                             serialize_response)

# Framing is the codec's job: the serializer adds Content-Length itself
# and the parser is (correctly) strict about conflicting or malformed
# framing headers, so the round-trip generator must not inject them.
_FRAMING = {"content-length", "transfer-encoding"}
token = st.text(alphabet=string.ascii_letters + string.digits + "-_",
                min_size=1, max_size=16) \
    .filter(lambda name: name.lower() not in _FRAMING)
header_value = st.text(
    alphabet=string.ascii_letters + string.digits + " ;,=.\"'/",
    max_size=40).map(str.strip)
header_lists = st.lists(st.tuples(token, header_value), max_size=10)
paths = st.text(alphabet=string.ascii_letters + string.digits + "/._-",
                min_size=1, max_size=40).map(lambda s: "/" + s)
bodies = st.binary(max_size=500)
statuses = st.sampled_from([200, 201, 204, 301, 304, 400, 404, 500])


def parse(parse_fn, data: bytes, **kwargs):
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await parse_fn(reader, **kwargs)
    return asyncio.run(inner())


@given(paths, header_lists, bodies)
@settings(max_examples=60)
def test_request_round_trip(path, headers, body):
    method = "POST" if body else "GET"
    original = Request(method=method, url=path, headers=Headers(headers),
                       body=body)
    parsed = parse(read_request, serialize_request(original))
    assert parsed.method == method
    assert parsed.url == path
    assert parsed.body == body
    for name, value in headers:
        assert value in parsed.headers.get_all(name)


@given(statuses, header_lists, bodies)
@settings(max_examples=60)
def test_response_round_trip(status, headers, body):
    original = Response(status=status, headers=Headers(headers), body=body)
    parsed = parse(read_response, serialize_response(original))
    assert parsed.status == status
    if status in (204, 304):
        assert parsed.body == b""
    else:
        assert parsed.body == body


@given(st.binary(max_size=300))
@settings(max_examples=100)
def test_arbitrary_bytes_never_hang_or_crash(data):
    """Garbage input must raise a protocol-family error or parse —
    never raise something else and never loop forever."""
    try:
        parse(read_request, data)
    except (ProtocolError, ConnectionClosed, MessageTooLarge, HttpError):
        pass
    try:
        parse(read_response, data)
    except (ProtocolError, ConnectionClosed, MessageTooLarge, HttpError):
        pass


@given(paths, header_lists, bodies, paths, bodies)
@settings(max_examples=30)
def test_pipelined_requests_parse_in_order(path_a, headers, body_a,
                                           path_b, body_b):
    first = Request(method="POST", url=path_a, headers=Headers(headers),
                    body=body_a)
    second = Request(method="POST", url=path_b, body=body_b)
    stream = serialize_request(first) + serialize_request(second)

    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(stream)
        reader.feed_eof()
        one = await read_request(reader)
        two = await read_request(reader)
        return one, two
    one, two = asyncio.run(inner())
    assert one.url == path_a and one.body == body_a
    assert two.url == path_b and two.body == body_b
