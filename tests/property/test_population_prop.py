"""Property tests for the population-scale workload engine.

The fleet experiment's credibility rests on three statistical claims
about :mod:`repro.workload.population` — Zipf popularity really follows
the analytic pmf, Poisson arrivals really hit their mean, and the
schedule is byte-identical however it is sharded — plus the exactness
of the delay-mixture quantization.  Each claim gets a direct check at
population scale (10⁵ visits where the claim is about frequencies).
"""

import math
import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.link import NetworkConditions
from repro.workload.population import (CohortSpec, PopulationSpec,
                                       delay_mixture, iter_visits,
                                       sample_visits, user_stream,
                                       user_visits, zipf_weights)
from repro.workload.revisits import DEFAULT_REVISIT_MODEL

pytestmark = pytest.mark.fleet

CONDITIONS = NetworkConditions.of(60, 40, label="60Mbps/40ms")


def make_spec(users=400, sites=50, measured=80_000, warmup=20_000,
              alpha=0.8, seed=2024, cohorts=None):
    if cohorts is None:
        cohorts = (CohortSpec("a", 0.6, CONDITIONS),
                   CohortSpec("b", 0.4, CONDITIONS))
    return PopulationSpec(n_users=users, n_sites=sites, cohorts=cohorts,
                          n_warmup=warmup, n_measured=measured,
                          alpha=alpha, seed=seed)


# -- Zipf popularity --------------------------------------------------------
def test_zipf_rank_frequency_matches_pmf_at_1e5():
    """Empirical site frequencies over ~10⁵ draws track the Zipf pmf."""
    spec = make_spec()
    weights = zipf_weights(spec.n_sites, spec.alpha)
    counts = [0] * spec.n_sites
    total = 0
    for visit in iter_visits(spec):
        counts[visit.site] += 1
        total += 1
    assert total > 90_000          # Poisson totals hover around 10⁵
    l1 = sum(abs(counts[i] / total - weights[i])
             for i in range(spec.n_sites))
    assert l1 < 0.05, f"L1(empirical, pmf) = {l1:.4f}"
    # the head of the ranking must come out in pmf order
    head = sorted(range(5), key=lambda i: -counts[i])
    assert head == [0, 1, 2, 3, 4]


@given(st.integers(min_value=1, max_value=200),
       st.sampled_from([0.0, 0.4, 0.8, 1.2]))
def test_zipf_weights_are_a_distribution(n_sites, alpha):
    weights = zipf_weights(n_sites, alpha)
    assert len(weights) == n_sites
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(w > 0 for w in weights)
    # non-increasing in rank; uniform exactly when alpha == 0
    assert all(a >= b - 1e-15 for a, b in zip(weights, weights[1:]))
    if alpha == 0.0:
        assert max(weights) - min(weights) < 1e-12


# -- Poisson arrivals -------------------------------------------------------
def test_arrival_count_matches_poisson_mean():
    """Total visits over the population sit within 5σ of n_visits."""
    spec = make_spec()
    total = sum(len(user_visits(spec, u)) for u in range(spec.n_users))
    mean = spec.n_visits
    assert abs(total - mean) < 5 * math.sqrt(mean), (total, mean)


def test_arrival_times_sorted_and_in_horizon():
    spec = make_spec(users=50, measured=8_000, warmup=2_000)
    for user in range(spec.n_users):
        visits = user_visits(spec, user)
        times = [v.at_s for v in visits]
        assert times == sorted(times)
        assert all(0.0 <= t <= spec.horizon_s for t in times)
        for v in visits:
            assert v.measured == (v.at_s >= spec.warmup_s)


# -- schedule determinism ---------------------------------------------------
def test_schedule_byte_identical_across_runs():
    spec = make_spec(users=80, measured=8_000, warmup=2_000)
    a = pickle.dumps(list(iter_visits(spec)))
    b = pickle.dumps(list(iter_visits(make_spec(users=80, measured=8_000,
                                                warmup=2_000))))
    assert a == b


def test_schedule_independent_of_shard_order():
    """Reassembling per-user shards in any order gives the same bytes —
    the property that makes parallel DES runs reproducible."""
    spec = make_spec(users=60, measured=6_000, warmup=1_500)
    canonical = list(iter_visits(spec))
    order = list(range(spec.n_users))
    random.Random(7).shuffle(order)
    shards = {u: user_visits(spec, u) for u in order}
    reassembled = [v for u in range(spec.n_users) for v in shards[u]]
    assert pickle.dumps(reassembled) == pickle.dumps(canonical)


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_user_stream_is_pure(user_id):
    spec = make_spec(users=501, measured=10_000, warmup=0)
    a = user_stream(spec, user_id)
    b = user_stream(spec, user_id)
    assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]


def test_sample_visits_deterministic_and_cohort_covering():
    spec = make_spec()
    a = sample_visits(spec, 24, per_cohort=True)
    b = sample_visits(spec, 24, per_cohort=True)
    assert pickle.dumps(a) == pickle.dumps(b)
    cohorts_hit = {v.cohort for v in a}
    assert cohorts_hit == set(range(len(spec.cohorts)))
    assert all(v.measured for v in a)


# -- delay-mixture quantization --------------------------------------------
@given(st.integers(min_value=2, max_value=64))
@settings(max_examples=20, deadline=None)
def test_delay_mixture_is_a_distribution(bins):
    mixture = delay_mixture(DEFAULT_REVISIT_MODEL, bins)
    assert len(mixture.delays_s) == len(mixture.weights)
    assert abs(sum(mixture.weights) - 1.0) < 1e-9
    assert all(w >= 0 for w in mixture.weights)
    assert list(mixture.delays_s) == sorted(mixture.delays_s)
    assert mixture.delays_s[0] >= DEFAULT_REVISIT_MODEL.min_delay_s
    assert mixture.delays_s[-1] <= DEFAULT_REVISIT_MODEL.max_delay_s


def test_revisit_cdf_matches_empirical_draws():
    """The closed-form CDF (which prices every analytic delay bin) agrees
    with 20k actual sampler draws at every probe point."""
    model = DEFAULT_REVISIT_MODEL
    rng = random.Random(11)
    draws = sorted(model.draw(rng) for _ in range(20_000))
    probes = [60.0, 600.0, 3600.0, 6 * 3600.0, 86400.0, 7 * 86400.0]
    for x in probes:
        import bisect
        empirical = bisect.bisect_right(draws, x) / len(draws)
        assert abs(empirical - model.cdf(x)) < 0.02, (x, empirical,
                                                      model.cdf(x))
