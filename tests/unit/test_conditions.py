"""Unit tests for named network profiles and the Figure 3 grid axes."""

import pytest

from repro.netsim.conditions import (FIGURE3_LATENCIES_MS,
                                     FIGURE3_THROUGHPUTS_MBPS, PROFILES,
                                     figure3_grid, profile)


class TestProfiles:
    def test_5g_median_matches_paper_anchor(self):
        anchor = profile("5g-median")
        assert anchor.downlink_mbps == 60.0
        assert anchor.rtt_ms == 40.0

    def test_all_profiles_valid(self):
        for name, conditions in PROFILES.items():
            assert conditions.rtt_s >= 0
            assert conditions.downlink_bps > 0
            assert conditions.describe() == name

    def test_unknown_profile_helpful_error(self):
        with pytest.raises(KeyError, match="known:"):
            profile("6g-hype")

    def test_satellite_has_the_worst_latency(self):
        rtts = {name: cond.rtt_ms for name, cond in PROFILES.items()}
        assert max(rtts, key=rtts.get) == "satellite"


class TestGrid:
    def test_default_grid_covers_paper_axes(self):
        cells = list(figure3_grid())
        assert len(cells) == len(FIGURE3_THROUGHPUTS_MBPS) \
            * len(FIGURE3_LATENCIES_MS)
        assert 8.0 in FIGURE3_THROUGHPUTS_MBPS
        assert 60.0 in FIGURE3_THROUGHPUTS_MBPS
        assert 40.0 in FIGURE3_LATENCIES_MS

    def test_grid_row_major(self):
        cells = list(figure3_grid(throughputs_mbps=(1, 2),
                                  latencies_ms=(10, 20)))
        labels = [cell.describe() for cell in cells]
        assert labels == ["1Mbps/10ms", "1Mbps/20ms",
                          "2Mbps/10ms", "2Mbps/20ms"]

    def test_custom_axes(self):
        cells = list(figure3_grid(throughputs_mbps=(5,),
                                  latencies_ms=(30,)))
        assert len(cells) == 1
        assert cells[0].downlink_mbps == 5.0
