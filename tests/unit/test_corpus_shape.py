"""Unit tests for corpus composition validation."""

import pytest

from repro.workload.corpus import make_corpus
from repro.workload.validation import measure_corpus_shape


@pytest.fixture(scope="module")
def shape():
    return measure_corpus_shape(make_corpus(size=60, seed=2024))


class TestCorpusShape:
    def test_page_weight_in_httparchive_band(self, shape):
        assert 1.2e6 < shape.median_page_bytes < 6e6

    def test_request_count_in_topsite_band(self, shape):
        assert 50 < shape.median_resource_count < 200

    def test_request_shares_sum_to_one(self, shape):
        assert sum(shape.request_share.values()) == pytest.approx(1.0)
        assert sum(shape.byte_share.values()) == pytest.approx(1.0)

    def test_images_lead_requests(self, shape):
        """httparchive: images are the most numerous resource type."""
        top = max(shape.request_share, key=shape.request_share.get)
        assert top == "image"

    def test_scripts_substantial(self, shape):
        assert shape.request_share.get("script", 0) > 0.15

    def test_images_dominate_bytes(self, shape):
        """Images + media carry the byte majority on real pages."""
        heavy = shape.byte_share.get("image", 0) \
            + shape.byte_share.get("media", 0)
        assert heavy > 0.35

    def test_format_readable(self, shape):
        text = shape.format()
        assert "median page weight" in text
        assert "httparchive" in text
