"""Unit tests for the multiprocess sweep (must equal the sequential one)."""

import pytest

from repro.core.modes import CachingMode
from repro.experiments.harness import run_grid
from repro.experiments.parallel import run_grid_parallel
from repro.netsim.clock import HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.corpus import make_corpus

COND = NetworkConditions.of(60, 40, label="60Mbps/40ms")


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(size=3, seed=77)


class TestParallelEqualsSequential:
    def test_identical_measurements(self, corpus):
        kwargs = dict(sites=corpus,
                      modes=(CachingMode.STANDARD, CachingMode.CATALYST),
                      conditions_list=[COND], delays_s=[HOUR])
        sequential = run_grid(**kwargs)
        parallel = run_grid_parallel(**kwargs, max_workers=2)
        assert parallel.measurements == sequential.measurements

    def test_single_task_runs_inline(self, corpus):
        result = run_grid_parallel(
            sites=corpus.sites[:1], modes=(CachingMode.STANDARD,),
            conditions_list=[COND], delays_s=[HOUR])
        assert len(result.measurements) == 1

    def test_full_grid_canonical_equivalence(self, corpus):
        """Satellite (PR 3): multi-condition, multi-delay grid — the
        parallel runner must reproduce the sequential GridResult
        measurement-for-measurement in canonical order."""
        kwargs = dict(
            sites=corpus.sites[:2],
            modes=(CachingMode.STANDARD, CachingMode.CATALYST),
            conditions_list=[COND,
                             NetworkConditions.of(8, 100,
                                                  label="8Mbps/100ms")],
            delays_s=[HOUR, 24 * HOUR],
            audit_staleness=True)
        sequential = run_grid(**kwargs)
        parallel = run_grid_parallel(**kwargs, max_workers=2)
        assert len(parallel.measurements) == 16
        assert parallel.measurements == sequential.measurements
        assert parallel.mean_reduction_vs("standard", "catalyst") == \
            sequential.mean_reduction_vs("standard", "catalyst")

    def test_aggregations_work(self, corpus):
        result = run_grid_parallel(
            sites=corpus, modes=(CachingMode.STANDARD,
                                 CachingMode.CATALYST),
            conditions_list=[COND], delays_s=[HOUR], max_workers=2)
        reduction = result.mean_reduction_vs("standard", "catalyst")
        assert -0.5 < reduction < 1.0
