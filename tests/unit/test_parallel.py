"""Unit tests for the multiprocess sweep (must equal the sequential one)."""

import pytest

from repro.core.modes import CachingMode
from repro.experiments.harness import fleet_summary, run_grid
from repro.experiments.parallel import run_grid_parallel
from repro.netsim.clock import HOUR
from repro.netsim.link import NetworkConditions
from repro.obs import MetricsRegistry
from repro.workload.corpus import make_corpus

COND = NetworkConditions.of(60, 40, label="60Mbps/40ms")


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(size=3, seed=77)


class TestParallelEqualsSequential:
    def test_identical_measurements(self, corpus):
        kwargs = dict(sites=corpus,
                      modes=(CachingMode.STANDARD, CachingMode.CATALYST),
                      conditions_list=[COND], delays_s=[HOUR])
        sequential = run_grid(**kwargs)
        parallel = run_grid_parallel(**kwargs, max_workers=2)
        assert parallel.measurements == sequential.measurements

    def test_single_task_runs_inline(self, corpus):
        result = run_grid_parallel(
            sites=corpus.sites[:1], modes=(CachingMode.STANDARD,),
            conditions_list=[COND], delays_s=[HOUR])
        assert len(result.measurements) == 1

    def test_full_grid_canonical_equivalence(self, corpus):
        """Satellite (PR 3): multi-condition, multi-delay grid — the
        parallel runner must reproduce the sequential GridResult
        measurement-for-measurement in canonical order."""
        kwargs = dict(
            sites=corpus.sites[:2],
            modes=(CachingMode.STANDARD, CachingMode.CATALYST),
            conditions_list=[COND,
                             NetworkConditions.of(8, 100,
                                                  label="8Mbps/100ms")],
            delays_s=[HOUR, 24 * HOUR],
            audit_staleness=True)
        sequential = run_grid(**kwargs)
        parallel = run_grid_parallel(**kwargs, max_workers=2)
        assert len(parallel.measurements) == 16
        assert parallel.measurements == sequential.measurements
        assert parallel.mean_reduction_vs("standard", "catalyst") == \
            sequential.mean_reduction_vs("standard", "catalyst")

    def test_aggregations_work(self, corpus):
        result = run_grid_parallel(
            sites=corpus, modes=(CachingMode.STANDARD,
                                 CachingMode.CATALYST),
            conditions_list=[COND], delays_s=[HOUR], max_workers=2)
        reduction = result.mean_reduction_vs("standard", "catalyst")
        assert -0.5 < reduction < 1.0


class TestFleetMetrics:
    """The PR's acceptance criterion: merged worker registries report
    the same fleet aggregates a serial run pools from raw samples."""

    GRID = dict(modes=(CachingMode.STANDARD, CachingMode.CATALYST),
                conditions_list=[COND,
                                 NetworkConditions.of(8, 100,
                                                      label="8Mbps/100ms")],
                delays_s=[HOUR, 24 * HOUR])

    def test_parallel_fleet_matches_serial(self, corpus):
        serial_metrics = MetricsRegistry()
        fleet_metrics = MetricsRegistry()
        serial = run_grid(sites=corpus, metrics=serial_metrics,
                          **self.GRID)
        parallel = run_grid_parallel(sites=corpus, metrics=fleet_metrics,
                                     max_workers=3, **self.GRID)
        assert parallel.measurements == serial.measurements

        serial_fleet = fleet_summary(serial_metrics)
        merged_fleet = fleet_summary(fleet_metrics)
        assert merged_fleet["pairs"] == serial_fleet["pairs"] == \
            len(serial.measurements)
        # Exact counter equality (retries, stale hits, hit ratio) —
        # counts merge losslessly.
        assert merged_fleet["warm_retries"] == serial_fleet["warm_retries"]
        assert merged_fleet["warm_stale_hits"] == \
            serial_fleet["warm_stale_hits"]
        assert merged_fleet["cache_hit_ratio"] == pytest.approx(
            serial_fleet["cache_hit_ratio"])
        assert merged_fleet["cache_hit_ratio"] > 0.0
        # PLT percentiles: both sides are below the raw-sample cap here,
        # so pooled-vs-merged percentiles must agree *exactly*; the
        # sketch's documented relative error is the bound that would
        # apply beyond the cap.
        assert set(merged_fleet["plt_ms"]) == set(serial_fleet["plt_ms"])
        for series, stats in serial_fleet["plt_ms"].items():
            merged_hist = fleet_metrics.get(f"fleet.plt_{series}")
            bound = merged_hist.sketch.relative_error \
                if not merged_hist.exact else 0.0
            for key, truth in stats.items():
                got = merged_fleet["plt_ms"][series][key]
                assert abs(got - truth) <= bound * truth, \
                    (series, key, got, truth)

    def test_measurements_identical_with_and_without_metrics(self, corpus):
        # Byte-identical simulated timestamps: metrics recording is
        # post-hoc and must never perturb the DES.
        bare = run_grid_parallel(sites=corpus, max_workers=2, **self.GRID)
        metered = run_grid_parallel(sites=corpus, max_workers=2,
                                    metrics=MetricsRegistry(), **self.GRID)
        assert bare.measurements == metered.measurements

    def test_worker_heartbeat_gauges_recorded(self, corpus):
        metrics = MetricsRegistry()
        run_grid_parallel(sites=corpus, metrics=metrics, max_workers=2,
                          **self.GRID)
        snap = metrics.snapshot()
        assert snap["fleet.workers"] >= 1
        per_worker = [value for name, value in snap.items()
                      if name.startswith("fleet.worker.")
                      and name.endswith(".pairs")]
        assert per_worker and sum(per_worker) == snap["fleet.pairs"]

    def test_serial_grid_records_fleet_metrics_too(self, corpus):
        metrics = MetricsRegistry()
        run_grid(sites=corpus.sites[:1], modes=(CachingMode.CATALYST,),
                 conditions_list=[COND], delays_s=[HOUR], metrics=metrics)
        fleet = fleet_summary(metrics)
        assert fleet["pairs"] == 1
        assert fleet["plt_ms"]["warm_ms"]["p50"] > 0.0
