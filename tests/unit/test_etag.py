"""Unit tests for entity tags and conditional evaluation."""

import pytest

from repro.http.etag import (ETag, etag_for_content, if_none_match_matches,
                             parse_etag, parse_etag_list)


class TestParseEtag:
    def test_strong(self):
        tag = parse_etag('"abc123"')
        assert tag == ETag(opaque="abc123", weak=False)
        assert str(tag) == '"abc123"'

    def test_weak(self):
        tag = parse_etag('W/"abc"')
        assert tag.weak
        assert str(tag) == 'W/"abc"'

    def test_lowercase_w_tolerated(self):
        assert parse_etag('w/"abc"').weak

    def test_empty_opaque_is_valid(self):
        assert parse_etag('""').opaque == ""

    @pytest.mark.parametrize("bad", ["abc", '"unterminated', 'W/abc',
                                     "", '"', "W/"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_etag(bad)

    def test_quote_inside_opaque_rejected(self):
        with pytest.raises(ValueError):
            ETag(opaque='has"quote')


class TestComparison:
    def test_strong_compare_requires_both_strong(self):
        strong = ETag("x")
        weak = ETag("x", weak=True)
        assert strong.strong_compare(ETag("x"))
        assert not strong.strong_compare(weak)
        assert not weak.strong_compare(weak)

    def test_weak_compare_ignores_weakness(self):
        assert ETag("x", weak=True).weak_compare(ETag("x"))
        assert not ETag("x").weak_compare(ETag("y"))


class TestParseList:
    def test_single(self):
        assert parse_etag_list('"a"') == [ETag("a")]

    def test_multiple_mixed(self):
        tags = parse_etag_list('"a", W/"b" , "c"')
        assert tags == [ETag("a"), ETag("b", weak=True), ETag("c")]

    def test_wildcard_returns_none(self):
        assert parse_etag_list("*") is None

    def test_comma_inside_quotes_not_split(self):
        # opaque tags cannot contain quotes, but commas are legal
        tags = parse_etag_list('"a,b", "c"')
        assert [t.opaque for t in tags] == ["a,b", "c"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_etag_list("")


class TestIfNoneMatch:
    def test_match_weak_comparison(self):
        assert if_none_match_matches('W/"x"', ETag("x"))
        assert if_none_match_matches('"x"', ETag("x", weak=True))

    def test_mismatch(self):
        assert not if_none_match_matches('"y"', ETag("x"))

    def test_wildcard_always_matches(self):
        assert if_none_match_matches("*", ETag("anything"))

    def test_any_of_list_matches(self):
        assert if_none_match_matches('"a", "b", "c"', ETag("b"))


class TestContentEtag:
    def test_deterministic(self):
        assert etag_for_content(b"hello") == etag_for_content(b"hello")

    def test_different_content_different_tag(self):
        assert etag_for_content(b"a") != etag_for_content(b"b")

    def test_weak_flag(self):
        assert etag_for_content(b"x", weak=True).weak

    def test_roundtrips_through_header(self):
        tag = etag_for_content(b"content")
        assert parse_etag(str(tag)) == tag
