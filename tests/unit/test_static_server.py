"""Unit tests for the conditional-request static server."""

import pytest

from repro.http.messages import Request
from repro.server.site import OriginSite
from repro.server.static import StaticServer
from repro.workload.sitegen import generate_site


@pytest.fixture
def server():
    return StaticServer(OriginSite(generate_site("https://s.example",
                                                 seed=31)))


class TestBasics:
    def test_get_200(self, server):
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert resp.status == 200
        assert server.full_response_count == 1

    def test_404(self, server):
        assert server.handle(Request(url="/missing"), at_time=0.0) \
            .status == 404

    def test_method_not_allowed(self, server):
        resp = server.handle(Request(method="POST", url="/index.html"),
                             at_time=0.0)
        assert resp.status == 405
        assert resp.headers["Allow"] == "GET, HEAD"

    def test_head_drops_body(self, server):
        resp = server.handle(Request(method="HEAD", url="/index.html"),
                             at_time=0.0)
        assert resp.status == 200
        assert resp.body == b""
        assert resp.transfer_size == 0


class TestConditionals:
    def test_if_none_match_hit_gives_304(self, server):
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        etag = first.headers["ETag"]
        second = server.handle(
            Request(url="/index.html",
                    headers={"If-None-Match": etag}), at_time=1.0)
        assert second.status == 304
        assert second.body == b""
        assert second.headers["ETag"] == etag
        assert server.not_modified_count == 1

    def test_304_repeats_validators(self, server):
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        second = server.handle(
            Request(url="/index.html",
                    headers={"If-None-Match": first.headers["ETag"]}),
            at_time=1.0)
        assert second.headers.get("Cache-Control") == \
            first.headers.get("Cache-Control")
        assert second.headers.get("Last-Modified") == \
            first.headers.get("Last-Modified")

    def test_if_none_match_miss_gives_full(self, server):
        resp = server.handle(
            Request(url="/index.html",
                    headers={"If-None-Match": '"stale-tag"'}), at_time=0.0)
        assert resp.status == 200
        assert resp.body

    def test_wildcard_matches(self, server):
        resp = server.handle(
            Request(url="/index.html", headers={"If-None-Match": "*"}),
            at_time=0.0)
        assert resp.status == 304

    def test_malformed_inm_serves_full(self, server):
        resp = server.handle(
            Request(url="/index.html",
                    headers={"If-None-Match": "not quoted"}), at_time=0.0)
        assert resp.status == 200

    def test_if_modified_since(self, server):
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        lm = first.headers["Last-Modified"]
        resp = server.handle(
            Request(url="/index.html",
                    headers={"If-Modified-Since": lm}), at_time=1.0)
        assert resp.status == 304

    def test_inm_takes_precedence_over_ims(self, server):
        """Mismatched INM must yield 200 even if IMS would say 304."""
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        resp = server.handle(
            Request(url="/index.html", headers={
                "If-None-Match": '"other"',
                "If-Modified-Since": first.headers["Last-Modified"]}),
            at_time=1.0)
        assert resp.status == 200


class TestHistory:
    def test_history_records_status(self, server):
        server.handle(Request(url="/index.html"), at_time=0.5)
        history = server.history
        assert history == [(0.5, "/index.html", 200)]

    def test_reset(self, server):
        server.handle(Request(url="/index.html"), at_time=0.0)
        server.reset_stats()
        assert server.history == []
        assert server.full_response_count == 0
