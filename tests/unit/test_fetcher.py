"""Unit tests for the browser network client."""

import pytest

from repro.browser.fetcher import NetworkClient
from repro.http.messages import Request, Response
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.netsim.tcp import ConnectionPolicy


def make_client(sim, handler, conditions=None, **kwargs):
    link = Link(sim, conditions or NetworkConditions.of(60, 40))
    return NetworkClient(sim=sim, link=link, handler=handler, **kwargs)


def simple_handler(request: Request, at_time: float) -> Response:
    return Response(body=b"k" * 1000)


class TestExchange:
    def test_returns_handler_response(self):
        sim = Simulator()
        client = make_client(sim, simple_handler)

        def proc():
            response = yield from client.exchange(Request(url="/a"))
            return response
        response = sim.run_process(proc())
        assert response.body == b"k" * 1000

    def test_timing_includes_setup_rtt_and_transfer(self):
        sim = Simulator()
        client = make_client(sim, simple_handler, server_think_s=0.0)

        def proc():
            yield from client.exchange(Request(url="/a"))
            return sim.now
        elapsed = sim.run_process(proc())
        # setup 2 RTT (80ms) + request RTT (40ms) + ~1.4 kB transfer
        assert elapsed > 0.120
        assert elapsed < 0.140

    def test_connection_reused_on_second_request(self):
        sim = Simulator()
        client = make_client(sim, simple_handler, server_think_s=0.0)

        def proc():
            yield from client.exchange(Request(url="/a"))
            first_done = sim.now
            yield from client.exchange(Request(url="/b"))
            return first_done, sim.now
        first, second = sim.run_process(proc())
        assert client.connections_opened == 1
        assert (second - first) < first  # no handshakes the second time

    def test_connection_cap_queues_excess(self):
        sim = Simulator()
        client = make_client(sim, simple_handler,
                             connections_per_origin=2)
        for i in range(6):
            sim.process(client.exchange(Request(url=f"/{i}")))
        sim.run()
        assert client.connections_opened <= 2
        assert len(client.exchanges) == 6
        assert any(record.queued_s > 0 for record in client.exchanges)

    def test_exchange_records_accounting(self):
        sim = Simulator()
        client = make_client(sim, simple_handler)
        sim.run_process(client.exchange(Request(url="/a")))
        (record,) = client.exchanges
        assert record.url == "/a"
        assert record.status == 200
        assert record.response_bytes > 1000
        assert record.new_connection
        assert client.bytes_downloaded == record.response_bytes
        assert client.request_count == 1

    def test_handler_sees_arrival_time(self):
        sim = Simulator()
        seen = []

        def handler(request, at_time):
            seen.append(at_time)
            return Response()
        client = make_client(sim, handler, server_think_s=0.010)
        sim.run_process(client.exchange(Request(url="/a")))
        # arrival: 2 RTT setup + one-way 20 ms + think 10 ms
        assert seen[0] == pytest.approx(0.080 + 0.020 + 0.010)

    def test_declared_size_drives_transfer_time(self):
        sim = Simulator()

        def big_handler(request, at_time):
            return Response(body=b"tiny", declared_size=6_000_000)
        client = make_client(sim, big_handler, server_think_s=0.0)

        def proc():
            yield from client.exchange(Request(url="/big"))
            return sim.now
        elapsed = sim.run_process(proc())
        assert elapsed > 0.8  # 6 MB over 60 Mbps = 0.8 s

    def test_warm_up_preestablishes_idle_connections(self):
        sim = Simulator()
        client = make_client(sim, simple_handler)
        sim.run_process(client.warm_up(3))
        assert client.connections_opened == 3
        # the next exchange reuses a warmed connection: no handshake RTTs
        sim_start = sim.now
        sim.run_process(client.exchange(Request(url="/a")))
        assert client.connections_opened == 3
        assert (sim.now - sim_start) < 0.080  # < the 2-RTT handshake

    def test_warm_up_noop_under_h2(self):
        sim = Simulator()
        client = make_client(sim, simple_handler, multiplexed=True)
        sim.run_process(client.warm_up(3))
        assert client.connections_opened == 0

    def test_preconnect_speeds_late_fetch_chains(self):
        """BrowserConfig.preconnect warms the pool during the HTML RTT."""
        from repro.browser.engine import BrowserConfig
        from repro.core.modes import CachingMode, build_mode
        from repro.core.catalyst import run_visit_sequence
        from repro.experiments.figure1 import build_figure1_site
        from repro.netsim.link import NetworkConditions
        site = build_figure1_site()
        conditions = NetworkConditions.of(60, 100)
        plts = {}
        for preconnect in (0, 3):
            setup = build_mode(CachingMode.STANDARD, site,
                               BrowserConfig(preconnect=preconnect))
            outcomes = run_visit_sequence(setup, conditions, [0.0])
            plts[preconnect] = outcomes[0].result.plt_s
        assert plts[3] <= plts[0]

    def test_slow_start_policy_applies(self):
        def run(slow_start):
            sim = Simulator()
            client = make_client(
                sim, simple_handler,
                policy=ConnectionPolicy(slow_start=slow_start))

            def big_handler(request, at_time):
                return Response(body=b"", declared_size=60 * 1460)
            client.handler = big_handler

            def proc():
                yield from client.exchange(Request(url="/big"))
                return sim.now
            return sim.run_process(proc())
        assert run(True) > run(False)
