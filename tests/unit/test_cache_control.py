"""Unit tests for Cache-Control parsing."""

import pytest

from repro.http.cache_control import CacheControl, parse_cache_control


class TestDirectives:
    def test_no_store(self):
        assert parse_cache_control("no-store").no_store

    def test_no_cache(self):
        assert parse_cache_control("no-cache").no_cache

    def test_max_age(self):
        assert parse_cache_control("max-age=3600").max_age == 3600

    def test_s_maxage(self):
        assert parse_cache_control("s-maxage=60").s_maxage == 60

    def test_combination(self):
        cc = parse_cache_control("public, max-age=300, must-revalidate")
        assert cc.public and cc.must_revalidate and cc.max_age == 300

    def test_immutable(self):
        assert parse_cache_control("max-age=31536000, immutable").immutable

    def test_stale_while_revalidate(self):
        cc = parse_cache_control("max-age=60, stale-while-revalidate=30")
        assert cc.stale_while_revalidate == 30

    def test_private(self):
        assert parse_cache_control("private").private


class TestRobustness:
    def test_case_insensitive_names(self):
        assert parse_cache_control("No-Store").no_store
        assert parse_cache_control("MAX-AGE=5").max_age == 5

    def test_unknown_directives_preserved(self):
        cc = parse_cache_control("max-age=1, x-custom=foo, bare-flag")
        assert ("x-custom", "foo") in cc.extensions
        assert ("bare-flag", None) in cc.extensions

    def test_quoted_argument(self):
        assert parse_cache_control('max-age="300"').max_age == 300

    def test_malformed_max_age_is_zero(self):
        assert parse_cache_control("max-age=banana").max_age == 0

    def test_negative_max_age_is_zero(self):
        assert parse_cache_control("max-age=-5").max_age == 0

    def test_huge_max_age_capped(self):
        assert parse_cache_control(
            "max-age=99999999999999").max_age == 2 ** 31

    def test_empty_value(self):
        cc = parse_cache_control("")
        assert cc == CacheControl()

    def test_stray_commas_and_spaces(self):
        cc = parse_cache_control(" , no-cache ,, max-age=1 , ")
        assert cc.no_cache and cc.max_age == 1


class TestSerialization:
    @pytest.mark.parametrize("value", [
        "no-store",
        "no-cache",
        "max-age=300",
        "no-cache, max-age=300",
        "max-age=60, must-revalidate",
        "private, s-maxage=10",
        "public, immutable, stale-while-revalidate=5",
    ])
    def test_round_trip(self, value):
        once = parse_cache_control(value)
        twice = parse_cache_control(str(once))
        assert once == twice

    def test_is_cacheable(self):
        assert not parse_cache_control("no-store").is_cacheable
        assert parse_cache_control("no-cache").is_cacheable
        assert parse_cache_control("max-age=0").is_cacheable
