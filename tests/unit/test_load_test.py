"""The sustained-load harness, in-process mode (no worker processes).

Fast, deterministic exercises of the chaos-harness plumbing: overload
accounting, fault presets, metrics emission, and the manifest-stamped
payloads.  The real multi-process runs live in the ``loadtest`` lane
(``benchmarks/test_bench_loadtest.py``).
"""

import pytest

from repro.experiments.load_test import (FAULT_PRESETS, format_load_test,
                                         load_test_payload, run_load_test,
                                         scaling_bench_payload)
from repro.obs.manifest import validate_manifest
from repro.obs.metrics import MetricsRegistry


def quick_run(**overrides):
    defaults = dict(inprocess=True, clients=8, duration_s=0.6,
                    warmup_s=0.15, latency_s=0.02, max_inflight=4,
                    seed=1, retry_after_s=0.5, drain_s=1.0)
    defaults.update(overrides)
    return run_load_test(**defaults)


class TestInprocessRun:
    def test_overload_accounting_is_exact(self):
        result = quick_run()
        assert result.ok > 0
        assert result.errors == 0
        # server-side: every offered request is exactly served or shed
        offered = (result.served_total + result.shed_503
                   + result.shed_connections)
        assert result.served_total > 0
        assert result.shed_503 > 0  # 8 clients vs 4 slots must shed
        assert offered == result.served_total + result.shed_503
        assert 0.0 < result.shed_rate < 1.0
        # the swarm stays under the admission ceiling (K / latency)
        ceiling = result.max_inflight / result.latency_s
        assert result.sustained_rps <= ceiling * 1.1
        assert result.drain_s >= 0.0
        assert result.hard_cancelled == 0

    def test_retry_after_hints_consumed(self):
        result = quick_run()
        assert result.retries_after_hint > 0  # shed clients slept hints

    def test_series_buckets_cover_the_window(self):
        result = quick_run(interval_s=0.2)
        assert result.series  # at least one bucket
        assert all(b["sent"] >= b["ok"] for b in result.series)
        assert sum(b["ok"] for b in result.series) == result.ok

    def test_metrics_emitted_into_registry(self):
        registry = MetricsRegistry()
        result = quick_run(metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot["load.ok"] == result.ok
        assert snapshot["load.sustained_rps"] == result.sustained_rps
        # fleet-side instruments merged in next to the load.* ones
        assert snapshot["http.shed_503"] == result.shed_503
        assert result.metrics_snapshot == snapshot

    def test_fault_preset_injects(self):
        result = quick_run(preset="lossy_wifi", clients=4)
        assert result.faults_injected > 0
        assert result.preset == "lossy_wifi"
        # per-attempt decisions replay exactly (the injected *count*
        # varies with wall-clock pacing, the decisions never do)
        plan_a = FAULT_PRESETS["lossy_wifi"](seed=1)
        plan_b = FAULT_PRESETS["lossy_wifi"](seed=1)
        decisions_a = [plan_a.decide(f"client0/u{i}", i)
                       for i in range(50)]
        decisions_b = [plan_b.decide(f"client0/u{i}", i)
                       for i in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            quick_run(preset="solar_flare")
        assert set(FAULT_PRESETS) == {"flaky_5g", "lossy_wifi",
                                      "captive_portal"}

    def test_inprocess_requires_single_shard(self):
        with pytest.raises(ValueError, match="one shard"):
            run_load_test(inprocess=True, shards=2)


class TestArtifacts:
    def test_payload_manifest_validates(self):
        result = quick_run()
        payload = load_test_payload(result)
        assert payload["bench"] == "load_test"
        assert validate_manifest(payload["manifest"]) == []
        assert payload["client"]["ok"] == result.ok
        assert payload["shed"]["shed_503"] == result.shed_503

    def test_scaling_payload_shape(self):
        # two cheap in-process "shard counts" fake the sweep shape; the
        # real 1-vs-4 run is the loadtest lane's job
        from repro.experiments.load_test import ScalingResult
        runs = {1: quick_run(), 4: quick_run(clients=16)}
        scaling = ScalingResult(runs=runs, seed=1, elapsed_s=1.0)
        payload = scaling_bench_payload(scaling)
        assert payload["bench"] == "serving_tier"
        assert set(payload["sustained_rps"]) == {"shards_1", "shards_4",
                                                 "scaling_x"}
        assert validate_manifest(payload["manifest"]) == []

    def test_format_is_human_readable(self):
        text = format_load_test(quick_run())
        assert "sustained 200 rps" in text
        assert "shed rate" in text


class TestSeriesZeroFill:
    """Regression: a stalled interval must be a row of zeros, not a
    hole — downstream rate math assumes a gapless grid."""

    def test_gap_bins_zero_filled(self):
        from repro.experiments.load_test import _Tallies
        tallies = _Tallies(interval_s=0.25)
        tallies.record(0.1, "ok")     # bucket 0
        tallies.record(0.9, "sent")   # bucket 3; 1 and 2 stay empty
        series = tallies.series()
        assert [row["t_s"] for row in series] == [0.0, 0.25, 0.5, 0.75]
        assert series[1] == {"t_s": 0.25, "sent": 0, "ok": 0, "shed": 0}
        assert series[2]["ok"] == 0
        assert series[3]["sent"] == 1

    def test_empty_tallies_yield_empty_series(self):
        from repro.experiments.load_test import _Tallies
        assert _Tallies(interval_s=0.25).series() == []

    def test_stalled_preset_run_has_gapless_series(self):
        from repro.netsim.faults import FaultPlan
        # every attempt stalls: completions bunch up late, early
        # intervals can be empty — they must still appear as rows
        plan = FaultPlan(stall_rate=1.0, stall_s=0.2, seed=3)
        result = quick_run(preset=plan, clients=4, duration_s=0.8,
                           interval_s=0.1)
        times = [row["t_s"] for row in result.series]
        expected = [round(i * 0.1, 3) for i in range(len(times))]
        assert times == expected  # consecutive grid, no holes


class TestObservabilityPlumbing:
    def test_untraced_run_collects_nothing(self):
        result = quick_run()
        assert result.spans == []
        assert result.timeseries == []
        assert result.slo_report is None

    def test_traced_inprocess_run_links_client_and_server_spans(self):
        result = quick_run(trace=True)
        client = [s for s in result.spans if s["name"] == "http.request"]
        server = [s for s in result.spans
                  if s["name"] == "server.request"]
        assert client and server
        client_ids = {(s["pid"], s["span_id"]) for s in client}
        linked = [s for s in server if s.get("remote_parent")]
        assert linked, "no server span carried a remote parent"
        for span in linked:
            assert tuple(span["remote_parent"]) in client_ids

    def test_retry_ordinal_reaches_server_span(self):
        # 8 clients vs 4 slots shed; honored Retry-After hints mean
        # some served requests are retries (attempt >= 1)
        result = quick_run(trace=True)
        attempts = [s["args"].get("client_attempt", 0)
                    for s in result.spans
                    if s["name"] == "server.request"]
        assert any(attempt >= 1 for attempt in attempts)

    def test_timeseries_reconciles_with_registry(self):
        registry = MetricsRegistry()
        result = quick_run(metrics=registry, telemetry_interval_s=0.2)
        assert result.timeseries
        total_requests = sum(
            row["metrics"].get("http.requests", 0)
            for row in result.timeseries)
        assert total_requests == registry.counter("http.requests").value

    def test_slo_clean_run_passes(self):
        from repro.obs.slo import default_loadtest_policy
        result = quick_run(slo=default_loadtest_policy())
        assert result.slo_report is not None
        assert result.slo_report.passed

    def test_slo_seeded_breach_fails(self):
        from repro.obs.slo import Objective
        impossible = Objective(name="latency-p99", kind="latency",
                               metric="http.request_ms",
                               threshold=1e-6, window_intervals=2)
        result = quick_run(slo=[impossible])
        assert result.slo_report is not None
        assert not result.slo_report.passed
        assert "BREACH" in result.slo_report.format()
        assert "BREACH" in format_load_test(result)

    def test_payload_carries_slo_and_timeseries(self, tmp_path):
        from repro.obs.slo import default_loadtest_policy
        path = str(tmp_path / "ts.jsonl")
        result = quick_run(slo=default_loadtest_policy(),
                           timeseries_path=path, trace=True)
        payload = load_test_payload(result)
        validate_manifest(payload["manifest"])
        assert payload["slo"]["passed"] is True
        assert payload["timeseries"]
        assert payload["trace"]["spans"] == len(result.spans)
        import json
        lines = [json.loads(line) for line in open(path)]
        assert lines and all("delta" in line for line in lines)
