"""Unit tests for HTML parsing and resource extraction."""

import pytest

from repro.html.parser import (ResourceKind, extract_resources,
                               is_same_origin, parse_html, resolve_url)


def refs_of(markup: str, base: str = ""):
    return extract_resources(parse_html(markup), base_url=base)


class TestParse:
    def test_basic_structure(self):
        doc = parse_html("<html><head></head><body><p>x</p></body></html>")
        assert doc.find("p").text_content() == "x"

    def test_unclosed_tags_tolerated(self):
        doc = parse_html("<html><body><p>a<p>b")
        assert len(list(doc.find_all("p"))) == 2

    def test_stray_end_tags_ignored(self):
        doc = parse_html("</div><p>x</p></span>")
        assert doc.find("p") is not None

    def test_self_closing(self):
        doc = parse_html('<img src="a.png"/>')
        assert doc.find("img").get("src") == "a.png"

    def test_attrs_lowercased(self):
        doc = parse_html('<IMG SRC="a.png">')
        assert doc.find("img").get("src") == "a.png"


class TestExtraction:
    def test_stylesheet_blocking(self):
        (ref,) = refs_of('<link rel="stylesheet" href="a.css">')
        assert ref.kind is ResourceKind.STYLESHEET
        assert ref.blocking

    def test_sync_script_blocking(self):
        (ref,) = refs_of('<script src="b.js"></script>')
        assert ref.kind is ResourceKind.SCRIPT
        assert ref.blocking and not ref.deferred

    @pytest.mark.parametrize("attr", ["async", "defer"])
    def test_async_defer_not_blocking(self, attr):
        (ref,) = refs_of(f'<script src="b.js" {attr}></script>')
        assert not ref.blocking and ref.deferred

    def test_module_script_deferred(self):
        (ref,) = refs_of('<script src="m.js" type="module"></script>')
        assert ref.deferred

    def test_inline_script_not_a_resource(self):
        assert refs_of("<script>var x=1;</script>") == []

    def test_img(self):
        (ref,) = refs_of('<img src="d.jpg">')
        assert ref.kind is ResourceKind.IMAGE and not ref.blocking

    def test_srcset_candidates(self):
        refs = refs_of('<img src="a.png" srcset="b.png 2x, c.png 3x">')
        assert {r.url for r in refs} == {"a.png", "b.png", "c.png"}

    def test_preload_as_font(self):
        (ref,) = refs_of('<link rel="preload" as="font" href="f.woff2">')
        assert ref.kind is ResourceKind.FONT

    def test_icon(self):
        (ref,) = refs_of('<link rel="icon" href="fav.ico">')
        assert ref.kind is ResourceKind.IMAGE

    def test_video_with_poster(self):
        refs = refs_of('<video src="v.mp4" poster="p.jpg"></video>')
        kinds = {r.url: r.kind for r in refs}
        assert kinds["v.mp4"] is ResourceKind.MEDIA
        assert kinds["p.jpg"] is ResourceKind.IMAGE

    def test_iframe(self):
        (ref,) = refs_of('<iframe src="frame.html"></iframe>')
        assert ref.kind is ResourceKind.IFRAME

    def test_style_block_urls(self):
        (ref,) = refs_of("<style>body{background:url(bg.png)}</style>")
        assert ref.url == "bg.png"
        assert ref.kind is ResourceKind.IMAGE

    def test_style_attribute_urls(self):
        (ref,) = refs_of('<div style="background:url(inline.png)"></div>')
        assert ref.url == "inline.png"

    @pytest.mark.parametrize("skip", [
        "data:image/png;base64,xyz", "javascript:void(0)", "#anchor",
        "about:blank", "blob:xyz"])
    def test_pseudo_urls_skipped(self, skip):
        assert refs_of(f'<img src="{skip}">') == []

    def test_duplicates_merged_keeping_blocking(self):
        refs = refs_of('<img src="x.png">'
                       '<link rel="stylesheet" href="x.png">')
        assert len(refs) == 1
        assert refs[0].blocking  # upgraded by the stylesheet mention

    def test_base_url_resolution(self):
        refs = refs_of('<img src="d.jpg">',
                       base="https://a.example/dir/page.html")
        assert refs[0].url == "https://a.example/dir/d.jpg"

    def test_document_order_preserved(self):
        refs = refs_of('<link rel=stylesheet href=1.css>'
                       '<script src=2.js></script><img src=3.png>')
        assert [r.url for r in refs] == ["1.css", "2.js", "3.png"]


class TestUrlHelpers:
    def test_resolve_relative(self):
        assert resolve_url("https://h/x/page.html",
                           "../y.css") == "https://h/y.css"

    def test_same_origin_true(self):
        assert is_same_origin("https://a.example/x", "https://a.example/y")

    def test_same_origin_false_across_hosts(self):
        assert not is_same_origin("https://a.example/x",
                                  "https://b.example/x")

    def test_same_origin_false_across_schemes(self):
        assert not is_same_origin("http://a.example/", "https://a.example/")

    def test_relative_urls_count_as_same_origin(self):
        assert is_same_origin("https://a.example/", "/local/path.css")
