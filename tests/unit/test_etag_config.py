"""Unit tests for the X-Etag-Config model and codec."""

import pytest

from repro.core.etag_config import (DEFAULT_MAX_ENTRIES, ETAG_CONFIG_HEADER,
                                    EtagConfig)
from repro.http.etag import ETag
from repro.http.headers import Headers


def config_with(n: int = 3) -> EtagConfig:
    return EtagConfig.from_pairs(
        [(f"/r{i}.css", ETag(opaque=f"tag{i}")) for i in range(n)])


class TestCodec:
    def test_round_trip(self):
        config = config_with(5)
        parsed = EtagConfig.from_header_value(config.to_header_value())
        assert set(parsed) == set(config)
        for url in config:
            assert parsed.etag_for(url).opaque == config.etag_for(url).opaque

    def test_header_value_is_compact_json(self):
        value = config_with(2).to_header_value()
        assert " " not in value
        assert value.startswith("{") and value.endswith("}")

    def test_empty_config(self):
        config = EtagConfig()
        assert len(config) == 0
        assert config.header_size() == 0

    @pytest.mark.parametrize("bad", ["not json", "[1,2]", '{"a": 1}',
                                     '{"a": ["x"]}', "null"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            EtagConfig.from_header_value(bad)

    def test_from_headers_absent_is_none(self):
        assert EtagConfig.from_headers(Headers()) is None

    def test_from_headers_malformed_degrades_to_none(self):
        headers = Headers({ETAG_CONFIG_HEADER: "%%%"})
        assert EtagConfig.from_headers(headers) is None

    def test_apply_and_extract(self):
        headers = Headers()
        config = config_with(2)
        config.apply_to(headers)
        assert EtagConfig.from_headers(headers) is not None

    def test_apply_empty_removes_header(self):
        headers = Headers({ETAG_CONFIG_HEADER: "{}"})
        EtagConfig().apply_to(headers)
        assert ETAG_CONFIG_HEADER not in headers


class TestSemantics:
    def test_lookup(self):
        config = config_with(2)
        assert config.etag_for("/r0.css").opaque == "tag0"
        assert config.etag_for("/missing") is None
        assert "/r1.css" in config

    def test_merged_with_other_wins(self):
        old = EtagConfig.from_pairs([("/a", ETag("old")), ("/b", ETag("b"))])
        new = EtagConfig.from_pairs([("/a", ETag("new")), ("/c", ETag("c"))])
        merged = old.merged_with(new)
        assert merged.etag_for("/a").opaque == "new"
        assert set(merged) == {"/a", "/b", "/c"}

    def test_max_entries_truncates(self):
        pairs = [(f"/r{i}", ETag(opaque=str(i))) for i in range(20)]
        config = EtagConfig.from_pairs(pairs, max_entries=5)
        assert len(config) == 5
        assert "/r0" in config and "/r19" not in config

    def test_default_cap(self):
        pairs = [(f"/r{i}", ETag(opaque=str(i)))
                 for i in range(DEFAULT_MAX_ENTRIES + 50)]
        assert len(EtagConfig.from_pairs(pairs)) == DEFAULT_MAX_ENTRIES

    def test_header_size_counts_name_and_value(self):
        config = config_with(1)
        expected = len(ETAG_CONFIG_HEADER) + 2 \
            + len(config.to_header_value()) + 2
        assert config.header_size() == expected
