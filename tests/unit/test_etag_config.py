"""Unit tests for the X-Etag-Config model and codec."""

import pytest

from repro.core.etag_config import (DEFAULT_MAX_ENTRIES, ETAG_CONFIG_HEADER,
                                    EtagConfig)
from repro.http.etag import ETag
from repro.http.headers import Headers


def config_with(n: int = 3) -> EtagConfig:
    return EtagConfig.from_pairs(
        [(f"/r{i}.css", ETag(opaque=f"tag{i}")) for i in range(n)])


class TestCodec:
    def test_round_trip(self):
        config = config_with(5)
        parsed = EtagConfig.from_header_value(config.to_header_value())
        assert set(parsed) == set(config)
        for url in config:
            assert parsed.etag_for(url).opaque == config.etag_for(url).opaque

    def test_header_value_is_compact_json(self):
        value = config_with(2).to_header_value()
        assert " " not in value
        assert value.startswith("{") and value.endswith("}")

    def test_empty_config(self):
        config = EtagConfig()
        assert len(config) == 0
        assert config.header_size() == 0

    @pytest.mark.parametrize("bad", ["not json", "[1,2]", '{"a": 1}',
                                     '{"a": ["x"]}', "null"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            EtagConfig.from_header_value(bad)

    def test_from_headers_absent_is_none(self):
        assert EtagConfig.from_headers(Headers()) is None

    def test_from_headers_malformed_degrades_to_none(self):
        headers = Headers({ETAG_CONFIG_HEADER: "%%%"})
        assert EtagConfig.from_headers(headers) is None

    def test_apply_and_extract(self):
        headers = Headers()
        config = config_with(2)
        config.apply_to(headers)
        assert EtagConfig.from_headers(headers) is not None

    def test_apply_empty_removes_header(self):
        headers = Headers({ETAG_CONFIG_HEADER: "{}"})
        EtagConfig().apply_to(headers)
        assert ETAG_CONFIG_HEADER not in headers


class TestSemantics:
    def test_lookup(self):
        config = config_with(2)
        assert config.etag_for("/r0.css").opaque == "tag0"
        assert config.etag_for("/missing") is None
        assert "/r1.css" in config

    def test_merged_with_other_wins(self):
        old = EtagConfig.from_pairs([("/a", ETag("old")), ("/b", ETag("b"))])
        new = EtagConfig.from_pairs([("/a", ETag("new")), ("/c", ETag("c"))])
        merged = old.merged_with(new)
        assert merged.etag_for("/a").opaque == "new"
        assert set(merged) == {"/a", "/b", "/c"}

    def test_max_entries_truncates(self):
        pairs = [(f"/r{i}", ETag(opaque=str(i))) for i in range(20)]
        config = EtagConfig.from_pairs(pairs, max_entries=5)
        assert len(config) == 5
        assert "/r0" in config and "/r19" not in config

    def test_default_cap(self):
        pairs = [(f"/r{i}", ETag(opaque=str(i)))
                 for i in range(DEFAULT_MAX_ENTRIES + 50)]
        assert len(EtagConfig.from_pairs(pairs)) == DEFAULT_MAX_ENTRIES

    def test_header_size_counts_name_and_value(self):
        config = config_with(1)
        expected = len(ETAG_CONFIG_HEADER) + 2 \
            + len(config.to_header_value()) + 2
        assert config.header_size() == expected


class TestLenientCodec:
    def test_salvages_valid_entries(self):
        value = '{"/a.css":"t1","/b.js":7,"/c.png":"t3","/d":null}'
        config, dropped = EtagConfig.from_header_value_lenient(value)
        assert dropped == 2
        assert set(config) == {"/a.css", "/c.png"}
        assert config.etag_for("/a.css").opaque == "t1"

    def test_unparseable_returns_none(self):
        for bad in ("{truncated", "[1,2]", "plain text", ""):
            config, dropped = EtagConfig.from_header_value_lenient(bad)
            assert config is None

    def test_nothing_salvageable_returns_none(self):
        config, dropped = EtagConfig.from_header_value_lenient(
            '{"/a":1,"/b":2}')
        assert config is None
        assert dropped == 2

    def test_empty_opaque_dropped(self):
        config, dropped = EtagConfig.from_header_value_lenient(
            '{"/a.css":"","/b.js":"t"}')
        assert set(config) == {"/b.js"}
        assert dropped == 1

    def test_from_headers_salvages_partial(self, caplog):
        import logging
        headers = Headers()
        headers.set(ETAG_CONFIG_HEADER, '{"/a.css":"t1","/b.js":7}')
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.etag_config"):
            config = EtagConfig.from_headers(headers)
        assert set(config) == {"/a.css"}
        assert "partially damaged" in caplog.text


class TestHeaderByteCap:
    def test_oversized_map_omitted_with_warning(self, caplog):
        import logging
        config = EtagConfig.from_pairs(
            [(f"/very/long/resource/path/{i:04d}.css",
              ETag(opaque="t" * 16)) for i in range(100)],
            max_entries=100)
        headers = Headers()
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.etag_config"):
            emitted = config.apply_to(headers, max_header_bytes=1024)
        assert emitted is False
        assert headers.get(ETAG_CONFIG_HEADER) is None
        assert "omitted" in caplog.text

    def test_within_cap_emitted(self):
        config = config_with(3)
        headers = Headers()
        assert config.apply_to(headers, max_header_bytes=32 * 1024)
        assert headers.get(ETAG_CONFIG_HEADER) is not None

    def test_default_cap_is_32k(self):
        from repro.core.etag_config import DEFAULT_MAX_HEADER_BYTES
        assert DEFAULT_MAX_HEADER_BYTES == 32 * 1024

    def test_server_omits_oversized_map(self, caplog):
        """A CatalystServer with a tiny cap serves pages without the
        header (and the page still works, per the integration suite)."""
        import logging
        from repro.http.messages import Request
        from repro.server.catalyst import CatalystConfig, CatalystServer
        from repro.server.site import OriginSite
        from repro.workload.sitegen import generate_site

        site = OriginSite(generate_site("https://cap.example", seed=3,
                                        median_resources=30))
        server = CatalystServer(site, config=CatalystConfig(
            max_header_bytes=64))
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.etag_config"):
            response = server.handle(Request(url="/index.html"), 0.0)
        assert response.status == 200
        assert response.headers.get(ETAG_CONFIG_HEADER) is None
        assert server.config_bytes_emitted == 0
