"""W3C trace-context: encode/parse round-trips and strictness."""

import pytest

from repro.http.messages import Headers
from repro.obs.tracecontext import (TraceContext, canonical_trace_id,
                                    decode_parent_id, encode_parent_id,
                                    extract_context, format_traceparent,
                                    format_tracestate, inject_context,
                                    parse_attempt, parse_traceparent)


class TestCanonicalTraceId:
    def test_short_hex_left_pads_to_32(self):
        assert canonical_trace_id("abc123") == "0" * 26 + "abc123"

    def test_already_canonical_passes_through(self):
        raw = "0123456789abcdef" * 2
        assert canonical_trace_id(raw) == raw

    def test_uppercase_hex_lowered(self):
        assert canonical_trace_id("ABC") == "0" * 29 + "abc"

    def test_non_hex_hashes_deterministically(self):
        one = canonical_trace_id("visit-7")
        two = canonical_trace_id("visit-7")
        other = canonical_trace_id("visit-8")
        assert one == two
        assert one != other
        assert len(one) == 32
        int(one, 16)  # must be valid hex

    def test_never_all_zero(self):
        assert canonical_trace_id("0") != "0" * 32
        assert canonical_trace_id("") != "0" * 32


class TestParentId:
    def test_round_trip(self):
        encoded = encode_parent_id(4242, 7)
        assert encoded == "0000109200000007"
        assert decode_parent_id(encoded) == (4242, 7)

    def test_wraps_into_32_bits(self):
        pid, span = decode_parent_id(encode_parent_id(2**33 + 5, 2**40 + 9))
        assert pid == 5
        assert span == 9


class TestTraceparent:
    def test_format_and_parse_round_trip(self):
        header = format_traceparent("cafe", 10, 3)
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == canonical_trace_id("cafe")
        assert context.parent_ref == (10, 3)
        assert context.sampled is True

    def test_unsampled_flag(self):
        header = format_traceparent("cafe", 1, 1, sampled=False)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize("bad", [
        "",
        "00-abc-def-01",                                   # short fields
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",         # version ff
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",         # zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",         # zero parent
        "00-" + "g" * 32 + "-" + "b" * 16 + "-01",         # non-hex
        "00-" + "a" * 32 + "-" + "b" * 16 + "-01-extra",   # v00 extras
        "zz-" + "a" * 32 + "-" + "b" * 16 + "-01",         # bad version
    ])
    def test_malformed_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_future_version_with_extra_fields_accepted(self):
        header = "42-" + "a" * 32 + "-" + "b" * 16 + "-01-future-stuff"
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "a" * 32


class TestTracestate:
    def test_attempt_round_trip(self):
        assert parse_attempt(format_tracestate(3)) == 3

    def test_attempt_absent(self):
        assert parse_attempt(None) is None
        assert parse_attempt("other=1") is None

    def test_attempt_among_other_members(self):
        assert parse_attempt("other=x,repro=attempt:2,more=y") == 2


class TestHeaderInjection:
    def test_inject_then_extract(self):
        headers = Headers()
        inject_context(headers, "trace9", 77, 12, attempt=1)
        context = extract_context(headers)
        assert context is not None
        assert context.parent_ref == (77, 12)
        assert context.attempt == 1
        assert context.trace_id == canonical_trace_id("trace9")

    def test_extract_without_headers_is_none(self):
        assert extract_context(Headers()) is None

    def test_to_header_round_trip(self):
        context = TraceContext(trace_id="f" * 32, parent_id="1" * 16,
                               sampled=True, attempt=None)
        assert parse_traceparent(context.to_header()) == context
