"""Unit tests for the developer header-assignment model."""

import math
import random

import pytest

from repro.http.headers import Headers
from repro.netsim.clock import DAY
from repro.workload.headers_model import (DeveloperModel, HeaderPolicy,
                                          TTL_MENU)


class TestHeaderPolicy:
    def test_no_store_serialization(self):
        assert HeaderPolicy(mode="no-store").to_cache_control() == "no-store"

    def test_no_cache_serialization(self):
        assert HeaderPolicy(mode="no-cache").to_cache_control() == "no-cache"

    def test_max_age_serialization(self):
        policy = HeaderPolicy(mode="max-age", ttl_s=3600)
        assert policy.to_cache_control() == "max-age=3600"

    def test_immutable_flag(self):
        policy = HeaderPolicy(mode="max-age", ttl_s=1, immutable=True)
        assert policy.to_cache_control() == "max-age=1, immutable"

    def test_none_mode_removes_header(self):
        headers = Headers({"Cache-Control": "stale"})
        HeaderPolicy(mode="none").apply(headers)
        assert "Cache-Control" not in headers

    def test_apply_sets_header(self):
        headers = Headers()
        HeaderPolicy(mode="max-age", ttl_s=60).apply(headers)
        assert headers["Cache-Control"] == "max-age=60"

    def test_allows_reuse(self):
        assert HeaderPolicy(mode="max-age", ttl_s=60) \
            .allows_reuse_without_validation
        assert not HeaderPolicy(mode="no-cache") \
            .allows_reuse_without_validation
        assert not HeaderPolicy(mode="none") \
            .allows_reuse_without_validation


class TestDeveloperModel:
    def test_share_distribution_matches_config(self):
        model = DeveloperModel(no_store_share=0.2, missing_share=0.3,
                               no_cache_share=0.1)
        rng = random.Random(42)
        draws = [model.draw(rng) for _ in range(4000)]
        share = lambda mode: sum(d.mode == mode for d in draws) / len(draws)
        assert share("no-store") == pytest.approx(0.2, abs=0.03)
        assert share("none") == pytest.approx(0.3, abs=0.03)
        assert share("no-cache") == pytest.approx(0.1, abs=0.02)
        assert share("max-age") == pytest.approx(0.4, abs=0.03)

    def test_ttls_come_from_menu(self):
        model = DeveloperModel()
        rng = random.Random(1)
        menu_values = {ttl for ttl, _ in TTL_MENU} | {365 * DAY}
        for _ in range(500):
            policy = model.draw(rng)
            if policy.mode == "max-age":
                assert policy.ttl_s in menu_values

    def test_recognised_immutable_gets_year_ttl(self):
        model = DeveloperModel(recognised_immutable_share=1.0)
        rng = random.Random(1)
        policy = model.draw(rng, change_period_s=math.inf)
        assert policy.mode == "max-age"
        assert policy.ttl_s == 365 * DAY
        assert policy.immutable

    def test_unrecognised_immutable_rolls_the_menu(self):
        model = DeveloperModel(recognised_immutable_share=0.0)
        rng = random.Random(1)
        modes = {model.draw(rng, change_period_s=math.inf).mode
                 for _ in range(100)}
        assert "no-store" in modes  # the mess persists

    def test_invalid_shares_rejected(self):
        with pytest.raises(ValueError):
            DeveloperModel(no_store_share=0.9, missing_share=0.5)

    def test_well_configured_never_blocks_caching(self):
        model = DeveloperModel.well_configured()
        rng = random.Random(3)
        draws = [model.draw(rng) for _ in range(300)]
        assert not any(d.mode in ("no-store", "none") for d in draws)
