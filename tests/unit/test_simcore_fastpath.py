"""Regression tests for the PR-5 simulation-core fast paths.

Every optimization here was required to be *unobservable*: same
simulated timestamps, same measurements, same pickles.  These tests pin
that contract — against a verbatim copy of the seed pipe algorithm,
against the parse-cache off switch, and across the process-pool
serialization boundary.
"""

import math
import pickle
import random

from repro.browser.engine import BrowserConfig
from repro.core.modes import CachingMode
from repro.experiments.harness import (GridResult, PairMeasurement,
                                       measure_pair)
from repro.netsim.link import NetworkConditions, ProcessorSharingPipe
from repro.netsim.sim import Event, Simulator, Timeout
from repro.workload.sitegen import generate_site


class _ReferencePipe:
    """The seed's cancel-and-reinsert processor-sharing pipe, verbatim.

    Kept as the oracle: the optimized pipe must produce bit-identical
    completion timestamps, not merely close ones.
    """

    class _Transfer:
        __slots__ = ("remaining_bits", "event")

        def __init__(self, remaining_bits, event):
            self.remaining_bits = remaining_bits
            self.event = event

    def __init__(self, sim, capacity_bps):
        self.sim = sim
        self.capacity_bps = capacity_bps
        self._active = []
        self._last_update = 0.0
        self._wakeup_token = 0
        self.total_bits = 0.0

    def transfer(self, nbytes):
        ev = Event(self.sim)
        self.total_bits += nbytes * 8.0
        if nbytes == 0 or math.isinf(self.capacity_bps):
            ev.succeed(nbytes)
            return ev
        self._advance()
        self._active.append(self._Transfer(nbytes * 8.0, ev))
        self._reschedule()
        return ev

    def set_capacity(self, capacity_bps):
        self._advance()
        self.capacity_bps = capacity_bps
        self._reschedule()

    def _rate_per_transfer(self):
        if not self._active:
            return self.capacity_bps
        return self.capacity_bps / len(self._active)

    def _advance(self):
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        progressed = elapsed * self._rate_per_transfer()
        for t in self._active:
            t.remaining_bits -= progressed

    def _reschedule(self):
        finished = [t for t in self._active if t.remaining_bits <= 1e-6]
        if finished:
            self._active = [t for t in self._active
                            if t.remaining_bits > 1e-6]
            for t in finished:
                t.event.succeed()
        self._wakeup_token += 1
        if not self._active:
            return
        rate = self._rate_per_transfer()
        target = min(self._active, key=lambda t: t.remaining_bits)
        delay = target.remaining_bits / rate
        token = self._wakeup_token
        timer = self.sim.timeout(delay)
        timer.add_callback(lambda _ev: self._on_wakeup(token, target))

    def _on_wakeup(self, token, target):
        if token != self._wakeup_token:
            return
        self._advance()
        target.remaining_bits = 0.0
        self._reschedule()


def _drive(pipe_cls, capacity_bps, workload, capacity_changes=()):
    """Run a staggered-transfer workload; return completion timestamps."""
    sim = Simulator()
    pipe = pipe_cls(sim, capacity_bps)
    completions = {}

    def feeder(ident, start_s, nbytes):
        yield sim.timeout(start_s)
        yield pipe.transfer(nbytes)
        completions[ident] = sim.now

    def tuner(at_s, new_bps):
        yield sim.timeout(at_s)
        pipe.set_capacity(new_bps)

    for ident, (start_s, nbytes) in enumerate(workload):
        sim.process(feeder(ident, start_s, nbytes))
    for at_s, new_bps in capacity_changes:
        sim.process(tuner(at_s, new_bps))
    sim.run()
    return completions


class TestPipeMatchesSeedAlgorithm:
    def test_bit_identical_timestamps_randomized(self):
        for seed in range(8):
            rng = random.Random(seed)
            workload = [(rng.uniform(0.0, 0.5), rng.randint(1, 200_000))
                        for _ in range(rng.randint(2, 24))]
            fast = _drive(ProcessorSharingPipe, 8e6, workload)
            reference = _drive(_ReferencePipe, 8e6, workload)
            assert fast == reference  # == on floats: bit-identical

    def test_bit_identical_under_capacity_changes(self):
        workload = [(0.0, 50_000), (0.01, 120_000), (0.05, 9_999),
                    (0.2, 80_000)]
        changes = [(0.03, 2e6), (0.15, 16e6)]
        fast = _drive(ProcessorSharingPipe, 8e6, workload, changes)
        reference = _drive(_ReferencePipe, 8e6, workload, changes)
        assert fast == reference

    def test_simultaneous_ties_pick_same_winner(self):
        # Equal remaining bits: the seed's min() keeps the first minimum;
        # the fused scan must agree on which transfer the wakeup targets.
        workload = [(0.0, 10_000)] * 6
        fast = _drive(ProcessorSharingPipe, 8e6, workload)
        reference = _drive(_ReferencePipe, 8e6, workload)
        assert fast == reference


class TestSetCapacityNoop:
    def test_equal_capacity_is_ignored(self):
        sim = Simulator()
        pipe = ProcessorSharingPipe(sim, 8e6)
        token_before = pipe._wakeup_token
        pipe.set_capacity(8e6)
        assert pipe._wakeup_token == token_before  # no reschedule ran

    def test_redundant_sets_leave_timestamps_unchanged(self):
        workload = [(0.0, 50_000), (0.02, 70_000)]
        plain = _drive(ProcessorSharingPipe, 8e6, workload)
        redundant = _drive(ProcessorSharingPipe, 8e6, workload,
                           capacity_changes=[(0.01, 8e6), (0.05, 8e6)])
        assert plain == redundant


class TestTimeoutFreeList:
    def test_timeouts_are_recycled(self):
        sim = Simulator()

        def ticker(n):
            for _ in range(n):
                yield sim.timeout(0.001)

        sim.process(ticker(100))
        sim.run()
        assert sim._timeout_pool  # dispatch fed the free-list

    def test_recycled_timeouts_carry_fresh_values(self):
        sim = Simulator()
        seen = []

        def ticker():
            for i in range(50):
                value = yield sim.timeout(0.001, value=i)
                seen.append(value)

        sim.process(ticker())
        sim.run()
        assert seen == list(range(50))

    def test_retained_timeouts_are_not_recycled(self):
        sim = Simulator()
        held = []

        def keeper():
            for i in range(10):
                timer = sim.timeout(0.001, value=i)
                held.append(timer)
                yield timer

        sim.process(keeper())
        sim.run()
        # Externally referenced Timeout objects must keep their values.
        assert [t.value for t in held] == list(range(10))
        assert all(isinstance(t, Timeout) for t in held)
        assert len({id(t) for t in held}) == len(held)


class TestParseCacheSwitch:
    def test_measurements_byte_identical_with_cache_off(self):
        site = generate_site("https://fastpath.example", seed=7)
        conditions = NetworkConditions.of(8, 100)
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            cached = measure_pair(site, mode, conditions, 3600.0,
                                  base_config=BrowserConfig(parse_cache=True))
            uncached = measure_pair(
                site, mode, conditions, 3600.0,
                base_config=BrowserConfig(parse_cache=False))
            assert cached == uncached

    def test_repeat_runs_share_cached_parses(self):
        site = generate_site("https://fastpath.example", seed=7)
        conditions = NetworkConditions.of(8, 100)
        config = BrowserConfig(parse_cache=True)
        first = measure_pair(site, CachingMode.CATALYST, conditions,
                             3600.0, base_config=config)
        second = measure_pair(site, CachingMode.CATALYST, conditions,
                              3600.0, base_config=config)
        assert first == second


class TestSlotsContainersPickle:
    def _measurement(self):
        return PairMeasurement(
            origin="https://a.example", mode="catalyst",
            conditions="8Mbps/100ms", delay_s=3600.0,
            cold_plt_ms=1200.5, warm_plt_ms=400.25,
            cold_bytes=100_000, warm_bytes=5_000, warm_requests=3,
            warm_sources={"network": 1, "sw-cache": 2},
            warm_stale_hits=0)

    def test_pair_measurement_round_trip(self):
        original = self._measurement()
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert clone.warm_sources == original.warm_sources
        assert clone.reduction == original.reduction

    def test_grid_result_round_trip(self):
        grid = GridResult(measurements=[self._measurement()])
        clone = pickle.loads(pickle.dumps(grid))
        assert clone.measurements == grid.measurements
        assert clone.where(mode="catalyst") == grid.where(mode="catalyst")

    def test_slots_actually_engaged(self):
        # The containers must not grow a per-instance __dict__ back.
        assert not hasattr(self._measurement(), "__dict__")
        assert not hasattr(GridResult(measurements=[]), "__dict__")
