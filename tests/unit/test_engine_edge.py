"""Edge-case tests for the page-load engine."""

import pytest

from repro.browser.engine import BrowserConfig, BrowserSession
from repro.browser.metrics import FetchSource
from repro.http.headers import Headers
from repro.http.messages import Request, Response
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.workload.headers_model import HeaderPolicy
from repro.workload.sitegen import (PageSpec, ResourceSpec, SiteSpec,
                                    generate_site)
from repro.html.parser import ResourceKind
from repro.server.site import OriginSite
from repro.server.static import StaticServer

COND = NetworkConditions.of(60, 40)


def load(handler, config=BrowserConfig(), page="/index.html"):
    sim = Simulator()
    link = Link(sim, COND)
    session = BrowserSession(config)
    return sim.run_process(session.load(sim, link, handler, page,
                                        mode_label="edge"))


def bare_page_site() -> SiteSpec:
    page = PageSpec(url="/index.html", html_size_bytes=2_000,
                    html_change_period_s=1e9, html_content_seed=1,
                    html_refs=(), resources={},
                    html_fixed_change_times=())
    return SiteSpec(origin="https://bare.example", seed=0,
                    pages={"/index.html": page})


class TestDegeneratePages:
    def test_page_with_no_subresources(self):
        server = StaticServer(OriginSite(bare_page_site()))
        result = load(server.handle)
        assert len(result.events) == 1
        assert result.events[0].kind is ResourceKind.DOCUMENT
        assert result.plt_s > 0

    def test_unparseable_html_still_loads(self):
        def handler(request, at_time):
            return Response(body=b"<<<< not html >>>> \xff\xfe",
                            headers=Headers({"Cache-Control": "no-cache"}))
        result = load(handler)
        assert result.plt_s > 0
        assert len(result.events) == 1

    def test_missing_subresource_404_does_not_kill_load(self):
        markup = (b'<html><head></head><body>'
                  b'<img src="/present.png"><img src="/missing.png">'
                  b'</body></html>')

        def handler(request, at_time):
            if request.path == "/index.html":
                return Response(body=markup)
            if request.path == "/present.png":
                return Response(body=b"pixels")
            return Response(status=404, body=b"nope")
        result = load(handler)
        statuses = {e.url: e.status for e in result.events}
        assert statuses["/missing.png"] == 404
        assert statuses["/present.png"] == 200

    def test_css_with_broken_child_chain(self):
        def handler(request, at_time):
            if request.path == "/index.html":
                return Response(
                    body=b'<html><head>'
                         b'<link rel="stylesheet" href="/a.css">'
                         b'</head></html>')
            if request.path == "/a.css":
                return Response(body=b"x { background: url(/gone.png); }",
                                headers=Headers(
                                    {"Content-Type": "text/css"}))
            return Response(status=404)
        result = load(handler)
        urls = {e.url for e in result.events}
        assert "/gone.png" in urls  # attempted, 404'd, load completed


class TestScale:
    def test_heavy_page_completes(self):
        site = generate_site("https://heavy.example", seed=99,
                             median_resources=220)
        server = StaticServer(OriginSite(site))
        result = load(server.handle)
        assert len(result.events) == site.index.resource_count + 1
        assert result.plt_s > 0

    def test_heavy_page_deterministic(self):
        site = generate_site("https://heavy.example", seed=99,
                             median_resources=220)

        def run():
            server = StaticServer(OriginSite(site))
            result = load(server.handle)
            return result.plt_s
        assert run() == run()


class TestRedirectsAndErrors:
    def test_server_500_on_subresource(self):
        def handler(request, at_time):
            if request.path == "/index.html":
                return Response(body=b'<html><img src="/boom.png"></html>')
            return Response(status=500, body=b"err")
        result = load(handler)
        assert {e.status for e in result.events} == {200, 500}

    def test_html_500_still_returns_result(self):
        def handler(request, at_time):
            return Response(status=500, body=b"<html>oops</html>")
        result = load(handler)
        assert result.events[0].status == 500
