"""Unit tests for run manifests (repro.obs.manifest)."""

import json

import pytest

from repro.obs import build_manifest, comparable, stamp, validate_manifest
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, git_rev, manifest_json

pytestmark = pytest.mark.obs


def _manifest(**overrides):
    manifest = build_manifest(config={"bench": "x", "sites": 3},
                              sampling={"repeats": 10}, seeds=[21],
                              workers=2, wall_time_s=1.234)
    manifest.update(overrides)
    return manifest


class TestBuild:
    def test_required_fields_present_and_valid(self):
        manifest = _manifest()
        assert validate_manifest(manifest) == []
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["seeds"] == [21]
        assert manifest["workers"] == 2
        assert manifest["wall_time_s"] == 1.234

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            build_manifest(config={})

    def test_git_rev_in_this_repo(self):
        rev = git_rev()
        assert rev == "unknown" or len(rev) == 40

    def test_git_rev_outside_repo(self, tmp_path):
        assert git_rev(repo_dir=tmp_path) == "unknown"

    def test_stamp_attaches_and_returns_payload(self):
        payload = {"bench": "x"}
        assert stamp(payload, _manifest()) is payload
        assert validate_manifest(payload["manifest"]) == []

    def test_manifest_json_is_parseable(self):
        parsed = json.loads(manifest_json(_manifest()))
        assert validate_manifest(parsed) == []


class TestValidate:
    def test_non_mapping(self):
        assert validate_manifest(None)
        assert validate_manifest([1, 2])

    def test_missing_field_named(self):
        manifest = _manifest()
        del manifest["git_rev"]
        (error,) = validate_manifest(manifest)
        assert "git_rev" in error

    def test_wrong_type_named(self):
        errors = validate_manifest(_manifest(workers="three"))
        assert any("workers" in e for e in errors)

    def test_bool_is_not_an_int(self):
        errors = validate_manifest(_manifest(workers=True))
        assert any("workers" in e for e in errors)

    def test_newer_schema_rejected(self):
        errors = validate_manifest(
            _manifest(schema_version=MANIFEST_SCHEMA_VERSION + 1))
        assert any("schema_version" in e for e in errors)

    def test_nonpositive_workers_rejected(self):
        assert validate_manifest(_manifest(workers=0))

    def test_empty_config_rejected(self):
        assert validate_manifest(_manifest(config={}))


class TestComparable:
    def test_same_config_comparable(self):
        same, reason = comparable(_manifest(), _manifest())
        assert same and reason == ""

    def test_different_sampling_still_comparable(self):
        a = _manifest()
        b = _manifest()
        b["sampling"] = {"repeats": 999}
        b["workers"] = 16
        assert comparable(a, b)[0]

    def test_config_difference_named(self):
        b = _manifest(config={"bench": "x", "sites": 8})
        same, reason = comparable(_manifest(), b)
        assert not same
        assert "sites" in reason and "3" in reason and "8" in reason

    def test_missing_key_counts_as_difference(self):
        b = _manifest(config={"bench": "x"})
        same, reason = comparable(_manifest(), b)
        assert not same
        assert "sites" in reason
