"""Unit tests for the HTTP/1.1 wire codec."""

import asyncio

import pytest

from repro.http.errors import ProtocolError
from repro.http.messages import Request, Response
from repro.http.wire import (read_request, read_response, serialize_request,
                             serialize_response)


class _ParseCall:
    """Defer reader construction into the running event loop."""

    def __init__(self, parse_fn, data: bytes, **kwargs):
        self.parse_fn = parse_fn
        self.data = data
        self.kwargs = kwargs

    async def _invoke(self):
        reader = asyncio.StreamReader()
        reader.feed_data(self.data)
        reader.feed_eof()
        return await self.parse_fn(reader, **self.kwargs)


def run(call: _ParseCall):
    return asyncio.run(call._invoke())


class TestSerializeRequest:
    def test_basic_get(self):
        wire = serialize_request(Request(url="/a", headers={"Host": "x"}))
        assert wire.startswith(b"GET /a HTTP/1.1\r\n")
        assert b"Host: x\r\n" in wire
        assert wire.endswith(b"\r\n\r\n")

    def test_body_gets_content_length(self):
        wire = serialize_request(Request(method="POST", url="/",
                                         body=b"abc"))
        assert b"Content-Length: 3\r\n" in wire
        assert wire.endswith(b"abc")


class TestSerializeResponse:
    def test_basic(self):
        wire = serialize_response(Response(status=200, body=b"hi"))
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2\r\n" in wire
        assert wire.endswith(b"hi")

    def test_304_has_no_body_bytes(self):
        wire = serialize_response(Response(status=304, body=b"ignored"))
        assert not wire.endswith(b"ignored")
        assert b"Content-Length" not in wire

    def test_204_has_no_body(self):
        wire = serialize_response(Response(status=204))
        assert b"Content-Length" not in wire


class TestReadRequest:
    def test_round_trip(self):
        original = Request(method="GET", url="/x?q=1",
                           headers={"Host": "h", "Accept": "*/*"})
        parsed = run(_ParseCall(read_request, serialize_request(original)))
        assert parsed.method == "GET"
        assert parsed.url == "/x?q=1"
        assert parsed.headers["host"] == "h"

    def test_round_trip_with_body(self):
        original = Request(method="POST", url="/submit", body=b"payload")
        parsed = run(_ParseCall(read_request, serialize_request(original)))
        assert parsed.body == b"payload"

    def test_clean_eof_returns_none(self):
        assert run(_ParseCall(read_request, b"")) is None

    @pytest.mark.parametrize("bad", [
        b"GARBAGE\r\n\r\n",
        b"GET /\r\n\r\n",                      # missing version
        b"GET / HTTP/3.0\r\n\r\n",             # unsupported version
        b"G=T / HTTP/1.1\r\n\r\n",             # bad method
        b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        b"GET / HTTP/1.1\r\nName : v\r\n\r\n",  # space before colon
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProtocolError):
            run(_ParseCall(read_request, bad))

    def test_obsolete_folding_rejected(self):
        data = b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"
        with pytest.raises(ProtocolError):
            run(_ParseCall(read_request, data))

    def test_conflicting_content_lengths_rejected(self):
        data = (b"POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                b"Content-Length: 5\r\n\r\nabc")
        with pytest.raises(ProtocolError):
            run(_ParseCall(read_request, data))

    def test_te_plus_cl_rejected_smuggling(self):
        data = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                b"Content-Length: 3\r\n\r\n0\r\n\r\n")
        with pytest.raises(ProtocolError):
            run(_ParseCall(read_request, data))

    def test_chunked_body(self):
        data = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n")
        parsed = run(_ParseCall(read_request, data))
        assert parsed.body == b"abcdefg"

    def test_chunked_with_extension_and_trailer(self):
        data = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"3;ext=1\r\nabc\r\n0\r\nX-Trailer: t\r\n\r\n")
        parsed = run(_ParseCall(read_request, data))
        assert parsed.body == b"abc"

    def test_bad_chunk_size_rejected(self):
        data = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"zz\r\nabc\r\n0\r\n\r\n")
        with pytest.raises(ProtocolError):
            run(_ParseCall(read_request, data))


class TestReadResponse:
    def test_round_trip(self):
        original = Response(status=200, body=b"hello",
                            headers={"ETag": '"v"'})
        parsed = run(_ParseCall(read_response,
                                serialize_response(original)))
        assert parsed.status == 200
        assert parsed.body == b"hello"
        assert parsed.headers["etag"] == '"v"'

    def test_304_parsed_without_body(self):
        wire = serialize_response(Response(
            status=304, headers={"ETag": '"v"'}))
        parsed = run(_ParseCall(read_response, wire))
        assert parsed.status == 304
        assert parsed.body == b""

    def test_head_response_body_skipped(self):
        wire = (b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n")
        parsed = run(_ParseCall(read_response, wire,
                                request_method="HEAD"))
        assert parsed.body == b""

    def test_non_numeric_status_rejected(self):
        with pytest.raises(ProtocolError):
            run(_ParseCall(read_response, b"HTTP/1.1 abc OK\r\n\r\n"))

    def test_reason_with_spaces(self):
        wire = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
        parsed = run(_ParseCall(read_response, wire))
        assert parsed.reason == "Not Found"
