"""Unit tests for per-session resource recording."""

import pytest

from repro.server.sessions import SessionRecorder


class TestRecording:
    def test_first_visit_not_yet_stapled(self):
        recorder = SessionRecorder()
        recorder.begin_visit("s1")
        recorder.record("s1", "/a.js")
        assert recorder.urls_for("s1") == []  # mid-visit: not promoted

    def test_second_visit_sees_first_visits_urls(self):
        recorder = SessionRecorder()
        recorder.begin_visit("s1")
        recorder.record("s1", "/a.js")
        recorder.record("s1", "/b.json")
        recorder.begin_visit("s1")
        assert recorder.urls_for("s1") == ["/a.js", "/b.json"]

    def test_urls_accumulate_across_visits(self):
        recorder = SessionRecorder()
        recorder.begin_visit("s1")
        recorder.record("s1", "/a.js")
        recorder.begin_visit("s1")
        recorder.record("s1", "/c.js")
        recorder.begin_visit("s1")
        assert set(recorder.urls_for("s1")) == {"/a.js", "/c.js"}

    def test_duplicates_within_visit_collapsed(self):
        recorder = SessionRecorder()
        recorder.begin_visit("s1")
        recorder.record("s1", "/a.js")
        recorder.record("s1", "/a.js")
        recorder.begin_visit("s1")
        assert recorder.urls_for("s1") == ["/a.js"]

    def test_sessions_isolated(self):
        recorder = SessionRecorder()
        recorder.begin_visit("s1")
        recorder.record("s1", "/a.js")
        recorder.begin_visit("s1")
        assert recorder.urls_for("s2") == []

    def test_unknown_session_empty(self):
        assert SessionRecorder().urls_for("ghost") == []


class TestFootprintCaps:
    def test_url_cap_per_session(self):
        recorder = SessionRecorder(max_urls_per_session=3)
        recorder.begin_visit("s1")
        for i in range(10):
            recorder.record("s1", f"/r{i}.js")
        recorder.begin_visit("s1")
        assert len(recorder.urls_for("s1")) <= 3

    def test_session_cap_evicts_lru(self):
        recorder = SessionRecorder(max_sessions=2)
        for sid in ("a", "b", "c"):
            recorder.begin_visit(sid)
            recorder.record(sid, "/x.js")
        assert recorder.session_count == 2
        assert recorder.evicted_sessions == 1
        # "a" was least recently used
        assert recorder.urls_for("a") == []

    def test_memory_footprint_accounting(self):
        recorder = SessionRecorder()
        recorder.begin_visit("s1")
        recorder.record("s1", "/abc.js")
        assert recorder.memory_footprint_bytes() >= len("s1") + len("/abc.js")

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            SessionRecorder(max_sessions=0)
        with pytest.raises(ValueError):
            SessionRecorder(max_urls_per_session=0)
