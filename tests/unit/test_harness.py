"""Unit tests for the experiment harness."""

import pytest

from repro.core.modes import CachingMode
from repro.experiments.harness import GridResult, measure_pair, run_grid
from repro.experiments.motivation import measure_motivation
from repro.netsim.clock import HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.corpus import make_corpus
from repro.workload.sitegen import generate_site

COND = NetworkConditions.of(60, 40, label="5g")


@pytest.fixture(scope="module")
def site_spec():
    return generate_site("https://h.example", seed=91, median_resources=25)


class TestMeasurePair:
    def test_fields_populated(self, site_spec):
        m = measure_pair(site_spec, CachingMode.STANDARD, COND, HOUR)
        assert m.origin == site_spec.origin
        assert m.mode == "standard"
        assert m.conditions == "5g"
        assert m.cold_plt_ms > m.warm_plt_ms > 0
        assert m.cold_bytes > m.warm_bytes
        assert m.warm_requests >= 1
        assert sum(m.warm_sources.values()) >= 1

    def test_reduction_property(self, site_spec):
        m = measure_pair(site_spec, CachingMode.STANDARD, COND, HOUR)
        assert m.reduction == pytest.approx(
            (m.cold_plt_ms - m.warm_plt_ms) / m.cold_plt_ms)

    def test_deterministic(self, site_spec):
        a = measure_pair(site_spec, CachingMode.CATALYST, COND, HOUR)
        b = measure_pair(site_spec, CachingMode.CATALYST, COND, HOUR)
        assert a == b

    def test_staleness_audit_counts(self, site_spec):
        m = measure_pair(site_spec, CachingMode.CATALYST, COND, HOUR,
                         audit_staleness=True)
        assert m.warm_stale_hits == 0  # catalyst never serves stale


class TestRunGrid:
    @pytest.fixture(scope="class")
    def grid(self, site_spec):
        corpus = make_corpus(size=2, seed=5)
        return run_grid(
            sites=corpus,
            modes=(CachingMode.STANDARD, CachingMode.CATALYST),
            conditions_list=[COND],
            delays_s=[HOUR])

    def test_full_cross_product(self, grid):
        assert len(grid.measurements) == 2 * 2  # sites x modes

    def test_where_filters(self, grid):
        standard = grid.where(mode="standard")
        assert len(standard) == 2
        assert all(m.mode == "standard" for m in standard)

    def test_mean_warm_plt(self, grid):
        mean = grid.mean_warm_plt(mode="standard")
        values = [m.warm_plt_ms for m in grid.where(mode="standard")]
        assert mean == pytest.approx(sum(values) / len(values))

    def test_mean_warm_plt_empty_filter_raises(self, grid):
        with pytest.raises(ValueError):
            grid.mean_warm_plt(mode="nonexistent")

    def test_mean_reduction_vs(self, grid):
        reduction = grid.mean_reduction_vs("standard", "catalyst")
        assert -0.5 < reduction < 1.0

    def test_mean_reduction_no_overlap_raises(self):
        empty = GridResult(measurements=[])
        with pytest.raises(ValueError):
            empty.mean_reduction_vs("standard", "catalyst")

    def test_progress_callback(self, site_spec):
        messages = []
        run_grid(sites=[site_spec], modes=[CachingMode.STANDARD],
                 conditions_list=[COND], delays_s=[HOUR],
                 progress=messages.append)
        assert len(messages) == 1


class TestMotivationBands:
    """The workload must keep reproducing the §2.2 calibration targets."""

    @pytest.fixture(scope="class")
    def stats(self):
        return measure_motivation(make_corpus(size=60, seed=2024))

    def test_actually_cached_band(self, stats):
        assert 0.42 <= stats.effectively_cached_share <= 0.62

    def test_short_ttl_band(self, stats):
        assert 0.30 <= stats.short_ttl_share <= 0.50

    def test_short_ttl_unchanged_band(self, stats):
        assert 0.75 <= stats.short_ttl_unchanged_share <= 0.95

    def test_expire_unchanged_band(self, stats):
        assert 0.32 <= stats.expire_unchanged_share <= 0.55

    def test_formatting_contains_paper_column(self, stats):
        assert "paper" in stats.format()
