"""Prometheus text exposition: rendering, parsing, round-trips."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (CONTENT_TYPE, parse_prometheus_text,
                                sanitize_metric_name, scrape_value,
                                to_prometheus_text)


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("http.requests").inc(42)
    registry.gauge("http.inflight").set(3)
    hist = registry.histogram("http.request_ms")
    for value in (1.0, 2.0, 3.0, 4.0, 100.0):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_dots_become_underscores_with_namespace(self):
        assert sanitize_metric_name("http.request_ms") \
            == "repro_http_request_ms"

    def test_leading_digit_guarded(self):
        name = sanitize_metric_name("5xx.count", namespace="")
        assert not name[0].isdigit()


class TestRender:
    def test_counter_rendered_with_total_suffix(self):
        text = to_prometheus_text(sample_registry())
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_http_requests_total 42" in text

    def test_gauge_rendered(self):
        text = to_prometheus_text(sample_registry())
        assert "# TYPE repro_http_inflight gauge" in text
        assert "repro_http_inflight 3" in text

    def test_histogram_rendered_as_summary(self):
        text = to_prometheus_text(sample_registry())
        assert "# TYPE repro_http_request_ms summary" in text
        assert 'quantile="0.99"' in text
        assert "repro_http_request_ms_count 5" in text
        assert "repro_http_request_ms_sum 110" in text

    def test_accepts_dump_as_well_as_registry(self):
        registry = sample_registry()
        assert to_prometheus_text(registry.dump()) \
            == to_prometheus_text(registry)

    def test_content_type_is_prom_text_004(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_ends_with_newline(self):
        assert to_prometheus_text(sample_registry()).endswith("\n")


class TestParse:
    def test_round_trip_counter_and_gauge(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(sample_registry()))
        assert scrape_value(parsed, "repro_http_requests_total") == 42
        assert scrape_value(parsed, "repro_http_inflight") == 3

    def test_round_trip_summary(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(sample_registry()))
        assert scrape_value(parsed, "repro_http_request_ms_count") == 5
        p99 = scrape_value(parsed, "repro_http_request_ms",
                           quantile="0.99")
        assert p99 == pytest.approx(100.0, rel=0.05)

    def test_types_recorded(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(sample_registry()))
        assert parsed["repro_http_requests_total"]["type"] == "counter"
        assert parsed["repro_http_request_ms"]["type"] == "summary"

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not prometheus\n")

    def test_duplicate_type_raises(self):
        text = ("# TYPE a counter\n" "a 1\n" "# TYPE a counter\n")
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_empty_registry_parses_to_nothing(self):
        assert parse_prometheus_text(
            to_prometheus_text(MetricsRegistry())) == {}

    def test_special_values_survive(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(math.inf)
        parsed = parse_prometheus_text(to_prometheus_text(registry))
        assert scrape_value(parsed, "repro_weird") == math.inf
