"""Unit tests for the LRU cache store."""

import pytest

from repro.cache.store import CacheStore
from repro.http.messages import Request, Response


def store_one(store: CacheStore, url: str = "/r", body: bytes = b"x",
              headers: dict | None = None, vary_request: dict | None = None,
              now: float = 0.0):
    request = Request(url=url, headers=vary_request or {})
    response = Response(headers=headers or {}, body=body)
    return store.store(request, response, now, now)


class TestStoreAndLookup:
    def test_round_trip(self):
        store = CacheStore()
        store_one(store, "/a", b"body")
        entry = store.lookup(Request(url="/a"), now=1.0)
        assert entry is not None
        assert entry.response.body == b"body"

    def test_miss_returns_none(self):
        assert CacheStore().lookup(Request(url="/a"), now=0.0) is None

    def test_no_store_response_rejected(self):
        store = CacheStore()
        result = store_one(store, headers={"Cache-Control": "no-store"})
        assert result is None
        assert store.entry_count == 0

    def test_replacement_updates_bytes(self):
        store = CacheStore()
        store_one(store, "/a", b"1234567890")
        size_after_first = store.byte_size
        store_one(store, "/a", b"12")
        assert store.entry_count == 1
        assert store.byte_size < size_after_first

    def test_stored_response_isolated_from_caller(self):
        store = CacheStore()
        request = Request(url="/a")
        response = Response(body=b"orig")
        store.store(request, response, 0.0, 0.0)
        response.headers.set("Mutated", "yes")
        assert "Mutated" not in store.lookup(request, 0.0).response.headers


class TestVary:
    def test_variant_separation(self):
        store = CacheStore()
        store_one(store, "/a", b"gzip-body",
                  headers={"Vary": "Accept-Encoding"},
                  vary_request={"Accept-Encoding": "gzip"})
        store_one(store, "/a", b"plain-body",
                  headers={"Vary": "Accept-Encoding"},
                  vary_request={"Accept-Encoding": ""})
        gzip_entry = store.lookup(
            Request(url="/a", headers={"Accept-Encoding": "gzip"}), 0.0)
        plain_entry = store.lookup(Request(url="/a"), 0.0)
        assert gzip_entry.response.body == b"gzip-body"
        assert plain_entry.response.body == b"plain-body"
        assert store.entry_count == 2

    def test_variant_mismatch_is_miss(self):
        store = CacheStore()
        store_one(store, "/a", b"gzip-body",
                  headers={"Vary": "Accept-Encoding"},
                  vary_request={"Accept-Encoding": "gzip"})
        assert store.lookup(
            Request(url="/a", headers={"Accept-Encoding": "br"}),
            0.0) is None

    def test_invalidate_drops_all_variants(self):
        store = CacheStore()
        store_one(store, "/a", headers={"Vary": "X"},
                  vary_request={"X": "1"})
        store_one(store, "/a", headers={"Vary": "X"},
                  vary_request={"X": "2"})
        assert store.invalidate("/a") == 2
        assert store.entry_count == 0


class TestLru:
    def test_eviction_under_byte_budget(self):
        store = CacheStore(max_bytes=250)
        store_one(store, "/a", b"x" * 100)
        store_one(store, "/b", b"x" * 100)
        store_one(store, "/c", b"x" * 100)
        assert store.evictions >= 1
        assert store.byte_size <= 250
        assert "/c" in store  # newest survives

    def test_lookup_refreshes_lru_position(self):
        store = CacheStore(max_bytes=250)
        store_one(store, "/a", b"x" * 100)
        store_one(store, "/b", b"x" * 100)
        store.lookup(Request(url="/a"), now=1.0)   # /a becomes most recent
        store_one(store, "/c", b"x" * 100)
        assert "/a" in store
        assert "/b" not in store

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            CacheStore(max_bytes=0)


class TestStats:
    def test_hit_and_lookup_counters(self):
        store = CacheStore()
        store_one(store, "/a")
        store.lookup(Request(url="/a"), 0.0)
        store.lookup(Request(url="/missing"), 0.0)
        assert store.lookups == 2
        assert store.hits == 1
        assert store.stores == 1

    def test_urls_iteration(self):
        store = CacheStore()
        store_one(store, "/a")
        store_one(store, "/b")
        assert sorted(store.urls()) == ["/a", "/b"]

    def test_clear(self):
        store = CacheStore()
        store_one(store, "/a")
        store.clear()
        assert store.entry_count == 0
        assert store.byte_size == 0
