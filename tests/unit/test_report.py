"""Unit tests for report formatting."""

from repro.experiments.report import format_grid, format_pct, format_table


class TestFormatPct:
    def test_basic(self):
        assert format_pct(0.314) == "31.4%"

    def test_digits(self):
        assert format_pct(0.5, digits=0) == "50%"

    def test_negative(self):
        assert format_pct(-0.021) == "-2.1%"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_floats_one_decimal(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.1" in out and "3.14159" not in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatGrid:
    def test_labels_placed(self):
        out = format_grid(["r1", "r2"], ["c1", "c2"],
                          [["x", "y"], ["z", "w"]], corner="#")
        lines = out.splitlines()
        assert "#" in lines[0] and "c1" in lines[0]
        assert "r1" in lines[2] and "x" in lines[2]
