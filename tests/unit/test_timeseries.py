"""Registry delta streams and the interval-bucketed recorder."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (TimeSeriesRecorder, diff_dumps,
                                  diff_sketch_states,
                                  read_timeseries_jsonl)


def registry_at(requests: int, latencies=()) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("http.requests").inc(requests)
    registry.gauge("http.inflight").set(requests % 5)
    hist = registry.histogram("http.request_ms")
    for value in latencies:
        hist.observe(value)
    return registry


class TestDiffDumps:
    def test_counter_delta_is_increment(self):
        first = registry_at(10).dump()
        second = registry_at(25).dump()
        delta = diff_dumps(second, first)
        assert delta["http.requests"]["value"] == 15

    def test_zero_counter_increment_omitted(self):
        dump = registry_at(10).dump()
        delta = diff_dumps(dump, dump)
        assert "http.requests" not in delta

    def test_gauge_always_spot_value(self):
        first = registry_at(10).dump()
        second = registry_at(12).dump()
        delta = diff_dumps(second, first)
        assert delta["http.inflight"]["value"] == 12 % 5

    def test_histogram_delta_counts_new_samples_only(self):
        first = registry_at(1, latencies=[5.0, 10.0]).dump()
        second = registry_at(1, latencies=[5.0, 10.0, 20.0, 40.0]).dump()
        delta = diff_dumps(second, first)
        assert delta["http.request_ms"]["count"] == 2
        assert delta["http.request_ms"]["total"] == pytest.approx(60.0)

    def test_unchanged_histogram_omitted(self):
        dump = registry_at(1, latencies=[5.0]).dump()
        assert "http.request_ms" not in diff_dumps(dump, dump)

    def test_no_previous_returns_full_dump(self):
        dump = registry_at(3, latencies=[1.0]).dump()
        delta = diff_dumps(dump, {})
        assert delta["http.requests"]["value"] == 3
        assert delta["http.request_ms"]["count"] == 1

    def test_deltas_merge_back_to_final_totals(self):
        """sum(deltas) == final dump for counters and histogram flows."""
        snapshots = [registry_at(n, latencies=[1.0] * n).dump()
                     for n in (3, 7, 7, 19)]
        merged = MetricsRegistry()
        previous = {}
        for dump in snapshots:
            merged.merge(diff_dumps(dump, previous))
            previous = dump
        final = snapshots[-1]
        assert merged.counter("http.requests").value \
            == final["http.requests"]["value"]
        assert merged.histogram("http.request_ms").count \
            == final["http.request_ms"]["count"]

    def test_delta_percentiles_reflect_interval_not_lifetime(self):
        slow_then_fast = MetricsRegistry()
        hist = slow_then_fast.histogram("lat")
        for _ in range(100):
            hist.observe(1000.0)      # a terrible first interval
        first = slow_then_fast.dump()
        for _ in range(100):
            hist.observe(1.0)         # a healthy second interval
        second = slow_then_fast.dump()
        interval = MetricsRegistry()
        interval.merge(diff_dumps(second, first))
        # the interval sketch must see only the fast samples
        assert interval.histogram("lat").percentile(99) < 50.0


class TestDiffSketchStates:
    def test_no_previous_copies_current(self):
        registry = registry_at(0, latencies=[3.0])
        state = registry.histogram("http.request_ms").dump()["sketch"]
        assert diff_sketch_states(state, None) == dict(state)

    def test_negative_bucket_deltas_clamped(self):
        current = {"relative_error": 0.01, "min_trackable": 1e-9,
                   "count": 5, "zero_count": 0, "total": 10.0,
                   "min": 1.0, "max": 4.0, "buckets": {"3": 5}}
        previous = dict(current, buckets={"3": 2, "9": 4}, count=6)
        delta = diff_sketch_states(current, previous)
        assert delta["buckets"] == {"3": 3}   # "9" went negative: clamped
        assert delta["count"] == 0            # count clamps at zero too


class TestRecorder:
    def test_buckets_merge_multiple_sources(self):
        recorder = TimeSeriesRecorder(interval_s=1.0)
        recorder.record({"http.requests":
                         {"kind": "counter", "value": 5}}, 0.4, source=1)
        recorder.record({"http.requests":
                         {"kind": "counter", "value": 7}}, 0.9, source=2)
        (index, bucket), = recorder.intervals()
        assert index == 0
        assert bucket.counter("http.requests").value == 12
        assert recorder.sources == {1, 2}

    def test_intervals_zero_filled(self):
        recorder = TimeSeriesRecorder(interval_s=1.0)
        recorder.record({"a": {"kind": "counter", "value": 1}}, 0.5)
        recorder.record({"a": {"kind": "counter", "value": 1}}, 3.5)
        intervals = recorder.intervals()
        assert [index for index, _ in intervals] == [0, 1, 2, 3]
        assert intervals[1][1].dump() == {}   # the gap is a real row

    def test_totals_counters_reconcile_gauges_take_latest(self):
        recorder = TimeSeriesRecorder(interval_s=1.0)
        recorder.record({"n": {"kind": "counter", "value": 2},
                         "level": {"kind": "gauge", "value": 9}}, 0.1)
        recorder.record({"n": {"kind": "counter", "value": 3},
                         "level": {"kind": "gauge", "value": 4}}, 1.1)
        totals = recorder.totals()
        assert totals.counter("n").value == 5
        assert totals.gauge("level").value == 4

    def test_series_extracts_one_metric(self):
        recorder = TimeSeriesRecorder(interval_s=1.0)
        recorder.record({"n": {"kind": "counter", "value": 2}}, 0.1)
        recorder.record({"n": {"kind": "counter", "value": 3}}, 2.1)
        assert recorder.series("n") == [2.0, 0.0, 3.0]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "ts.jsonl")
        with TimeSeriesRecorder(interval_s=0.5, path=path) as recorder:
            recorder.record({"n": {"kind": "counter", "value": 2}},
                            0.2, source=111)
            recorder.record({"n": {"kind": "counter", "value": 5}},
                            0.8, source=222)
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert [line["interval"] for line in lines] == [0, 1]
        rebuilt = read_timeseries_jsonl(path, interval_s=0.5)
        assert rebuilt.totals().counter("n").value == 7
        assert rebuilt.sources == {111, 222}

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval_s=0.0)

    def test_negative_t_s_lands_in_first_bucket(self):
        recorder = TimeSeriesRecorder(interval_s=1.0)
        assert recorder.record({"n": {"kind": "counter", "value": 1}},
                               -0.3) == 0
