"""Unit tests for the CacheCatalyst origin server."""

import pytest

from repro.core.etag_config import ETAG_CONFIG_HEADER, EtagConfig
from repro.html.parser import ResourceKind
from repro.html.rewrite import CACHE_SW_PATH, has_sw_registration
from repro.http.messages import Request
from repro.server.catalyst import CatalystConfig, CatalystServer
from repro.server.site import OriginSite
from repro.workload.sitegen import generate_site


@pytest.fixture
def site():
    return OriginSite(generate_site("https://c.example", seed=41))


@pytest.fixture
def server(site):
    return CatalystServer(site)


def config_of(response) -> EtagConfig:
    config = EtagConfig.from_headers(response.headers)
    assert config is not None
    return config


class TestHtmlStapling:
    def test_html_carries_etag_config(self, server):
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        config = config_of(resp)
        assert len(config) > 0

    def test_config_covers_html_and_css_refs(self, server, site):
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        config = config_of(resp)
        page = site.spec.index
        for url, spec in page.resources.items():
            if spec.dynamic:
                assert url not in config  # no stable tag to promise
            elif spec.discovered_via in ("html", "css"):
                assert url in config, f"{url} ({spec.discovered_via})"
            else:  # js-discovered: invisible to static stapling (§3)
                assert url not in config

    def test_config_tags_match_current_content(self, server, site):
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        config = config_of(resp)
        for url in config:
            assert config.etag_for(url).opaque == site.etag_of(url, 0.0)

    def test_sw_registration_injected(self, server):
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert has_sw_registration(resp.body.decode())

    def test_etag_reflects_injected_body(self, server):
        from repro.http.etag import etag_for_content
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert resp.etag.opaque == etag_for_content(resp.body).opaque

    def test_304_still_carries_config(self, server):
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        second = server.handle(
            Request(url="/index.html",
                    headers={"If-None-Match": first.headers["ETag"]}),
            at_time=1.0)
        assert second.status == 304
        assert ETAG_CONFIG_HEADER in second.headers

    def test_injection_disabled_by_config(self, site):
        server = CatalystServer(site, config=CatalystConfig(
            inject_sw=False))
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert not has_sw_registration(resp.body.decode())
        assert ETAG_CONFIG_HEADER in resp.headers  # stapling still on

    def test_max_entries_cap_prefers_blocking(self, site):
        server = CatalystServer(site, config=CatalystConfig(max_entries=3))
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        config = config_of(resp)
        assert len(config) == 3
        page = site.spec.index
        blocking = {u for u in config
                    if page.resources.get(u) is not None
                    and page.resources[u].blocking}
        assert blocking  # at least some capped entries are blocking ones


class TestCssStapling:
    def test_css_with_children_carries_config(self, server, site):
        page = site.spec.index
        css_url = next(url for url, s in page.resources.items()
                       if s.kind is ResourceKind.STYLESHEET and s.children)
        resp = server.handle(Request(url=css_url), at_time=0.0)
        config = config_of(resp)
        assert set(config) == set(page.resources[css_url].children)

    def test_css_transitive_disabled(self, site):
        server = CatalystServer(site, config=CatalystConfig(
            include_css_transitive=False))
        page = site.spec.index
        css_url = next(url for url, s in page.resources.items()
                       if s.kind is ResourceKind.STYLESHEET and s.children)
        resp = server.handle(Request(url=css_url), at_time=0.0)
        assert EtagConfig.from_headers(resp.headers) is None

    def test_plain_resource_has_no_config(self, server, site):
        page = site.spec.index
        image_url = next(url for url, s in page.resources.items()
                         if s.kind is ResourceKind.IMAGE)
        resp = server.handle(Request(url=image_url), at_time=0.0)
        assert EtagConfig.from_headers(resp.headers) is None


class TestServiceWorkerServing:
    def test_sw_script_served(self, server):
        resp = server.handle(Request(url=CACHE_SW_PATH), at_time=0.0)
        assert resp.status == 200
        assert resp.content_type == "application/javascript"
        assert b"X-Etag-Config" in resp.body

    def test_sw_script_cacheable(self, server):
        resp = server.handle(Request(url=CACHE_SW_PATH), at_time=0.0)
        assert resp.cache_control.max_age


class TestSessions:
    def test_session_urls_stapled_on_revisit(self, site):
        server = CatalystServer(site, config=CatalystConfig(
            use_sessions=True))
        page = site.spec.index
        js_urls = [url for url, s in page.resources.items()
                   if s.discovered_via == "js" and not s.dynamic]
        if not js_urls:
            pytest.skip("seed produced no js-discovered resources")
        headers = {"X-Client-Id": "u1"}
        # visit 1: html + the js-discovered resource
        server.handle(Request(url="/index.html", headers=headers), 0.0)
        server.handle(Request(url=js_urls[0], headers=headers), 0.1)
        # visit 2: the html map now includes the recorded URL
        resp = server.handle(Request(url="/index.html", headers=headers),
                             3600.0)
        config = config_of(resp)
        assert js_urls[0] in config

    def test_other_sessions_unaffected(self, site):
        server = CatalystServer(site, config=CatalystConfig(
            use_sessions=True))
        page = site.spec.index
        js_urls = [url for url, s in page.resources.items()
                   if s.discovered_via == "js" and not s.dynamic]
        if not js_urls:
            pytest.skip("seed produced no js-discovered resources")
        server.handle(Request(url="/index.html",
                              headers={"X-Client-Id": "u1"}), 0.0)
        server.handle(Request(url=js_urls[0],
                              headers={"X-Client-Id": "u1"}), 0.1)
        resp = server.handle(Request(url="/index.html",
                                     headers={"X-Client-Id": "u2"}), 1.0)
        assert js_urls[0] not in config_of(resp)


class TestCrossOrigin:
    def test_oracle_enables_third_party_stapling(self):
        """With the §6 oracle, cross-origin URLs get tokens too."""
        from repro.workload.sitegen import (PageSpec, ResourceSpec,
                                            SiteSpec)
        from repro.workload.headers_model import HeaderPolicy
        third_party = "https://cdn.example/lib.js"
        spec = ResourceSpec(
            url=third_party, kind=ResourceKind.SCRIPT, size_bytes=100,
            policy=HeaderPolicy(mode="no-cache"), change_period_s=1e9,
            content_seed=1, discovered_via="html", blocking=True,
            fixed_change_times=())
        page = PageSpec(url="/index.html", html_size_bytes=500,
                        html_change_period_s=1e9, html_content_seed=2,
                        html_refs=(third_party,),
                        resources={third_party: spec},
                        html_fixed_change_times=())
        site_spec = SiteSpec(origin="https://main.example", seed=1,
                             pages={"/index.html": page})
        site = OriginSite(site_spec)

        with_oracle = CatalystServer(
            site, third_party_oracle=lambda url, t: "cdn-tag-123")
        resp = with_oracle.handle(Request(url="/index.html"), at_time=0.0)
        config = config_of(resp)
        assert config.etag_for(third_party).opaque == "cdn-tag-123"

        without = CatalystServer(site)
        resp = without.handle(Request(url="/index.html"), at_time=0.0)
        config2 = EtagConfig.from_headers(resp.headers)
        assert config2 is None or third_party not in config2


class TestOverheadAccounting:
    def test_config_bytes_accumulate(self, server):
        server.handle(Request(url="/index.html"), at_time=0.0)
        assert server.config_bytes_emitted > 0
        assert server.config_entry_counts and \
            server.config_entry_counts[0] > 0


class TestCacheStatus:
    """The RFC 9211-style ``Cache-Status`` response header (PR 9)."""

    def enabled(self, site, **overrides):
        config = CatalystConfig(emit_cache_status=True, **overrides)
        return CatalystServer(site, config)

    def test_absent_by_default(self, server):
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert resp.headers.get("Cache-Status") is None

    def test_miss_then_hit_across_two_requests(self, site):
        server = self.enabled(site)
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        status = first.headers.get("Cache-Status")
        assert "repro-render; fwd=miss" in status
        second = server.handle(Request(url="/index.html"), at_time=1.0)
        status = second.headers.get("Cache-Status")
        assert "repro-render; hit" in status
        assert "repro-map; hit" in status

    def test_first_map_build_labelled(self, site):
        server = self.enabled(site)
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert "repro-map; fwd=miss; detail=build" \
            in resp.headers.get("Cache-Status")

    def test_bypass_when_hot_path_cache_disabled(self, site):
        server = self.enabled(site, hot_path_cache=False)
        resp = server.handle(Request(url="/index.html"), at_time=0.0)
        assert "repro-render; fwd=bypass" \
            in resp.headers.get("Cache-Status")

    def test_revalidation_304_adds_origin_member(self, site):
        server = self.enabled(site)
        first = server.handle(Request(url="/index.html"), at_time=0.0)
        etag = first.headers.get("ETag")
        assert etag is not None
        request = Request(url="/index.html",
                          headers={"If-None-Match": etag})
        revalidated = server.handle(request, at_time=1.0)
        assert revalidated.status == 304
        assert "repro-origin; hit; detail=revalidated" \
            in revalidated.headers.get("Cache-Status")

    def test_byte_identity_when_disabled(self, site):
        """The default-off gate: enabling tracing/fleet must not change
        what a plain DES-path server emits."""
        plain = CatalystServer(site)
        resp = plain.handle(Request(url="/index.html"), at_time=0.0)
        assert all(name.lower() != "cache-status"
                   for name, _ in resp.headers.items())
