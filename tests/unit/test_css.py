"""Unit tests for CSS reference extraction."""

import pytest

from repro.html.css import extract_css_refs, extract_css_urls


class TestUrls:
    @pytest.mark.parametrize("css,expected", [
        ("a{background:url(x.png)}", ["x.png"]),
        ("a{background:url('x.png')}", ["x.png"]),
        ('a{background:url("x.png")}', ["x.png"]),
        ("a{background: url( x.png )}", ["x.png"]),
        ("a{background:URL(x.png)}", ["x.png"]),
    ])
    def test_quoting_variants(self, css, expected):
        assert extract_css_urls(css) == expected

    def test_multiple_in_order(self):
        css = "a{background:url(1.png)} b{background:url(2.png)}"
        assert extract_css_urls(css) == ["1.png", "2.png"]

    def test_duplicates_removed(self):
        css = "a{background:url(x.png)} b{background:url(x.png)}"
        assert extract_css_urls(css) == ["x.png"]

    def test_data_uris_skipped(self):
        assert extract_css_urls(
            "a{background:url(data:image/png;base64,AAA)}") == []

    def test_comments_ignored(self):
        assert extract_css_urls("/* url(commented.png) */") == []

    def test_multiline_comment_spanning(self):
        css = "/* start\nurl(hidden.png)\nend */ a{background:url(real.png)}"
        assert extract_css_urls(css) == ["real.png"]


class TestImports:
    @pytest.mark.parametrize("css", [
        "@import 'other.css';",
        '@import "other.css";',
        "@import url(other.css);",
        "@import url('other.css');",
        "@IMPORT 'other.css';",
    ])
    def test_import_forms(self, css):
        (ref,) = extract_css_refs(css)
        assert ref.url == "other.css"
        assert ref.kind == "import"

    def test_import_not_double_counted_as_url(self):
        refs = extract_css_refs("@import url(a.css); b{x:url(img.png)}")
        assert [(r.url, r.kind) for r in refs] == [
            ("a.css", "import"), ("img.png", "image")]


class TestFonts:
    def test_font_face_src_is_font(self):
        css = "@font-face { font-family: X; src: url(f.woff2); }"
        (ref,) = extract_css_refs(css)
        assert ref.kind == "font"

    def test_url_outside_font_face_is_image(self):
        css = ("@font-face { src: url(f.woff2); } "
               "a { background: url(i.png); }")
        kinds = {r.url: r.kind for r in extract_css_refs(css)}
        assert kinds == {"f.woff2": "font", "i.png": "image"}

    def test_empty_css(self):
        assert extract_css_refs("") == []
