"""Unit tests for RFC 9111 cache decisions."""

import pytest

from repro.cache.entry import CacheEntry
from repro.cache.policy import (Disposition, current_age, evaluate,
                                freshness_lifetime, may_store)
from repro.http.dates import format_http_date
from repro.http.messages import Request, Response


def entry_for(headers: dict, body: bytes = b"x", url: str = "/r",
              request_time: float | None = None,
              response_time: float = 0.0) -> CacheEntry:
    if request_time is None:
        request_time = response_time
    return CacheEntry(url=url, response=Response(headers=headers, body=body),
                      request_time=request_time,
                      response_time=response_time)


class TestMayStore:
    def test_plain_200_get_storable(self):
        assert may_store(Request(), Response())

    def test_no_store_response_not_storable(self):
        assert not may_store(Request(),
                             Response(headers={"Cache-Control": "no-store"}))

    def test_no_store_request_not_storable(self):
        assert not may_store(Request(headers={"Cache-Control": "no-store"}),
                             Response())

    def test_post_not_storable(self):
        assert not may_store(Request(method="POST"), Response())

    def test_vary_star_not_storable(self):
        assert not may_store(Request(), Response(headers={"Vary": "*"}))

    def test_404_storable(self):
        assert may_store(Request(), Response(status=404))

    def test_unlisted_status_needs_explicit_freshness(self):
        assert not may_store(Request(), Response(status=302))
        assert may_store(Request(), Response(
            status=302, headers={"Cache-Control": "max-age=60"}))

    def test_no_cache_is_still_storable(self):
        assert may_store(Request(),
                         Response(headers={"Cache-Control": "no-cache"}))


class TestFreshnessLifetime:
    def test_max_age_wins(self):
        resp = Response(headers={"Cache-Control": "max-age=120"})
        assert freshness_lifetime(resp) == 120.0

    def test_s_maxage_only_for_shared(self):
        resp = Response(headers={
            "Cache-Control": "max-age=60, s-maxage=600"})
        assert freshness_lifetime(resp, shared=False) == 60.0
        assert freshness_lifetime(resp, shared=True) == 600.0

    def test_expires_minus_date(self):
        resp = Response(headers={
            "Date": format_http_date(1000.0),
            "Expires": format_http_date(1300.0)})
        assert freshness_lifetime(resp) == 300.0

    def test_invalid_expires_means_expired(self):
        resp = Response(headers={
            "Date": format_http_date(1000.0), "Expires": "0"})
        assert freshness_lifetime(resp) == 0.0

    def test_heuristic_from_last_modified(self):
        resp = Response(headers={
            "Date": format_http_date(10_000.0),
            "Last-Modified": format_http_date(0.0)})
        assert freshness_lifetime(resp) == pytest.approx(1000.0)

    def test_no_information_is_none(self):
        assert freshness_lifetime(Response()) is None


class TestCurrentAge:
    def test_resident_time(self):
        entry = entry_for({}, response_time=100.0)
        assert current_age(entry, now=150.0) == pytest.approx(50.0)

    def test_age_header_added(self):
        entry = entry_for({"Age": "30"}, response_time=100.0)
        assert current_age(entry, now=150.0) == pytest.approx(80.0)

    def test_response_delay_counted(self):
        entry = entry_for({}, request_time=90.0, response_time=100.0)
        assert current_age(entry, now=100.0) == pytest.approx(10.0)


class TestEvaluate:
    def test_miss_when_nothing_stored(self):
        decision = evaluate(Request(), None, now=0.0)
        assert decision.disposition is Disposition.MISS
        assert decision.needs_network

    def test_fresh_within_max_age(self):
        entry = entry_for({"Cache-Control": "max-age=100"})
        decision = evaluate(Request(url="/r"), entry, now=50.0)
        assert decision.disposition is Disposition.FRESH
        assert not decision.needs_network

    def test_stale_after_max_age(self):
        entry = entry_for({"Cache-Control": "max-age=100"})
        decision = evaluate(Request(url="/r"), entry, now=150.0)
        assert decision.disposition is Disposition.STALE

    def test_no_cache_always_revalidates(self):
        entry = entry_for({"Cache-Control": "no-cache, max-age=9999"})
        decision = evaluate(Request(url="/r"), entry, now=1.0)
        assert decision.disposition is Disposition.STALE

    def test_request_no_cache_forces_revalidation(self):
        entry = entry_for({"Cache-Control": "max-age=9999"})
        request = Request(url="/r", headers={"Cache-Control": "no-cache"})
        assert evaluate(request, entry,
                        now=1.0).disposition is Disposition.STALE

    def test_request_max_age_narrows_freshness(self):
        entry = entry_for({"Cache-Control": "max-age=1000"})
        request = Request(url="/r", headers={"Cache-Control": "max-age=10"})
        assert evaluate(request, entry,
                        now=50.0).disposition is Disposition.STALE

    def test_no_freshness_info_revalidates(self):
        entry = entry_for({})
        assert evaluate(Request(url="/r"), entry,
                        now=0.0).disposition is Disposition.STALE

    def test_unsafe_method_uncacheable(self):
        entry = entry_for({"Cache-Control": "max-age=100"})
        assert evaluate(Request(method="POST"), entry,
                        now=0.0).disposition is Disposition.UNCACHEABLE

    def test_no_store_entry_behaves_as_miss(self):
        entry = entry_for({"Cache-Control": "no-store"})
        assert evaluate(Request(url="/r"), entry,
                        now=0.0).disposition is Disposition.MISS

    def test_heuristic_freshness_applies(self):
        entry = entry_for({
            "Date": format_http_date(10_000.0),
            "Last-Modified": format_http_date(0.0)},
            response_time=0.0)
        # heuristic lifetime 1000 s; age 500 -> fresh
        assert evaluate(Request(url="/r"), entry,
                        now=500.0).disposition is Disposition.FRESH
        fresh_expired = evaluate(Request(url="/r"), entry, now=1500.0)
        assert fresh_expired.disposition is Disposition.STALE

    def test_decision_carries_diagnostics(self):
        entry = entry_for({"Cache-Control": "max-age=100"})
        decision = evaluate(Request(url="/r"), entry, now=30.0)
        assert decision.lifetime_s == 100.0
        assert decision.age_s == pytest.approx(30.0)


class TestFreshenFrom304:
    def test_headers_updated_body_kept(self):
        entry = entry_for({"Cache-Control": "max-age=1", "ETag": '"v1"'},
                          body=b"payload")
        validated = Response(status=304, headers={
            "Cache-Control": "max-age=100", "ETag": '"v1"',
            "X-Etag-Config": "{}"})
        entry.freshen_from_304(validated, request_time=50.0,
                               response_time=51.0)
        assert entry.response.body == b"payload"
        assert entry.response.headers["Cache-Control"] == "max-age=100"
        assert entry.response.headers["X-Etag-Config"] == "{}"
        assert entry.response_time == 51.0

    def test_content_length_not_clobbered(self):
        entry = entry_for({"Content-Length": "7"}, body=b"payload")
        entry.freshen_from_304(
            Response(status=304, headers={"Content-Length": "0"}),
            request_time=1.0, response_time=1.0)
        assert entry.response.headers["Content-Length"] == "7"

    def test_times_must_be_ordered(self):
        with pytest.raises(ValueError):
            CacheEntry(url="/r", response=Response(),
                       request_time=5.0, response_time=1.0)
