"""Unit tests for the statistics helpers."""

import pytest

from repro.experiments.stats import (Summary, bootstrap_ci, mean, median,
                                     percentile, stdev, summarize)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_stdev_known_value(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == \
            pytest.approx(2.138, abs=0.001)

    def test_stdev_degenerate(self):
        assert stdev([5.0]) == 0.0
        assert stdev([]) == 0.0


class TestPercentile:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 90) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_unsorted_input_ok(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0


class TestBootstrap:
    def test_deterministic(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(values, seed=1) == bootstrap_ci(values, seed=1)

    def test_different_seeds_differ(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(values, seed=1) != bootstrap_ci(values, seed=2)

    def test_contains_the_mean_usually(self):
        values = [float(i) for i in range(30)]
        low, high = bootstrap_ci(values)
        assert low <= mean(values) <= high

    def test_tightens_with_n(self):
        wide = bootstrap_ci([0.0, 10.0] * 3, seed=3)
        narrow = bootstrap_ci([0.0, 10.0] * 50, seed=3)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_single_value_collapses(self):
        assert bootstrap_ci([4.2]) == (4.2, 4.2)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestSummarize:
    def test_fields_consistent(self):
        values = [float(i) for i in range(1, 21)]
        summary = summarize(values)
        assert summary.n == 20
        assert summary.mean == mean(values)
        assert summary.median == median(values)
        assert summary.p10 <= summary.median <= summary.p90
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_format_readable(self):
        text = summarize([1.0, 2.0, 3.0]).format(unit="ms")
        assert "mean" in text and "ms" in text and "n=3" in text
