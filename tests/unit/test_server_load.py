"""Unit tests for the server-load experiment."""

import pytest

from repro.experiments.server_load import (ServerLoadResult,
                                           format_server_load,
                                           run_server_load)
from repro.workload.corpus import make_corpus


@pytest.fixture(scope="module")
def results():
    return run_server_load(corpus=make_corpus(size=6, seed=3), sites=2,
                           visit_times_s=(0.0, 3600.0, 86400.0))


class TestServerLoad:
    def test_all_modes_present(self, results):
        assert {r.mode for r in results} == {
            "no-cache", "standard", "catalyst", "catalyst-sessions"}

    def test_no_cache_has_no_304s(self, results):
        by_mode = {r.mode: r for r in results}
        assert by_mode["no-cache"].not_modified == 0

    def test_catalyst_reduces_origin_requests(self, results):
        by_mode = {r.mode: r for r in results}
        assert by_mode["catalyst"].origin_requests < \
            by_mode["standard"].origin_requests

    def test_only_catalyst_modes_staple(self, results):
        for result in results:
            if result.mode.startswith("catalyst"):
                assert result.maps_stapled > 0
                assert result.config_bytes > 0
            else:
                assert result.maps_stapled == 0
                assert result.config_bytes == 0

    def test_maps_stapled_once_per_html_visit(self, results):
        by_mode = {r.mode: r for r in results}
        # 2 sites x 3 visits = 6 HTML responses, each stapled
        assert by_mode["catalyst"].maps_stapled == 6

    def test_formatting(self, results):
        text = format_server_load(results)
        assert "origin requests" in text
        assert "vs standard" in text

    def test_deterministic(self):
        corpus = make_corpus(size=4, seed=9)
        a = run_server_load(corpus=corpus, sites=2,
                            visit_times_s=(0.0, 3600.0))
        b = run_server_load(corpus=corpus, sites=2,
                            visit_times_s=(0.0, 3600.0))
        assert a == b
