"""Unit tests for the server-load experiment."""

import pytest

from repro.experiments.server_load import (ServerLoadResult,
                                           format_server_load,
                                           run_server_load)
from repro.workload.corpus import make_corpus


@pytest.fixture(scope="module")
def results():
    return run_server_load(corpus=make_corpus(size=6, seed=3), sites=2,
                           visit_times_s=(0.0, 3600.0, 86400.0))


class TestServerLoad:
    def test_all_modes_present(self, results):
        assert {r.mode for r in results} == {
            "no-cache", "standard", "catalyst", "catalyst-sessions"}

    def test_no_cache_has_no_304s(self, results):
        by_mode = {r.mode: r for r in results}
        assert by_mode["no-cache"].not_modified == 0

    def test_catalyst_reduces_origin_requests(self, results):
        by_mode = {r.mode: r for r in results}
        assert by_mode["catalyst"].origin_requests < \
            by_mode["standard"].origin_requests

    def test_only_catalyst_modes_staple(self, results):
        for result in results:
            if result.mode.startswith("catalyst"):
                assert result.maps_stapled > 0
                assert result.config_bytes > 0
            else:
                assert result.maps_stapled == 0
                assert result.config_bytes == 0

    def test_maps_stapled_once_per_html_visit(self, results):
        by_mode = {r.mode: r for r in results}
        # 2 sites x 3 visits = 6 HTML responses, each stapled
        assert by_mode["catalyst"].maps_stapled == 6

    def test_formatting(self, results):
        text = format_server_load(results)
        assert "origin requests" in text
        assert "vs standard" in text

    def test_deterministic(self):
        corpus = make_corpus(size=4, seed=9)
        a = run_server_load(corpus=corpus, sites=2,
                            visit_times_s=(0.0, 3600.0))
        b = run_server_load(corpus=corpus, sites=2,
                            visit_times_s=(0.0, 3600.0))
        assert a == b


class TestHotPath:
    """Structure checks for the wall-clock hot-path profile (the >=3x
    speedup assertion lives in the `bench` lane, not tier-1)."""

    @pytest.fixture(scope="class")
    def hot(self):
        from repro.experiments.server_load import run_hot_path
        return run_hot_path(corpus=make_corpus(size=4, seed=5), sites=1,
                            repeats=3, seed=2)

    def test_request_accounting(self, hot):
        assert hot.sites == 1
        assert hot.cached.requests == 4 == hot.uncached.requests

    def test_byte_identical(self, hot):
        assert hot.byte_identical

    def test_cached_side_amortizes_work(self, hot):
        # one parse per document version vs one per request
        assert hot.cached.html_parses == 1
        assert hot.uncached.html_parses == 4
        assert hot.cached.render_hits == 3
        assert hot.uncached.render_hits == 0
        assert hot.cached.map_builds < hot.uncached.map_builds

    def test_latency_and_throughput_populated(self, hot):
        for side in (hot.cached, hot.uncached):
            assert side.warm_rps > 0
            assert side.warm_p50_us > 0
            assert side.warm_p99_us >= side.warm_p50_us
            assert side.cold_p50_us > 0
        assert hot.warm_speedup > 0

    def test_formatting_and_payload(self, hot):
        from repro.experiments.server_load import (format_hot_path,
                                                   hot_path_bench_payload)
        text = format_hot_path(hot)
        assert "warm req/s" in text and "speedup" in text
        payload = hot_path_bench_payload(hot)
        assert payload["bench"] == "server_hot_path"
        assert payload["byte_identical"] is True
        assert payload["throughput_rps"]["warm_speedup"] == round(
            hot.warm_speedup, 2)
        assert payload["cached"]["counters"]["html_parses"] == 1
