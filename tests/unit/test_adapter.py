"""Unit tests for the sim-time -> wall-time handler adapter."""

import itertools

from repro.http.messages import Request, Response
from repro.server.adapter import as_async_handler


class FakeServer:
    def __init__(self):
        self.calls: list[float] = []

    def handle(self, request: Request, at_time: float) -> Response:
        self.calls.append(at_time)
        return Response(body=f"{at_time:.3f}".encode())


class TestAdapter:
    def test_epoch_starts_at_zero(self):
        ticks = iter([100.0, 100.0])
        server = FakeServer()
        handler = as_async_handler(server, clock=lambda: next(ticks))
        handler(Request(url="/"))
        assert server.calls == [0.0]

    def test_elapsed_time_passed_through(self):
        ticks = iter([50.0, 52.5])
        server = FakeServer()
        handler = as_async_handler(server, clock=lambda: next(ticks))
        handler(Request(url="/"))
        assert server.calls == [2.5]

    def test_time_scale_multiplies(self):
        ticks = iter([0.0, 2.0])
        server = FakeServer()
        handler = as_async_handler(server, clock=lambda: next(ticks),
                                   time_scale=3600.0)
        handler(Request(url="/"))
        assert server.calls == [7200.0]

    def test_monotone_over_calls(self):
        counter = itertools.count()
        server = FakeServer()
        handler = as_async_handler(server,
                                   clock=lambda: float(next(counter)))
        for _ in range(4):
            handler(Request(url="/"))
        assert server.calls == sorted(server.calls)

    def test_response_passes_through(self):
        ticks = iter([0.0, 1.0])
        handler = as_async_handler(FakeServer(),
                                   clock=lambda: next(ticks))
        response = handler(Request(url="/"))
        assert response.body == b"1.000"
