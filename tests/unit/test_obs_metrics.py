"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import registry

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("pool")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.snapshot() == 2

    def test_histogram_stats(self):
        hist = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.mean() == pytest.approx(2.5)
        assert hist.percentile(50) == pytest.approx(2.5)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert "p99" in snap

    def test_histogram_empty_percentile_is_zero(self):
        hist = Histogram("empty")
        assert hist.percentile(99) == 0.0
        assert hist.mean() == 0.0
        assert "p50" not in hist.snapshot()

    def test_histogram_ring_bounds_window(self):
        hist = Histogram("ring", max_samples=3)
        for value in (10.0, 20.0, 30.0, 40.0):
            hist.observe(value)
        # count/total track everything; the window holds the newest 3
        assert hist.count == 4
        assert sorted(hist.samples) == [20.0, 30.0, 40.0]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_absorb_legacy_snapshot(self):
        reg = MetricsRegistry()
        reg.absorb("server", {"render_hits": 7, "mean_ns": 1.5,
                              "label": "ignored", "flag": True})
        snap = reg.snapshot()
        assert snap["server.render_hits"] == 7
        assert snap["server.mean_ns"] == 1.5
        assert "server.label" not in snap
        assert "server.flag" not in snap  # bools are not metrics

    def test_absorb_perf_counters_snapshot(self):
        from repro.perf import PerfCounters
        perf = PerfCounters()
        perf.record_handle_ns(100)
        perf.render_hits = 3
        reg = MetricsRegistry()
        reg.absorb("catalyst", perf.snapshot())
        assert reg.snapshot()["catalyst.render_hits"] == 3
        assert "catalyst" not in reg  # only prefixed keys exist

    def test_snapshot_sorted_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        assert list(reg.snapshot()) == ["a", "b"]
        reg.reset()
        assert len(reg) == 0

    def test_contains_and_iter(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        assert "x" in reg and "y" not in reg
        assert list(reg) == [counter]

    def test_default_registry_is_shared(self):
        assert registry() is registry()
