"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import registry

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("pool")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.snapshot() == 2

    def test_histogram_stats(self):
        hist = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.mean() == pytest.approx(2.5)
        assert hist.percentile(50) == pytest.approx(2.5)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert "p99" in snap

    def test_histogram_empty_percentile_is_zero(self):
        hist = Histogram("empty")
        assert hist.percentile(99) == 0.0
        assert hist.mean() == 0.0
        # snapshots always carry percentile keys (0.0 when empty) so
        # downstream consumers (/__repro/stats) see a stable shape
        snap = hist.snapshot()
        assert snap["p50"] == snap["p90"] == snap["p99"] == 0.0

    def test_histogram_ring_bounds_window(self):
        hist = Histogram("ring", max_samples=3)
        for value in (10.0, 20.0, 30.0, 40.0):
            hist.observe(value)
        # count/total track everything; the window holds the newest 3
        assert hist.count == 4
        assert sorted(hist.samples) == [20.0, 30.0, 40.0]

    def test_histogram_exact_until_ring_wraps(self):
        hist = Histogram("two-tier", max_samples=4)
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.exact
        assert hist.percentile(50) == pytest.approx(2.0)

    def test_histogram_memory_stays_bounded_past_cap(self):
        # The satellite regression: unbounded sample retention is gone.
        # Past the cap, percentiles route through the sketch and stay
        # within its documented relative error of the true value.
        hist = Histogram("bounded", max_samples=100)
        n = 10_000
        for i in range(n):
            hist.observe(float(i + 1))
        assert len(hist.samples) == 100
        assert not hist.exact
        assert hist.count == n
        error = hist.sketch.relative_error
        for q, truth in ((50, n * 0.50), (90, n * 0.90), (99, n * 0.99)):
            assert hist.percentile(q) == pytest.approx(
                truth, rel=2 * error + 0.01)

    def test_histogram_merge_matches_pooled(self):
        pooled = Histogram("pooled")
        a, b = Histogram("a"), Histogram("b")
        for i in range(50):
            value = float(1 + (i * 37) % 100)
            pooled.observe(value)
            (a if i % 2 else b).observe(value)
        a.merge(b)
        assert a.count == pooled.count
        # both still inside the raw ring -> exactly equal percentiles
        for q in (50, 90, 99):
            assert a.percentile(q) == pooled.percentile(q)

    def test_histogram_merge_accepts_dump(self):
        a, b = Histogram("a"), Histogram("b")
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b.dump())
        assert a.count == 2
        assert a.percentile(100) == 3.0

    def test_histogram_dump_roundtrip_is_portable(self):
        import json
        hist = Histogram("h", max_samples=8)
        for i in range(20):
            hist.observe(float(i + 1))
        dump = json.loads(json.dumps(hist.dump()))  # JSON-safe
        other = Histogram("other")
        other.merge(dump)
        assert other.count == 20
        assert other.percentile(99) == pytest.approx(20.0, rel=0.03)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_absorb_legacy_snapshot(self):
        reg = MetricsRegistry()
        reg.absorb("server", {"render_hits": 7, "mean_ns": 1.5,
                              "label": "ignored", "flag": True})
        snap = reg.snapshot()
        assert snap["server.render_hits"] == 7
        assert snap["server.mean_ns"] == 1.5
        assert "server.label" not in snap
        assert "server.flag" not in snap  # bools are not metrics

    def test_absorb_perf_counters_snapshot(self):
        from repro.perf import PerfCounters
        perf = PerfCounters()
        perf.record_handle_ns(100)
        perf.render_hits = 3
        reg = MetricsRegistry()
        reg.absorb("catalyst", perf.snapshot())
        assert reg.snapshot()["catalyst.render_hits"] == 3
        assert "catalyst" not in reg  # only prefixed keys exist

    def test_snapshot_sorted_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        assert list(reg.snapshot()) == ["a", "b"]
        reg.reset()
        assert len(reg) == 0

    def test_contains_and_iter(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        assert "x" in reg and "y" not in reg
        assert list(reg) == [counter]

    def test_default_registry_is_shared(self):
        assert registry() is registry()


class TestMergeEdgeCases:
    """The worker-dump merge path under awkward inputs (PR 9)."""

    def test_gauge_merge_sums_across_shards(self):
        # fleet semantics: per-worker inflight gauges sum to fleet
        # inflight — a merge is a fan-in of disjoint shards, not a
        # later reading of the same gauge
        merged = MetricsRegistry()
        for inflight in (3, 5, 4):
            worker = MetricsRegistry()
            worker.gauge("http.inflight").set(inflight)
            merged.merge(worker.dump())
        assert merged.gauge("http.inflight").value == 12

    def test_histogram_merge_when_source_ring_wrapped(self):
        source = Histogram("lat", max_samples=4)
        for value in range(10):          # wraps the 4-slot ring
            source.observe(float(value))
        sink = Histogram("lat", max_samples=4)
        sink.observe(100.0)
        sink.merge(source.dump())
        # count/total are exact even though raw samples were dropped
        assert sink.count == 11
        assert sink.total == pytest.approx(100.0 + sum(range(10)))
        assert len(sink.samples) <= 4    # ring cap respected
        # percentiles fall back to the merged sketch, not the ring
        assert sink.percentile(99) >= 9.0

    def test_histogram_merge_respects_sink_ring_room(self):
        sink = Histogram("lat", max_samples=3)
        sink.observe(1.0)
        source = Histogram("lat", max_samples=8)
        for value in (2.0, 3.0, 4.0, 5.0):
            source.observe(value)
        sink.merge(source.dump())
        assert len(sink.samples) == 3
        assert sink.count == 5

    def test_old_schema_histogram_dump_fails_loudly(self):
        sink = Histogram("lat")
        sink.observe(1.0)
        legacy = {"kind": "histogram", "count": 5, "total": 15.0,
                  "samples": [1.0] * 5}   # pre-sketch schema: no sketch
        with pytest.raises(ValueError, match="incompatible dump schema"):
            sink.merge(legacy)

    def test_failed_merge_does_not_corrupt_sink(self):
        sink = Histogram("lat")
        sink.observe(1.0)
        before = sink.dump()
        with pytest.raises(ValueError):
            sink.merge({"kind": "histogram", "count": 5, "total": 15.0,
                        "samples": []})  # missing sketch
        assert sink.dump() == before     # validate-then-mutate held

    def test_registry_merge_rejects_valueless_counter(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(1)
        with pytest.raises(ValueError, match="incompatible dump schema"):
            registry.merge({"n": {"kind": "counter"}})
        assert registry.counter("n").value == 1

    def test_registry_merge_rejects_valueless_gauge(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="incompatible dump schema"):
            registry.merge({"g": {"kind": "gauge"}})

    def test_sketch_geometry_mismatch_rejected_before_mutation(self):
        from repro.obs.sketch import LogHistogram
        sink = Histogram("lat")
        sink.observe(1.0)
        before = sink.dump()
        foreign = {"kind": "histogram", "count": 1, "total": 2.0,
                   "max_samples": 512, "samples": [2.0],
                   "sketch": LogHistogram(relative_error=0.10).to_dict()}
        with pytest.raises(ValueError):
            sink.merge(foreign)
        assert sink.dump() == before
