"""Unit tests for the browser HTTP-cache fetch layer."""

import pytest

from repro.browser.cache_layer import BrowserCache
from repro.http.etag import etag_for_content
from repro.http.messages import Request, Response


def response(body: bytes = b"x", cache_control: str = "max-age=100",
             etag: bool = True) -> Response:
    headers = {}
    if cache_control:
        headers["Cache-Control"] = cache_control
    if etag:
        headers["ETag"] = str(etag_for_content(body))
    return Response(headers=headers, body=body)


class TestPlan:
    def test_miss_sends_plain_request(self):
        cache = BrowserCache()
        plan = cache.plan(Request(url="/a"), now=0.0)
        assert not plan.is_local_hit
        assert not plan.is_revalidation
        assert plan.outgoing.headers.get("If-None-Match") is None

    def test_fresh_hit_is_local(self):
        cache = BrowserCache()
        request = Request(url="/a")
        cache.absorb(cache.plan(request, 0.0), request, response(), 0.0, 0.0)
        plan = cache.plan(request, now=50.0)
        assert plan.is_local_hit
        assert plan.local_response.body == b"x"
        assert cache.fresh_hits == 1

    def test_stale_becomes_conditional(self):
        cache = BrowserCache()
        request = Request(url="/a")
        stored = response(cache_control="max-age=10")
        cache.absorb(cache.plan(request, 0.0), request, stored, 0.0, 0.0)
        plan = cache.plan(request, now=100.0)
        assert plan.is_revalidation
        assert plan.outgoing.headers["If-None-Match"] == \
            stored.headers["ETag"]
        assert "If-Modified-Since" not in plan.outgoing.headers  # none stored
        assert cache.revalidations == 1

    def test_no_cache_always_conditional(self):
        cache = BrowserCache()
        request = Request(url="/a")
        cache.absorb(cache.plan(request, 0.0), request,
                     response(cache_control="no-cache"), 0.0, 0.0)
        assert cache.plan(request, now=0.5).is_revalidation

    def test_no_validators_means_plain_refetch(self):
        cache = BrowserCache()
        request = Request(url="/a")
        stored = response(cache_control="max-age=1", etag=False)
        cache.absorb(cache.plan(request, 0.0), request, stored, 0.0, 0.0)
        plan = cache.plan(request, now=100.0)
        assert not plan.is_local_hit
        assert not plan.is_revalidation


class TestAbsorb:
    def test_200_stored(self):
        cache = BrowserCache()
        request = Request(url="/a")
        plan = cache.plan(request, 0.0)
        cache.absorb(plan, request, response(), 0.0, 0.1)
        assert cache.entry_count == 1

    def test_304_resurrects_body(self):
        cache = BrowserCache()
        request = Request(url="/a")
        stored = response(body=b"cached-bytes", cache_control="no-cache")
        cache.absorb(cache.plan(request, 0.0), request, stored, 0.0, 0.0)
        plan = cache.plan(request, now=10.0)
        not_modified = Response(status=304, headers={
            "ETag": stored.headers["ETag"]})
        usable = cache.absorb(plan, request, not_modified, 10.0, 10.1)
        assert usable.status == 200
        assert usable.body == b"cached-bytes"
        assert cache.validations_not_modified == 1

    def test_304_freshens_metadata(self):
        cache = BrowserCache()
        request = Request(url="/a")
        stored = response(cache_control="max-age=10")
        cache.absorb(cache.plan(request, 0.0), request, stored, 0.0, 0.0)
        plan = cache.plan(request, now=100.0)
        not_modified = Response(status=304, headers={
            "Cache-Control": "max-age=10",
            "ETag": stored.headers["ETag"]})
        cache.absorb(plan, request, not_modified, 100.0, 100.0)
        # entry re-fresh: now fresh again for another 10 s
        assert cache.plan(request, now=105.0).is_local_hit

    def test_404_invalidates(self):
        cache = BrowserCache()
        request = Request(url="/a")
        cache.absorb(cache.plan(request, 0.0), request, response(), 0.0, 0.0)
        plan = cache.plan(request, now=200.0)
        cache.absorb(plan, request, Response(status=404), 200.0, 200.0)
        assert cache.entry_count == 0

    def test_store_pushed(self):
        cache = BrowserCache()
        cache.store_pushed(Request(url="/p"), response(), now=1.0)
        assert cache.plan(Request(url="/p"), now=2.0).is_local_hit

    def test_store_pushed_ignores_errors(self):
        cache = BrowserCache()
        cache.store_pushed(Request(url="/p"), Response(status=500), now=1.0)
        assert cache.entry_count == 0
