"""Unit tests for page-load metrics."""

from repro.browser.metrics import FetchEvent, FetchSource, PageLoadResult
from repro.html.parser import ResourceKind


def event(url="/a", source=FetchSource.NETWORK, start=0.0, end=0.1,
          bytes_down=100, rtts=1.0) -> FetchEvent:
    return FetchEvent(url=url, kind=ResourceKind.IMAGE, source=source,
                      start_s=start, end_s=end, bytes_down=bytes_down,
                      rtts_paid=rtts)


def result(events) -> PageLoadResult:
    return PageLoadResult(url="/index.html", mode="test", start_s=0.0,
                          onload_s=1.0, events=events)


class TestPlt:
    def test_plt_is_onload_minus_start(self):
        r = PageLoadResult(url="/", mode="m", start_s=2.0, onload_s=3.5)
        assert r.plt_s == 1.5
        assert r.plt_ms == 1500.0

    def test_first_render_ms(self):
        r = PageLoadResult(url="/", mode="m", start_s=1.0, onload_s=3.0,
                           first_render_s=2.0)
        assert r.first_render_ms == 1000.0

    def test_first_render_none(self):
        r = PageLoadResult(url="/", mode="m", start_s=1.0, onload_s=3.0)
        assert r.first_render_ms is None


class TestAggregates:
    def test_bytes_down_sums(self):
        r = result([event(bytes_down=100), event(url="/b", bytes_down=50)])
        assert r.bytes_down == 150

    def test_rtts_paid_sums(self):
        r = result([event(rtts=1.0), event(url="/b", rtts=3.0)])
        assert r.rtts_paid == 4.0

    def test_request_count_only_network_sources(self):
        r = result([
            event(source=FetchSource.NETWORK),
            event(url="/b", source=FetchSource.REVALIDATED),
            event(url="/c", source=FetchSource.HTTP_CACHE),
            event(url="/d", source=FetchSource.SW_CACHE),
            event(url="/e", source=FetchSource.PUSHED),
        ])
        assert r.request_count == 2

    def test_count_by_source(self):
        r = result([event(), event(url="/b"),
                    event(url="/c", source=FetchSource.SW_CACHE)])
        counts = r.count_by_source()
        assert counts[FetchSource.NETWORK] == 2
        assert counts[FetchSource.SW_CACHE] == 1

    def test_events_for(self):
        r = result([event(), event(url="/b")])
        assert len(r.events_for("/a")) == 1

    def test_timeline_sorted_by_start(self):
        r = result([event(start=0.5), event(url="/b", start=0.1)])
        assert [e.url for e in r.timeline()] == ["/b", "/a"]

    def test_describe_contains_urls_and_plt(self):
        text = result([event()]).describe()
        assert "/a" in text and "PLT" in text

    def test_event_elapsed(self):
        assert event(start=1.0, end=1.25).elapsed_s == 0.25
