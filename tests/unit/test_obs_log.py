"""Unit tests for the structured logger (repro.obs.log)."""

import pytest

from repro.obs.log import (LEVELS, Logger, get_level, get_logger,
                           set_level)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def info_level():
    """Pin the threshold per test; restore the lazy default after."""
    set_level("info")
    yield
    import repro.obs.log as log_module
    log_module._level = None


class TestLogger:
    def test_line_shape(self, capsys):
        Logger("cli").info("wrote-artifact", path="out.json", count=3)
        err = capsys.readouterr().err
        assert err == "repro cli info wrote-artifact " \
                      "path=out.json count=3\n"

    def test_stdout_untouched(self, capsys):
        Logger("cli").info("event")
        assert capsys.readouterr().out == ""

    def test_values_with_spaces_quoted(self, capsys):
        Logger("x").warning("w", msg="two words", eq="a=b")
        err = capsys.readouterr().err
        assert 'msg="two words"' in err
        assert 'eq="a=b"' in err

    def test_floats_render_compactly(self, capsys):
        Logger("x").info("e", ratio=0.25)
        assert "ratio=0.25" in capsys.readouterr().err

    def test_threshold_filters(self, capsys):
        logger = Logger("x")
        logger.debug("hidden")
        assert capsys.readouterr().err == ""
        set_level("quiet")
        logger.error("also-hidden")
        assert capsys.readouterr().err == ""

    def test_set_level_validates(self):
        with pytest.raises(ValueError):
            set_level("loud")

    def test_get_level_names_current(self):
        set_level("warning")
        assert get_level() == "warning"

    def test_env_resolution(self, monkeypatch, capsys):
        import repro.obs.log as log_module
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        log_module._level = None
        Logger("x").warning("hidden")
        assert capsys.readouterr().err == ""
        Logger("x").error("shown")
        assert "shown" in capsys.readouterr().err

    def test_get_logger_cached(self):
        assert get_logger("same") is get_logger("same")

    def test_levels_ordered(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] \
            < LEVELS["error"] < LEVELS["quiet"]
