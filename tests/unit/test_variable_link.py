"""Unit tests for time-varying network conditions."""

import pytest

from repro.netsim.link import NetworkConditions
from repro.netsim.sim import Simulator
from repro.netsim.variable import VariableLink


@pytest.fixture
def sim():
    return Simulator()


class TestSchedule:
    def test_conditions_follow_schedule(self, sim):
        link = VariableLink(sim, [
            (0.0, NetworkConditions.of(60, 40)),
            (10.0, NetworkConditions.of(8, 120)),
        ])
        assert link.conditions.rtt_ms == 40.0
        sim.run(until=10.0)
        assert link.conditions.rtt_ms == 120.0

    def test_empty_schedule_rejected(self, sim):
        with pytest.raises(ValueError):
            VariableLink(sim, [])

    def test_future_only_schedule_rejected(self, sim):
        with pytest.raises(ValueError):
            VariableLink(sim, [(5.0, NetworkConditions.of(10, 10))])

    def test_infinite_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            VariableLink(sim, [(0.0, NetworkConditions(
                rtt_s=0.01, downlink_bps=float("inf")))])

    def test_unsorted_schedule_tolerated(self, sim):
        link = VariableLink(sim, [
            (10.0, NetworkConditions.of(8, 120)),
            (0.0, NetworkConditions.of(60, 40)),
        ])
        assert link.conditions.downlink_mbps == 60.0


class TestWorkConservation:
    def test_rate_change_mid_transfer(self, sim):
        """5 Mbit at 10 Mbps for 0.25 s, then at 1 Mbps for the rest."""
        link = VariableLink(sim, [
            (0.0, NetworkConditions.of(10, 0.0001)),
            (0.25, NetworkConditions.of(1, 0.0001)),
        ])
        done = []

        def download():
            yield from link.send_downstream(5_000_000 // 8)
            done.append(sim.now)
        sim.process(download())
        sim.run()
        # 2.5 Mbit done by 0.25 s; remaining 2.5 Mbit at 1 Mbps = 2.5 s
        assert done[0] == pytest.approx(0.25 + 2.5, rel=0.01)

    def test_speedup_mid_transfer(self, sim):
        link = VariableLink(sim, [
            (0.0, NetworkConditions.of(1, 0.0001)),
            (1.0, NetworkConditions.of(100, 0.0001)),
        ])
        done = []

        def download():
            yield from link.send_downstream(10_000_000 // 8)
            done.append(sim.now)
        sim.process(download())
        sim.run()
        # 1 Mbit done in the first second; 9 Mbit at 100 Mbps = 0.09 s
        assert done[0] == pytest.approx(1.09, rel=0.01)

    def test_propagation_read_at_send_time(self, sim):
        link = VariableLink(sim, [
            (0.0, NetworkConditions.of(100, 20)),
            (1.0, NetworkConditions.of(100, 200)),
        ])
        stamps = []

        def ping(at):
            yield sim.timeout(at - sim.now)
            start = sim.now
            yield from link.round_trip()
            stamps.append(sim.now - start)
        sim.process(ping(0.0))
        sim.run()
        sim.process(ping(sim.now + 0.5))  # well after the transition
        sim.run()
        assert stamps[0] == pytest.approx(0.020)
        assert stamps[1] == pytest.approx(0.200)


class TestPageLoadOverHandover:
    def test_load_survives_conditions_change(self):
        """A full page load across a 5G->congested handover completes,
        and catalyst still beats standard on the warm visit."""
        from repro.core.modes import CachingMode, build_mode
        from repro.netsim.clock import DAY
        from repro.workload.sitegen import freeze_site, generate_site

        site = freeze_site(generate_site("https://ho.example", seed=6,
                                         median_resources=30))
        warm = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site)
            sim = Simulator()
            link = VariableLink(sim, [
                (0.0, NetworkConditions.of(60, 40))])
            cold = sim.run_process(setup.session.load(
                sim, link, setup.handler, "/index.html",
                mode_label=mode.value))
            sim.run(until=DAY)
            handover = VariableLink(sim, [
                (sim.now, NetworkConditions.of(60, 40)),
                (sim.now + 0.15, NetworkConditions.of(8, 150)),
            ])
            warm[mode] = sim.run_process(setup.session.load(
                sim, handover, setup.handler, "/index.html",
                mode_label=mode.value))
            assert warm[mode].plt_s > 0
        assert warm[CachingMode.CATALYST].plt_s <= \
            warm[CachingMode.STANDARD].plt_s