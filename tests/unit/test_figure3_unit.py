"""Unit tests for the Figure 3 experiment plumbing (small scale)."""

import pytest

from repro.experiments.figure3 import run_figure3
from repro.netsim.clock import HOUR
from repro.workload.corpus import make_corpus


@pytest.fixture(scope="module")
def result():
    return run_figure3(corpus=make_corpus(size=4, seed=8),
                       throughputs_mbps=(8.0, 60.0),
                       latencies_ms=(40.0,),
                       delays_s=(HOUR,))


class TestFigure3Result:
    def test_cells_cover_grid(self, result):
        assert len(result.cells) == 2
        assert result.cell(8.0, 40.0).rtt_ms == 40.0
        assert result.cell(60.0, 40.0).mbps == 60.0

    def test_unknown_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell(999.0, 1.0)

    def test_pairs_counted(self, result):
        # 4 sites x 1 delay per cell
        assert result.cell(60.0, 40.0).pairs == 4

    def test_reduction_positive_at_anchor(self, result):
        assert result.cell(60.0, 40.0).mean_reduction > 0

    def test_standard_slower_than_catalyst(self, result):
        cell = result.cell(60.0, 40.0)
        assert cell.mean_standard_plt_ms > cell.mean_catalyst_plt_ms

    def test_overall_mean_is_cell_average(self, result):
        expected = sum(c.mean_reduction for c in result.cells) / 2
        assert result.overall_mean_reduction == pytest.approx(expected)

    def test_format_contains_grid_and_mean(self, result):
        text = result.format()
        assert "PLT reduction" in text
        assert "overall mean" in text
        assert "8 Mbps" in text and "60 Mbps" in text

    def test_cell_summary_ci(self, result):
        summary = result.cell_summary(60.0, 40.0)
        assert summary.n == 4
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_format_cell_with_ci(self, result):
        text = result.format_cell_with_ci(60.0, 40.0)
        assert "95% CI" in text and "n=4" in text

    def test_churn_variant_not_higher(self):
        frozen = run_figure3(corpus=make_corpus(size=3, seed=8),
                             throughputs_mbps=(60.0,),
                             latencies_ms=(40.0,), delays_s=(HOUR,),
                             content_churn=False)
        churned = run_figure3(corpus=make_corpus(size=3, seed=8),
                              throughputs_mbps=(60.0,),
                              latencies_ms=(40.0,), delays_s=(HOUR,),
                              content_churn=True)
        assert churned.overall_mean_reduction <= \
            frozen.overall_mean_reduction + 0.02
