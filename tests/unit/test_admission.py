"""Serving-tier hardening: admission control, shedding, graceful drain.

The overload acceptance test is the PR's contract: with an inflight cap
of K and a burst of 4K concurrent requests, every request is answered
exactly one of {200, 503 + parseable Retry-After} — no socket errors,
no hangs — the served + shed counters sum to the burst size, and the
final drain leaves zero lingering connection tasks.
"""

import asyncio
import json

import pytest

from repro.http.aclient import AsyncHttpClient
from repro.http.aserver import STATS_PATH, AsyncHttpServer
from repro.http.messages import Response
from repro.obs.metrics import MetricsRegistry


def run(coro):
    return asyncio.run(coro)


async def _raw_get(host, port, path="/", extra=b""):
    """One raw request -> (status, headers dict, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"GET " + path.encode() + b" HTTP/1.1\r\n"
                     b"Host: t\r\nConnection: close\r\n\r\n" + extra)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


class TestInflightCap:
    def test_burst_sheds_exactly_past_cap(self):
        """K slots, burst of 4K: every request gets 200 or 503+hint and
        the counters account for the whole burst."""
        cap, burst = 4, 16

        async def scenario():
            release = asyncio.Event()

            async def handler(request):
                await release.wait()
                return Response(body=b"ok")

            server = AsyncHttpServer(handler, max_inflight=cap,
                                     retry_after_s=2.0, shed_seed=3)
            await server.start()
            try:
                fetches = [asyncio.ensure_future(
                    _raw_get(server.host, server.port, f"/r{i}"))
                    for i in range(burst)]
                # Wait until the cap is saturated and the rest are shed,
                # then release the workers.
                while server.shed_503 < burst - cap:
                    await asyncio.sleep(0.01)
                assert server.inflight == cap
                release.set()
                responses = await asyncio.gather(*fetches)
            finally:
                report = await server.stop(drain_s=2.0)
            return server, report, responses

        server, report, responses = run(scenario())
        statuses = sorted(status for status, _, _ in responses)
        assert statuses == [200] * cap + [503] * (burst - cap)
        for status, headers, _ in responses:
            if status == 503:
                hint = int(headers["retry-after"])  # parseable, jittered
                assert 2 <= hint <= 4
        assert server.requests_served == cap
        assert server.shed_503 == burst - cap
        assert server.requests_served + server.shed_503 == burst
        assert report["hard_cancelled"] == 0

    def test_drain_leaves_no_lingering_tasks(self):
        async def scenario():
            async def handler(request):
                await asyncio.sleep(0.05)
                return Response(body=b"ok")

            server = AsyncHttpServer(handler)
            await server.start()
            async with AsyncHttpClient() as client:
                await client.get(server.base_url + "/warm")
                # keep-alive leaves the connection parked on the server
                assert server.connections == 1
            await server.stop(drain_s=1.0)
            assert server.connections == 0
            others = [task for task in asyncio.all_tasks()
                      if task is not asyncio.current_task()]
            assert others == []
        run(scenario())

    def test_no_caps_means_no_shedding(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                async with AsyncHttpClient() as client:
                    for _ in range(5):
                        await client.get(server.base_url + "/")
                return server.shed_503, server.requests_served
        shed, served = run(scenario())
        assert (shed, served) == (0, 5)


class TestConnectionCap:
    def test_excess_connection_shed_and_closed(self):
        async def scenario():
            release = asyncio.Event()

            async def handler(request):
                await release.wait()
                return Response(body=b"ok")

            server = AsyncHttpServer(handler, max_connections=2,
                                     retry_after_s=1.0)
            await server.start()
            try:
                busy = [asyncio.ensure_future(
                    _raw_get(server.host, server.port, f"/b{i}"))
                    for i in range(2)]
                while server.connections < 2:
                    await asyncio.sleep(0.01)
                status, headers, _ = await _raw_get(server.host,
                                                    server.port, "/over")
                release.set()
                await asyncio.gather(*busy)
            finally:
                await server.stop(drain_s=1.0)
            return server, status, headers

        server, status, headers = run(scenario())
        assert status == 503
        assert headers["connection"] == "close"
        assert int(headers["retry-after"]) >= 1
        assert server.shed_connections == 1
        assert server.requests_served == 2

    def test_draining_server_refuses_new_connections(self):
        async def scenario():
            async def handler(request):
                await asyncio.sleep(0.3)
                return Response(body=b"ok")

            server = AsyncHttpServer(handler)
            await server.start()
            slow = asyncio.ensure_future(
                _raw_get(server.host, server.port, "/slow"))
            while server.inflight == 0:
                await asyncio.sleep(0.01)
            stop = asyncio.ensure_future(server.stop(drain_s=2.0))
            await asyncio.sleep(0.05)
            # The listener is already closed: a new connection is refused
            # at the socket layer, not left hanging.
            with pytest.raises(OSError):
                await _raw_get(server.host, server.port, "/late")
            status, headers, _ = await slow
            report = await stop
            return status, headers, report

        status, headers, report = run(scenario())
        assert status == 200  # in-flight request finished during drain
        assert headers["connection"] == "close"
        assert report["hard_cancelled"] == 0


class TestPipeliningGuard:
    def test_connection_recycled_after_request_cap(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x"),
                    max_requests_per_connection=2) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                try:
                    for _ in range(2):
                        writer.write(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
                        await writer.drain()
                    raw = await asyncio.wait_for(reader.read(), timeout=5)
                finally:
                    writer.close()
                return raw, server.requests_served

        raw, served = run(scenario())
        assert served == 2
        # the second (cap-th) response forced the close
        assert raw.count(b"HTTP/1.1 200") == 2
        assert b"Connection: close" in raw


class TestRetryAfterHints:
    def test_hints_deterministic_and_jittered(self):
        a = AsyncHttpServer(lambda req: Response(), shed_seed=11,
                            retry_after_s=4.0)
        b = AsyncHttpServer(lambda req: Response(), shed_seed=11,
                            retry_after_s=4.0)
        hints_a, hints_b = [], []
        for _ in range(8):
            hints_a.append(a._retry_after_hint())
            hints_b.append(b._retry_after_hint())
            a.shed_503 += 1
            b.shed_503 += 1
        assert hints_a == hints_b  # same seed, same ordinals
        assert len(set(hints_a)) > 1  # jittered across ordinals
        assert all(4 <= hint <= 8 for hint in hints_a)

    def test_hint_floor_is_one_second(self):
        server = AsyncHttpServer(lambda req: Response(),
                                 retry_after_s=0.01)
        assert server._retry_after_hint() >= 1


class TestDrainCancellation:
    def test_zero_drain_hard_cancels_busy_connections(self):
        async def scenario():
            async def handler(request):
                await asyncio.sleep(30)
                return Response(body=b"never")

            server = AsyncHttpServer(handler)
            await server.start()
            hung = asyncio.ensure_future(
                _raw_get(server.host, server.port, "/hang"))
            while server.inflight == 0:
                await asyncio.sleep(0.01)
            report = await server.stop(drain_s=0.0)
            hung.cancel()
            try:
                await hung
            except (asyncio.CancelledError, Exception):
                pass
            return report

        report = run(scenario())
        assert report["connections"] == 1
        assert report["hard_cancelled"] == 1

    def test_stop_without_start_reports_empty(self):
        async def scenario():
            server = AsyncHttpServer(lambda req: Response())
            return await server.stop(drain_s=1.0)
        assert run(scenario()) == {"connections": 0, "hard_cancelled": 0,
                                   "drain_s": 0.0}


class TestStatsUnderOverload:
    def test_stats_answers_while_saturated(self):
        """The ops endpoint bypasses request-level shedding and reports
        counters that match the server's own."""
        async def scenario():
            release = asyncio.Event()

            async def handler(request):
                await release.wait()
                return Response(body=b"ok")

            metrics = MetricsRegistry()
            server = AsyncHttpServer(handler, max_inflight=1,
                                     metrics=metrics)
            await server.start()
            try:
                busy = asyncio.ensure_future(
                    _raw_get(server.host, server.port, "/busy"))
                while server.inflight == 0:
                    await asyncio.sleep(0.01)
                shed_status, _, _ = await _raw_get(server.host,
                                                   server.port, "/over")
                status, _, body = await _raw_get(
                    server.host, server.port, STATS_PATH + "?dump=1")
                release.set()
                await busy
            finally:
                await server.stop(drain_s=1.0)
            return shed_status, status, json.loads(body), metrics

        shed_status, status, payload, metrics = run(scenario())
        assert shed_status == 503
        assert status == 200
        admission = payload["admission"]
        assert admission["inflight"] == 1
        assert admission["max_inflight"] == 1
        assert admission["shed_503"] == 1
        assert admission["draining"] is False
        # the registry saw the same events the counters did
        assert payload["metrics"]["http.shed_503"] == 1
        assert "metrics_dump" in payload  # mergeable fleet wire format
        assert metrics.counter("http.shed_503").snapshot() == 1
        assert metrics.gauge("http.inflight").snapshot() == 0

    def test_slow_loris_counted_in_metrics(self):
        async def scenario():
            metrics = MetricsRegistry()
            async with AsyncHttpServer(lambda req: Response(body=b"ok"),
                                       header_read_timeout_s=0.15,
                                       metrics=metrics) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET /x HTTP/1.1\r\nHost: h\r\n")  # stall
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                return raw, metrics, server.timeouts_408

        raw, metrics, timeouts = run(scenario())
        assert b"408" in raw.split(b"\r\n")[0]
        assert timeouts == 1
        assert metrics.counter("http.timeouts_408").snapshot() == 1
