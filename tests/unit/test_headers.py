"""Unit tests for the case-insensitive header multimap."""

import pytest

from repro.http.headers import Headers


class TestConstruction:
    def test_empty(self):
        assert len(Headers()) == 0

    def test_from_mapping(self):
        h = Headers({"Content-Type": "text/html", "ETag": '"x"'})
        assert h["content-type"] == "text/html"

    def test_from_pairs_preserves_duplicates(self):
        h = Headers([("Set-Cookie", "a=1"), ("Set-Cookie", "b=2")])
        assert h.get_all("set-cookie") == ["a=1", "b=2"]

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone.set("A", "2")
        assert original["A"] == "1"


class TestCaseInsensitivity:
    def test_get_any_case(self):
        h = Headers({"Cache-Control": "no-store"})
        assert h.get("cache-control") == "no-store"
        assert h.get("CACHE-CONTROL") == "no-store"

    def test_contains(self):
        h = Headers({"ETag": '"x"'})
        assert "etag" in h
        assert "ETAG" in h
        assert "missing" not in h
        assert 42 not in h

    def test_remove_all_cases(self):
        h = Headers([("X-Test", "1"), ("x-test", "2")])
        h.remove("X-TEST")
        assert "x-test" not in h


class TestMutation:
    def test_set_replaces_all(self):
        h = Headers([("Via", "a"), ("Via", "b")])
        h.set("via", "c")
        assert h.get_all("via") == ["c"]

    def test_setdefault_keeps_existing(self):
        h = Headers({"Host": "a.example"})
        assert h.setdefault("Host", "b.example") == "a.example"
        assert h["Host"] == "a.example"

    def test_setdefault_adds_missing(self):
        h = Headers()
        assert h.setdefault("Host", "a.example") == "a.example"
        assert h["Host"] == "a.example"

    def test_delitem_missing_raises(self):
        with pytest.raises(KeyError):
            del Headers()["nope"]

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Headers()["nope"]

    def test_value_stripped(self):
        h = Headers()
        h.add("X", "  padded  ")
        assert h["X"] == "padded"


class TestListSemantics:
    def test_get_joined(self):
        h = Headers([("Cache-Control", "no-cache"),
                     ("Cache-Control", "max-age=3")])
        assert h.get_joined("cache-control") == "no-cache, max-age=3"

    def test_get_joined_absent_is_none(self):
        assert Headers().get_joined("x") is None

    def test_names_deduplicated(self):
        h = Headers([("A", "1"), ("a", "2"), ("B", "3")])
        assert h.names() == ["A", "B"]


class TestValidation:
    @pytest.mark.parametrize("bad", ["", "has space", "has:colon",
                                     "has\nnewline", "tab\there"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            Headers().add(bad, "v")

    def test_crlf_in_value_rejected(self):
        with pytest.raises(ValueError):
            Headers().add("X", "evil\r\nInjected: yes")

    def test_non_string_value_rejected(self):
        with pytest.raises(TypeError):
            Headers().add("X", 42)


class TestEquality:
    def test_order_insensitive(self):
        a = Headers([("A", "1"), ("B", "2")])
        b = Headers([("B", "2"), ("a", "1")])
        assert a == b

    def test_value_sensitive(self):
        assert Headers({"A": "1"}) != Headers({"A": "2"})

    def test_not_equal_to_dict(self):
        assert Headers({"A": "1"}).__eq__({"A": "1"}) is NotImplemented


class TestWireSize:
    def test_counts_name_colon_space_value_crlf(self):
        h = Headers({"AB": "cd"})
        # "AB: cd\r\n" = 2 + 2 + 2 + 2
        assert h.wire_size() == 8

    def test_empty_is_zero(self):
        assert Headers().wire_size() == 0
