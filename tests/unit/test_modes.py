"""Unit tests for mode construction."""

import pytest

from repro.browser.engine import BrowserConfig
from repro.core.modes import CachingMode, build_mode
from repro.server.catalyst import CatalystServer
from repro.server.static import StaticServer
from repro.workload.sitegen import generate_site


@pytest.fixture(scope="module")
def site_spec():
    return generate_site("https://m.example", seed=61)


class TestBuildMode:
    def test_no_cache_disables_http_cache(self, site_spec):
        setup = build_mode(CachingMode.NO_CACHE, site_spec)
        assert not setup.session.config.use_http_cache
        assert isinstance(setup.server, StaticServer)

    def test_standard(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        assert setup.session.config.use_http_cache
        assert not setup.session.config.use_service_worker
        assert setup.push_urls_fn is None

    def test_catalyst(self, site_spec):
        setup = build_mode(CachingMode.CATALYST, site_spec)
        assert isinstance(setup.server, CatalystServer)
        assert setup.session.config.use_service_worker
        assert setup.server.sessions is None

    def test_catalyst_sessions(self, site_spec):
        setup = build_mode(CachingMode.CATALYST_SESSIONS, site_spec)
        assert setup.server.sessions is not None
        assert setup.session_id == "client-0"

    def test_push_modes_have_planner(self, site_spec):
        for mode in (CachingMode.PUSH_ALL, CachingMode.PUSH_BLOCKING):
            setup = build_mode(mode, site_spec)
            assert setup.push_urls_fn is not None
            assert isinstance(setup.server, StaticServer)

    def test_base_config_cost_model_shared(self, site_spec):
        base = BrowserConfig(server_think_s=0.123)
        for mode in CachingMode:
            setup = build_mode(mode, site_spec, base)
            assert setup.session.config.server_think_s == 0.123

    def test_label(self, site_spec):
        assert build_mode(CachingMode.CATALYST, site_spec).label == \
            "catalyst"

    def test_uses_catalyst_server_property(self):
        assert CachingMode.CATALYST.uses_catalyst_server
        assert CachingMode.CATALYST_SESSIONS.uses_catalyst_server
        assert not CachingMode.STANDARD.uses_catalyst_server
