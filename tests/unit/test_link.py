"""Unit tests for network conditions, the sharing pipe, and links."""

import math

import pytest

from repro.netsim.link import Link, NetworkConditions, ProcessorSharingPipe
from repro.netsim.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestNetworkConditions:
    def test_of_uses_paper_units(self):
        cond = NetworkConditions.of(60, 40)
        assert cond.downlink_bps == 60e6
        assert cond.rtt_s == pytest.approx(0.040)
        assert cond.rtt_ms == pytest.approx(40.0)
        assert cond.one_way_s == pytest.approx(0.020)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            NetworkConditions(rtt_s=-1.0, downlink_bps=1e6)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkConditions(rtt_s=0.1, downlink_bps=0)

    def test_describe_includes_units(self):
        assert NetworkConditions.of(8, 100).describe() == "8Mbps/100ms"

    def test_label_overrides_describe(self):
        assert NetworkConditions.of(8, 100, label="dsl").describe() == "dsl"

    def test_uplink_defaults_unlimited(self):
        assert math.isinf(NetworkConditions.of(10, 10).uplink_bps)


class TestProcessorSharingPipe:
    def test_single_transfer_takes_size_over_capacity(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=8e6)  # 1 MB/s
        done = pipe.transfer(1_000_000)
        sim.run()
        assert done.processed
        assert sim.now == pytest.approx(1.0)

    def test_two_equal_transfers_share_evenly(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=8e6)
        ends = []
        for _ in range(2):
            pipe.transfer(500_000).add_callback(
                lambda _ev: ends.append(sim.now))
        sim.run()
        # each would take 0.5 s alone; sharing doubles both to 1.0 s
        assert ends == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_late_arrival_slows_first_transfer(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=8e6)
        ends = {}
        first = pipe.transfer(1_000_000)
        first.add_callback(lambda _ev: ends.setdefault("first", sim.now))

        def late():
            yield sim.timeout(0.5)
            second = pipe.transfer(250_000)
            second.add_callback(
                lambda _ev: ends.setdefault("second", sim.now))
        sim.process(late())
        sim.run()
        # first: 0.5 s alone (500 kB done), then shares at 0.5 MB/s while
        # second (250 kB) runs: both progress 250 kB by t=1.0, second
        # completes; first's last 250 kB gets full capacity again => 1.25 s.
        assert ends["second"] == pytest.approx(1.0)
        assert ends["first"] == pytest.approx(1.25)

    def test_zero_bytes_completes_instantly(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=1e6)
        done = pipe.transfer(0)
        assert done.triggered
        sim.run()
        assert sim.now == 0.0

    def test_negative_bytes_rejected(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=1e6)
        with pytest.raises(ValueError):
            pipe.transfer(-1)

    def test_infinite_capacity_is_instant(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=math.inf)
        done = pipe.transfer(10 ** 9)
        sim.run()
        assert done.processed
        assert sim.now == 0.0

    def test_total_bits_accounting(self, sim):
        pipe = ProcessorSharingPipe(sim, capacity_bps=1e6)
        pipe.transfer(1000)
        pipe.transfer(500)
        sim.run()
        assert pipe.total_bits == 1500 * 8

    def test_many_tiny_transfers_terminate(self, sim):
        """Regression: sub-bit float residue must not livelock the queue."""
        pipe = ProcessorSharingPipe(sim, capacity_bps=1e9)
        for _ in range(50):
            pipe.transfer(7)
        sim.run()
        assert pipe.active_count == 0

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            ProcessorSharingPipe(sim, capacity_bps=0)


class TestLink:
    def test_downstream_pays_propagation_plus_serialization(self, sim):
        link = Link(sim, NetworkConditions.of(8, 100))

        def proc():
            yield from link.send_downstream(100_000)
            return sim.now
        # 50 ms one-way + 100 kB over 1 MB/s = 0.1 s
        assert sim.run_process(proc()) == pytest.approx(0.05 + 0.1)

    def test_round_trip_is_full_rtt(self, sim):
        link = Link(sim, NetworkConditions.of(8, 100))

        def proc():
            yield from link.round_trip()
            return sim.now
        assert sim.run_process(proc()) == pytest.approx(0.1)

    def test_byte_counters(self, sim):
        link = Link(sim, NetworkConditions.of(8, 100))

        def proc():
            yield from link.send_upstream(300)
            yield from link.send_downstream(5000)
        sim.run_process(proc())
        assert link.bytes_up == 300
        assert link.bytes_down == 5000

    def test_concurrent_downloads_contend(self, sim):
        link = Link(sim, NetworkConditions.of(8, 0.0001))
        ends = []

        def download():
            yield from link.send_downstream(500_000)
            ends.append(sim.now)
        sim.process(download())
        sim.process(download())
        sim.run()
        # 1 MB total through 1 MB/s => both finish ~1 s
        assert ends[0] == pytest.approx(1.0, rel=0.01)
        assert ends[1] == pytest.approx(1.0, rel=0.01)
