"""Unit tests for the page-load engine."""

import pytest

from repro.browser.engine import BrowserConfig, BrowserSession
from repro.browser.metrics import FetchSource
from repro.core.modes import CachingMode, build_mode
from repro.experiments.figure1 import build_figure1_site
from repro.netsim.clock import HOUR
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.server.push import PushPlanner, PushPolicy
from repro.server.site import OriginSite
from repro.server.static import StaticServer

CONDITIONS = NetworkConditions.of(60, 40)


def load_once(setup, at_time=0.0, conditions=CONDITIONS):
    sim = Simulator()
    sim.run(until=at_time)
    link = Link(sim, conditions)
    return sim.run_process(setup.session.load(
        sim, link, setup.handler, "/index.html",
        mode_label=setup.label, push_urls_fn=setup.push_urls_fn,
        session_id=setup.session_id))


def load_sequence(setup, times, conditions=CONDITIONS):
    sim = Simulator()
    results = []
    for at_time in times:
        sim.run(until=at_time)
        link = Link(sim, conditions)
        results.append(sim.run_process(setup.session.load(
            sim, link, setup.handler, "/index.html",
            mode_label=setup.label, push_urls_fn=setup.push_urls_fn,
            session_id=setup.session_id)))
    return results


@pytest.fixture
def site_spec():
    return build_figure1_site()


class TestColdLoad:
    def test_all_resources_fetched(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        result = load_once(setup)
        urls = {event.url for event in result.events}
        assert urls == {"/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"}
        assert all(event.source is FetchSource.NETWORK
                   for event in result.events)

    def test_js_chain_is_sequential(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        result = load_once(setup)
        by_url = {e.url: e for e in result.events}
        assert by_url["/b.js"].end_s <= by_url["/c.js"].start_s
        assert by_url["/c.js"].end_s <= by_url["/d.jpg"].start_s

    def test_statics_start_after_parse_together(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        result = load_once(setup)
        by_url = {e.url: e for e in result.events}
        assert by_url["/a.css"].start_s == by_url["/b.js"].start_s

    def test_plt_positive_and_spans_events(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        result = load_once(setup)
        assert result.plt_s > 0
        assert result.onload_s >= max(e.end_s for e in result.events)

    def test_first_render_between_html_and_onload(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        result = load_once(setup)
        assert result.start_s < result.first_render_s <= result.onload_s


class TestRttSensitivity:
    def test_plt_monotone_in_rtt(self, site_spec):
        plts = []
        for rtt in (10, 40, 100, 200):
            setup = build_mode(CachingMode.STANDARD, site_spec)
            result = load_once(setup,
                               conditions=NetworkConditions.of(60, rtt))
            plts.append(result.plt_s)
        assert plts == sorted(plts)

    def test_plt_decreases_with_bandwidth(self, site_spec):
        plts = []
        for mbps in (2, 8, 60):
            setup = build_mode(CachingMode.STANDARD, site_spec)
            result = load_once(setup,
                               conditions=NetworkConditions.of(mbps, 40))
            plts.append(result.plt_s)
        assert plts == sorted(plts, reverse=True)


class TestStandardRevisit:
    def test_fresh_resources_served_locally(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        _, warm = load_sequence(setup, [0.0, 2 * HOUR])
        sources = {e.url: e.source for e in warm.events}
        assert sources["/a.css"] is FetchSource.HTTP_CACHE  # 1 week TTL
        assert sources["/c.js"] is FetchSource.HTTP_CACHE   # 1 day TTL
        assert sources["/b.js"] is FetchSource.REVALIDATED  # no-cache
        assert sources["/d.jpg"] is FetchSource.NETWORK     # expired+changed

    def test_warm_faster_than_cold(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        cold, warm = load_sequence(setup, [0.0, 2 * HOUR])
        assert warm.plt_s < cold.plt_s


class TestCatalystRevisit:
    def test_unchanged_resources_zero_network(self, site_spec):
        setup = build_mode(CachingMode.CATALYST, site_spec)
        _, warm = load_sequence(setup, [0.0, 2 * HOUR])
        sources = {e.url: e.source for e in warm.events}
        assert sources["/a.css"] is FetchSource.SW_CACHE
        assert sources["/b.js"] is FetchSource.SW_CACHE   # the saved RTT
        assert sources["/d.jpg"] is FetchSource.NETWORK   # truly changed

    def test_catalyst_not_slower_than_standard(self, site_spec):
        standard = build_mode(CachingMode.STANDARD, site_spec)
        catalyst = build_mode(CachingMode.CATALYST, site_spec)
        _, warm_std = load_sequence(standard, [0.0, 2 * HOUR])
        _, warm_cat = load_sequence(catalyst, [0.0, 2 * HOUR])
        assert warm_cat.plt_s <= warm_std.plt_s

    def test_sw_events_pay_zero_rtts(self, site_spec):
        setup = build_mode(CachingMode.CATALYST, site_spec)
        _, warm = load_sequence(setup, [0.0, 2 * HOUR])
        for event in warm.events:
            if event.source is FetchSource.SW_CACHE:
                assert event.rtts_paid == 0.0
                assert event.bytes_down == 0


class TestNoCacheMode:
    def test_every_visit_is_cold(self, site_spec):
        setup = build_mode(CachingMode.NO_CACHE, site_spec)
        cold, warm = load_sequence(setup, [0.0, 2 * HOUR])
        assert all(e.source is FetchSource.NETWORK for e in warm.events)
        assert warm.plt_s == pytest.approx(cold.plt_s, rel=0.2)


class TestPushMode:
    def test_pushed_resources_not_requested(self, site_spec):
        setup = build_mode(CachingMode.PUSH_ALL, site_spec)
        result = load_once(setup)
        sources = {e.url: e.source for e in result.events}
        assert sources["/a.css"] is FetchSource.PUSHED
        assert sources["/b.js"] is FetchSource.PUSHED
        # js-discovered resources cannot be pushed (invisible to the DOM)
        assert sources["/c.js"] is FetchSource.NETWORK

    def test_push_bytes_ride_the_link(self, site_spec):
        sim = Simulator()
        setup = build_mode(CachingMode.PUSH_ALL, site_spec)
        link = Link(sim, CONDITIONS)
        sim.run_process(setup.session.load(
            sim, link, setup.handler, "/index.html",
            mode_label=setup.label, push_urls_fn=setup.push_urls_fn))
        # a.css (15k) + b.js (25k) pushed on top of html/c.js/d.jpg
        assert link.bytes_down > 90_000

    def test_push_wastes_bytes_on_warm_visits(self, site_spec):
        """The §5 criticism: push ignores the client cache state."""
        setup = build_mode(CachingMode.PUSH_ALL, site_spec)
        cold, warm = load_sequence(setup, [0.0, 2 * HOUR])
        pushed_warm = [e for e in warm.events
                       if e.source is FetchSource.PUSHED]
        assert pushed_warm  # still pushing what the client already has


class TestSessionMode:
    def test_js_resources_covered_on_third_visit(self, site_spec):
        setup = build_mode(CachingMode.CATALYST_SESSIONS, site_spec)
        results = load_sequence(setup, [0.0, HOUR, 2 * HOUR])
        third = {e.url: e.source for e in results[2].events}
        # /c.js was recorded in visit 1, stapled from visit 2 onwards;
        # by visit 3 it must serve from the SW cache with zero RTTs.
        assert third["/c.js"] is FetchSource.SW_CACHE


class TestHttp2:
    def test_single_connection_used(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec,
                           BrowserConfig(http2=True))
        sim = Simulator()
        link = Link(sim, CONDITIONS)
        loader_result = sim.run_process(setup.session.load(
            sim, link, setup.handler, "/index.html", mode_label="h2"))
        assert loader_result.plt_s > 0

    def test_h2_faster_than_h1_cold(self, site_spec):
        """One handshake instead of up to six."""
        plts = {}
        for http2 in (False, True):
            setup = build_mode(CachingMode.STANDARD, site_spec,
                               BrowserConfig(http2=http2))
            plts[http2] = load_once(setup).plt_s
        assert plts[True] <= plts[False]

    def test_catalyst_still_wins_over_h2(self, site_spec):
        warm = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site_spec, BrowserConfig(http2=True))
            _, w = load_sequence(setup, [0.0, 2 * HOUR])
            warm[mode] = w.plt_s
        assert warm[CachingMode.CATALYST] <= warm[CachingMode.STANDARD]


class TestDeterminism:
    def test_identical_runs_identical_timelines(self, site_spec):
        def run():
            setup = build_mode(CachingMode.CATALYST, site_spec)
            _, warm = load_sequence(setup, [0.0, 2 * HOUR])
            return [(e.url, e.start_s, e.end_s, e.source)
                    for e in warm.timeline()]
        assert run() == run()
