"""Unit tests for the modeled JS execution."""

import pytest

from repro.browser.js import ScriptModel, extract_js_fetches, kind_from_url
from repro.html.parser import ResourceKind


class TestExtractFetches:
    def test_single_directive(self):
        assert extract_js_fetches("/*@cc-fetch:/api/a.json*/") == \
            ["/api/a.json"]

    def test_multiple_in_order(self):
        body = ("code();\n/*@cc-fetch:/a.js*/\nmore();\n"
                "/*@cc-fetch:/b.json*/")
        assert extract_js_fetches(body) == ["/a.js", "/b.json"]

    def test_no_directives(self):
        assert extract_js_fetches("var x = 1; /* comment */") == []

    def test_unterminated_directive_ignored(self):
        assert extract_js_fetches("/*@cc-fetch:/a.js") == []

    def test_empty_url_skipped(self):
        assert extract_js_fetches("/*@cc-fetch:  */") == []

    def test_whitespace_stripped(self):
        assert extract_js_fetches("/*@cc-fetch: /a.js */") == ["/a.js"]


class TestKindFromUrl:
    @pytest.mark.parametrize("url,kind", [
        ("/a.css", ResourceKind.STYLESHEET),
        ("/a.js", ResourceKind.SCRIPT),
        ("/a.mjs", ResourceKind.SCRIPT),
        ("/a.png", ResourceKind.IMAGE),
        ("/a.JPG", ResourceKind.IMAGE),
        ("/a.woff2", ResourceKind.FONT),
        ("/a.mp4", ResourceKind.MEDIA),
        ("/a.json", ResourceKind.FETCH),
        ("/frame.html", ResourceKind.IFRAME),
        ("/a.unknownext", ResourceKind.OTHER),
        ("/api/endpoint", ResourceKind.FETCH),
    ])
    def test_mapping(self, url, kind):
        assert kind_from_url(url) is kind

    def test_query_and_fragment_ignored(self):
        assert kind_from_url("/a.png?v=2#frag") is ResourceKind.IMAGE


class TestScriptModel:
    def test_floor(self):
        model = ScriptModel(min_exec_s=0.002)
        assert model.execution_time(0) == 0.002

    def test_proportional_region(self):
        model = ScriptModel(exec_s_per_byte=1e-6, min_exec_s=0.0,
                            max_exec_s=10.0)
        assert model.execution_time(50_000) == pytest.approx(0.05)

    def test_cap(self):
        model = ScriptModel(max_exec_s=0.1)
        assert model.execution_time(10 ** 9) == 0.1

    def test_monotone(self):
        model = ScriptModel()
        times = [model.execution_time(n) for n in
                 (0, 1000, 100_000, 1_000_000)]
        assert times == sorted(times)
