"""Unit tests for the map-digest revisit optimization (extension).

The client advertises a digest of the `X-Etag-Config` it already holds;
when the map is unchanged the server answers with a tiny
``X-Etag-Config-Same`` header instead of kilobytes of JSON.
"""

import pytest

from repro.browser.engine import BrowserConfig, BrowserSession
from repro.core.catalyst import run_visit_sequence
from repro.core.etag_config import (ETAG_CONFIG_DIGEST_HEADER,
                                    ETAG_CONFIG_HEADER,
                                    ETAG_CONFIG_SAME_HEADER, EtagConfig)
from repro.core.modes import CachingMode, ModeSetup
from repro.http.etag import ETag
from repro.http.messages import Request
from repro.netsim.clock import DAY, HOUR
from repro.netsim.link import NetworkConditions
from repro.server.catalyst import CatalystConfig, CatalystServer
from repro.server.site import OriginSite
from repro.workload.sitegen import freeze_site, generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site_spec():
    return freeze_site(generate_site("https://digest.example", seed=13,
                                     median_resources=25))


def digest_setup(site_spec) -> ModeSetup:
    site = OriginSite(site_spec)
    server = CatalystServer(site,
                            config=CatalystConfig(use_map_digest=True))
    return ModeSetup(mode=CachingMode.CATALYST, server=server,
                     session=BrowserSession(
                         BrowserConfig(use_service_worker=True)))


class TestDigest:
    def test_digest_stable_and_content_sensitive(self):
        a = EtagConfig(entries={"/x": ETag("1")})
        b = EtagConfig(entries={"/x": ETag("1")})
        c = EtagConfig(entries={"/x": ETag("2")})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert len(a.digest()) == 16


class TestServerSide:
    def test_matching_digest_gets_same_header(self, site_spec):
        site = OriginSite(site_spec)
        server = CatalystServer(
            site, config=CatalystConfig(use_map_digest=True))
        first = server.handle(Request(url="/index.html"), 0.0)
        config = EtagConfig.from_headers(first.headers)
        revisit = server.handle(Request(url="/index.html", headers={
            ETAG_CONFIG_DIGEST_HEADER: config.digest()}), 1.0)
        assert ETAG_CONFIG_SAME_HEADER in revisit.headers
        assert ETAG_CONFIG_HEADER not in revisit.headers

    def test_stale_digest_gets_full_map(self, site_spec):
        site = OriginSite(site_spec)
        server = CatalystServer(
            site, config=CatalystConfig(use_map_digest=True))
        response = server.handle(Request(url="/index.html", headers={
            ETAG_CONFIG_DIGEST_HEADER: "0" * 16}), 0.0)
        assert ETAG_CONFIG_HEADER in response.headers
        assert ETAG_CONFIG_SAME_HEADER not in response.headers

    def test_disabled_by_default(self, site_spec):
        server = CatalystServer(OriginSite(site_spec))
        first = server.handle(Request(url="/index.html"), 0.0)
        config = EtagConfig.from_headers(first.headers)
        revisit = server.handle(Request(url="/index.html", headers={
            ETAG_CONFIG_DIGEST_HEADER: config.digest()}), 1.0)
        assert ETAG_CONFIG_HEADER in revisit.headers


class TestEndToEnd:
    def test_revisits_confirm_map_reuse(self, site_spec):
        setup = digest_setup(site_spec)
        run_visit_sequence(setup, COND, [0.0, HOUR, DAY])
        assert setup.session.sw.map_reuse_confirmations == 2

    def test_sw_hits_unaffected(self, site_spec):
        from repro.browser.metrics import FetchSource
        setup = digest_setup(site_spec)
        outcomes = run_visit_sequence(setup, COND, [0.0, DAY])
        warm_sources = outcomes[1].result.count_by_source()
        assert warm_sources.get(FetchSource.SW_CACHE, 0) > 0

    def test_header_bytes_saved(self, site_spec):
        with_digest = digest_setup(site_spec)
        run_visit_sequence(with_digest, COND, [0.0, HOUR, DAY])
        without = digest_setup(site_spec)
        without.server.config = CatalystConfig(use_map_digest=False)
        run_visit_sequence(without, COND, [0.0, HOUR, DAY])
        assert with_digest.server.config_bytes_emitted < \
            without.server.config_bytes_emitted / 2

    def test_plt_not_worse(self, site_spec):
        with_digest = digest_setup(site_spec)
        a = run_visit_sequence(with_digest, COND, [0.0, DAY])
        plain = digest_setup(site_spec)
        plain.server.config = CatalystConfig(use_map_digest=False)
        b = run_visit_sequence(plain, COND, [0.0, DAY])
        assert a[1].plt_ms <= b[1].plt_ms * 1.01
