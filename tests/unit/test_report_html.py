"""Unit tests for the HTML results report."""

import pathlib

import pytest

from repro.experiments.report_html import build_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "headline_claim.txt").write_text("overall: 30.6%")
    (tmp_path / "figure3_full.txt").write_text("grid | 1 | 2\n8Mbps | a | b")
    (tmp_path / "custom_extra.txt").write_text("unlisted artifact")
    return tmp_path


class TestBuildReport:
    def test_contains_all_artifacts(self, results_dir):
        html_text = build_report(results_dir)
        assert "overall: 30.6%" in html_text
        assert "unlisted artifact" in html_text

    def test_known_sections_titled(self, results_dir):
        html_text = build_report(results_dir)
        assert "Headline: the ~30 % claim" in html_text
        assert "Figure 3 — full grid" in html_text

    def test_unknown_artifacts_appended(self, results_dir):
        html_text = build_report(results_dir)
        assert "custom_extra" in html_text
        # listed sections come before unlisted extras
        assert html_text.index("Headline") < html_text.index("custom_extra")

    def test_html_escaped(self, tmp_path):
        (tmp_path / "evil.txt").write_text("<script>alert(1)</script>")
        html_text = build_report(tmp_path)
        assert "<script>alert" not in html_text
        assert "&lt;script&gt;" in html_text

    def test_self_contained(self, results_dir):
        html_text = build_report(results_dir)
        assert "http://" not in html_text
        assert "https://" not in html_text
        assert "src=" not in html_text

    def test_empty_dir_still_valid(self, tmp_path):
        html_text = build_report(tmp_path)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "0 artifacts" in html_text


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "r.html")
        assert out.exists()
        assert "30.6%" in out.read_text()

    def test_custom_title(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "r.html",
                           title="My Run")
        assert "<title>My Run</title>" in out.read_text()


class TestSloTimelineSection:
    def loadtest_artifact(self, tmp_path, passed=True):
        import json
        payload = {
            "bench": "load_test",
            "series": [{"t_s": 0.0, "sent": 10, "ok": 10, "shed": 0},
                       {"t_s": 0.25, "sent": 0, "ok": 0, "shed": 0},
                       {"t_s": 0.5, "sent": 8, "ok": 4, "shed": 4}],
            "slo": {"passed": passed, "interval_s": 0.25, "objectives": [
                {"name": "latency-p99", "kind": "latency",
                 "breached": not passed,
                 "worst": {"start": 0, "end": 2, "measured": 500.0,
                           "burn_rate": 2.0}}]},
        }
        (tmp_path / "loadtest_run.json").write_text(json.dumps(payload))
        return tmp_path

    def test_section_renders_verdict_and_sparkline(self, tmp_path):
        html_text = build_report(self.loadtest_artifact(tmp_path))
        assert "Load-test SLOs" in html_text
        assert "SLO: PASS" in html_text
        assert "ok   per interval" in html_text
        assert "latency-p99" in html_text

    def test_breach_surfaces_burn_rate(self, tmp_path):
        html_text = build_report(
            self.loadtest_artifact(tmp_path, passed=False))
        assert "SLO: BREACH" in html_text
        assert "worst burn 2.00x" in html_text

    def test_no_loadtest_artifacts_no_section(self, results_dir):
        assert "Load-test SLOs" not in build_report(results_dir)

    def test_foreign_json_ignored(self, tmp_path):
        (tmp_path / "BENCH_other.json").write_text("{\"bench\": \"simcore\"}")
        assert "Load-test SLOs" not in build_report(tmp_path)


class TestFleetCohortSection:
    def fleet_artifact(self, tmp_path, passed=True):
        import json
        mode = {"mode": "catalyst", "mean_ms": 900.0, "p50_ms": 700.0,
                "p90_ms": 1800.0, "p99_ms": 2600.0, "origin_rps": 8.5,
                "origin_mbps": 1.2, "hit_ratio": 0.42}
        payload = {
            "bench": "population_fleet_run",
            "users": 20_000, "population_visits": 1_000_000,
            "backend": "numpy",
            "cohorts": [{"name": "urban-fast", "label": "60Mbps/40ms",
                         "share": 0.45, "visits": 450_000.0,
                         "cold_share": 0.5, "modes": [mode]}],
            "fleet": [mode],
            "des": {"visits": 24, "workers": 4, "visits_per_s": 7.0,
                    "cohorts": {}},
            "validation": {"rho": 0.94, "min_rho": 0.85, "rows": 48,
                           "passed": passed},
        }
        (tmp_path / "fleet_run.json").write_text(json.dumps(payload))
        return tmp_path

    def test_section_renders_cohort_percentiles(self, tmp_path):
        html_text = build_report(self.fleet_artifact(tmp_path))
        assert "Population fleet — per-cohort PLT percentiles" in html_text
        assert "urban-fast" in html_text
        assert "p99 ms" in html_text
        assert "rho=0.940" in html_text
        assert "PASS" in html_text
        assert "DES cross-check: 24" in html_text

    def test_failed_validation_surfaces(self, tmp_path):
        html_text = build_report(self.fleet_artifact(tmp_path,
                                                     passed=False))
        assert "FAIL" in html_text

    def test_no_fleet_artifacts_no_section(self, results_dir):
        assert "Population fleet — per-cohort" \
            not in build_report(results_dir)
