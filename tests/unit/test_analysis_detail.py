"""Detailed unit tests for the analytic model's per-resource expectations."""

import math

import pytest

from repro.core.analysis import AnalyticModel
from repro.core.modes import CachingMode
from repro.html.parser import ResourceKind
from repro.netsim.clock import DAY, HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.headers_model import HeaderPolicy
from repro.workload.sitegen import ResourceSpec

COND = NetworkConditions.of(60, 40)


def spec_with(policy: HeaderPolicy, period_s: float = math.inf,
              via: str = "html", dynamic: bool = False,
              size: int = 10_000) -> ResourceSpec:
    return ResourceSpec(
        url="/r.bin", kind=ResourceKind.IMAGE, size_bytes=size,
        policy=policy, change_period_s=period_s, content_seed=1,
        discovered_via=via, dynamic=dynamic,
        fixed_change_times=() if math.isinf(period_s) else None)


@pytest.fixture
def model():
    return AnalyticModel(COND)


class TestExpectedResourceCost:
    def test_no_cache_mode_always_full(self, model):
        spec = spec_with(HeaderPolicy(mode="max-age", ttl_s=1e9))
        cost = model.expected_resource_s(spec, CachingMode.NO_CACHE, HOUR)
        assert cost == pytest.approx(model._full_fetch_s(spec.size_bytes))

    def test_fresh_max_age_is_lookup_cost(self, model):
        spec = spec_with(HeaderPolicy(mode="max-age", ttl_s=2 * HOUR))
        cost = model.expected_resource_s(spec, CachingMode.STANDARD, HOUR)
        assert cost == model.config.cache_lookup_s

    def test_expired_unchanged_costs_a_revalidation(self, model):
        spec = spec_with(HeaderPolicy(mode="max-age", ttl_s=60.0))
        cost = model.expected_resource_s(spec, CachingMode.STANDARD, HOUR)
        assert cost == pytest.approx(model._revalidation_s())

    def test_no_store_always_full(self, model):
        spec = spec_with(HeaderPolicy(mode="no-store"))
        cost = model.expected_resource_s(spec, CachingMode.STANDARD, HOUR)
        assert cost == pytest.approx(model._full_fetch_s(spec.size_bytes))

    def test_catalyst_unchanged_is_sw_lookup(self, model):
        spec = spec_with(HeaderPolicy(mode="no-cache"))
        cost = model.expected_resource_s(spec, CachingMode.CATALYST, HOUR)
        assert cost == model.config.sw_lookup_s

    def test_catalyst_js_discovered_falls_back_to_standard(self, model):
        spec = spec_with(HeaderPolicy(mode="no-cache"), via="js")
        standard = model.expected_resource_s(spec, CachingMode.STANDARD,
                                             HOUR)
        catalyst = model.expected_resource_s(spec, CachingMode.CATALYST,
                                             HOUR)
        assert catalyst == pytest.approx(standard)

    def test_catalyst_sessions_covers_js_discovered(self, model):
        spec = spec_with(HeaderPolicy(mode="no-cache"), via="js")
        cost = model.expected_resource_s(
            spec, CachingMode.CATALYST_SESSIONS, HOUR)
        assert cost == model.config.sw_lookup_s

    def test_dynamic_always_full_even_for_catalyst(self, model):
        spec = spec_with(HeaderPolicy(mode="no-store"), dynamic=True)
        cost = model.expected_resource_s(spec, CachingMode.CATALYST, HOUR)
        assert cost == pytest.approx(model._full_fetch_s(spec.size_bytes))

    def test_churned_resource_mixes_probabilistically(self, model):
        spec = spec_with(HeaderPolicy(mode="no-cache"), period_s=DAY)
        cost = model.expected_resource_s(spec, CachingMode.CATALYST, DAY)
        p = 1 - math.exp(-1)
        expected = (p * model._full_fetch_s(spec.size_bytes)
                    + (1 - p) * model.config.sw_lookup_s)
        assert cost == pytest.approx(expected, rel=0.01)


class TestLevelAggregation:
    def test_empty_level_is_free(self, model):
        assert model._level_s([]) == 0.0

    def test_single_wave_is_max(self, model):
        assert model._level_s([0.1, 0.2, 0.05]) == pytest.approx(0.2)

    def test_two_waves_sum_maxima(self, model):
        costs = [0.1] * 6 + [0.2] * 6
        # sorted desc: first wave all 0.2s, second all 0.1s
        assert model._level_s(costs) == pytest.approx(0.3)

    def test_zero_costs_filtered(self, model):
        assert model._level_s([0.0, 0.0, 0.3]) == pytest.approx(0.3)

    def test_transfer_time_scales_with_bandwidth(self):
        slow = AnalyticModel(NetworkConditions.of(8, 40))
        fast = AnalyticModel(NetworkConditions.of(60, 40))
        assert slow._transfer_s(100_000) > fast._transfer_s(100_000)

    def test_revalidation_cost_is_rtt_dominated(self, model):
        reval = model._revalidation_s()
        assert reval >= COND.rtt_s
        assert reval < COND.rtt_s + 0.05
