"""Unit tests for the client-side Service Worker host."""

from repro.browser.sw_host import ServiceWorkerHost
from repro.core.etag_config import EtagConfig
from repro.http.etag import ETag, etag_for_content
from repro.http.messages import Request, Response


def html_response_with_config(entries: dict[str, str]) -> Response:
    config = EtagConfig(entries={url: ETag(opaque=tag)
                                 for url, tag in entries.items()})
    response = Response(headers={"Content-Type": "text/html"},
                        body=b"<html></html>")
    config.apply_to(response.headers)
    return response


def asset_response(body: bytes) -> Response:
    return Response(headers={"ETag": str(etag_for_content(body))},
                    body=body)


class TestRegistrationGate:
    def test_unregistered_never_intercepts(self):
        sw = ServiceWorkerHost()
        sw.etag_config = EtagConfig(entries={"/a": ETag("x")})
        assert sw.intercept(Request(url="/a"), now=0.0) is None

    def test_no_config_never_intercepts(self):
        sw = ServiceWorkerHost()
        sw.registered = True
        assert sw.intercept(Request(url="/a"), now=0.0) is None

    def test_observe_registration(self):
        sw = ServiceWorkerHost()
        sw.observe_registration(False)
        assert not sw.registered
        sw.observe_registration(True)
        assert sw.registered
        sw.observe_registration(False)  # once active, stays active
        assert sw.registered


class TestLearning:
    def test_learns_config_from_response(self):
        sw = ServiceWorkerHost()
        sw.on_response(Request(url="/index.html"),
                       html_response_with_config({"/a.css": "tag1"}), 0.0)
        assert sw.knows == 1
        assert sw.etag_config.etag_for("/a.css").opaque == "tag1"

    def test_newer_entries_win_on_merge(self):
        sw = ServiceWorkerHost()
        sw.on_response(Request(url="/index.html"),
                       html_response_with_config({"/a.css": "old"}), 0.0)
        sw.on_response(Request(url="/index.html"),
                       html_response_with_config({"/a.css": "new"}), 1.0)
        assert sw.etag_config.etag_for("/a.css").opaque == "new"

    def test_css_configs_extend(self):
        sw = ServiceWorkerHost()
        sw.on_response(Request(url="/index.html"),
                       html_response_with_config({"/a.css": "t1"}), 0.0)
        sw.on_response(Request(url="/a.css"),
                       html_response_with_config({"/img.png": "t2"}), 1.0)
        assert sw.knows == 2

    def test_caches_only_when_registered(self):
        sw = ServiceWorkerHost()
        sw.on_response(Request(url="/a.png"), asset_response(b"img"), 0.0)
        assert sw.cache.entry_count == 0
        sw.registered = True
        sw.on_response(Request(url="/a.png"), asset_response(b"img"), 1.0)
        assert sw.cache.entry_count == 1


class TestInterception:
    def _warmed(self) -> ServiceWorkerHost:
        sw = ServiceWorkerHost()
        sw.registered = True
        body = b"asset-bytes"
        sw.on_response(Request(url="/a.css"), asset_response(body), 0.0)
        tag = etag_for_content(body).opaque
        sw.on_response(Request(url="/index.html"),
                       html_response_with_config({"/a.css": tag}), 1.0)
        return sw

    def test_hit_when_etag_matches(self):
        sw = self._warmed()
        hit = sw.intercept(Request(url="/a.css"), now=2.0)
        assert hit is not None
        assert hit.body == b"asset-bytes"
        assert sw.intercepted_hits == 1

    def test_miss_when_config_has_new_tag(self):
        sw = self._warmed()
        sw.on_response(Request(url="/index.html"),
                       html_response_with_config({"/a.css": "changed"}), 3.0)
        assert sw.intercept(Request(url="/a.css"), now=4.0) is None

    def test_miss_for_unknown_url(self):
        sw = self._warmed()
        assert sw.intercept(Request(url="/other.css"), now=2.0) is None

    def test_non_get_not_intercepted(self):
        sw = self._warmed()
        assert sw.intercept(Request(method="POST", url="/a.css"),
                            now=2.0) is None

    def test_stats_surface(self):
        sw = self._warmed()
        sw.intercept(Request(url="/a.css"), now=2.0)
        stats = sw.stats()
        assert stats["intercepted_hits"] == 1
        assert stats["entries"] == 2  # the asset plus the HTML itself
