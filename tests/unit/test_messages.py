"""Unit tests for the Request/Response models."""

import pytest

from repro.http.headers import Headers
from repro.http.messages import Request, Response, status_reason


class TestRequest:
    def test_method_uppercased(self):
        assert Request(method="get").method == "GET"

    def test_headers_coerced_from_dict(self):
        req = Request(headers={"Host": "x"})
        assert isinstance(req.headers, Headers)

    def test_path_and_query(self):
        req = Request(url="/a/b?x=1")
        assert req.path == "/a/b"
        assert req.query == "x=1"

    def test_root_path_default(self):
        assert Request(url="").path == "/"

    def test_origin_from_absolute_url(self):
        req = Request(url="https://example.com:8443/a")
        assert req.origin == "https://example.com:8443"

    def test_origin_from_host_header(self):
        req = Request(url="/a", headers={"Host": "example.com"})
        assert req.origin == "https://example.com"

    def test_origin_absent(self):
        assert Request(url="/a").origin is None

    def test_conditional_detection(self):
        assert not Request().is_conditional
        assert Request(headers={"If-None-Match": '"x"'}).is_conditional
        assert Request(
            headers={"If-Modified-Since": "x"}).is_conditional

    def test_copy_deep_enough(self):
        req = Request(url="/a", headers={"A": "1"})
        clone = req.copy()
        clone.headers.set("A", "2")
        assert req.headers["A"] == "1"

    def test_wire_size_positive_and_grows(self):
        small = Request(url="/a").wire_size()
        big = Request(url="/a", headers={"X": "y" * 100}).wire_size()
        assert 0 < small < big


class TestResponse:
    def test_reason_defaults_from_status(self):
        assert Response(status=404).reason == "Not Found"
        assert Response(status=200).reason == "OK"

    def test_custom_reason_kept(self):
        assert Response(status=200, reason="Fine").reason == "Fine"

    def test_ok_range(self):
        assert Response(status=204).ok
        assert not Response(status=304).ok
        assert not Response(status=500).ok

    def test_is_not_modified(self):
        assert Response(status=304).is_not_modified

    def test_etag_parsed(self):
        resp = Response(headers={"ETag": 'W/"v1"'})
        assert resp.etag.opaque == "v1"
        assert resp.etag.weak

    def test_malformed_etag_is_none(self):
        assert Response(headers={"ETag": "garbage"}).etag is None

    def test_cache_control_parsed(self):
        resp = Response(headers={"Cache-Control": "no-store"})
        assert resp.cache_control.no_store

    def test_cache_control_joins_multiple_fields(self):
        headers = Headers([("Cache-Control", "no-cache"),
                           ("Cache-Control", "max-age=5")])
        cc = Response(headers=headers).cache_control
        assert cc.no_cache and cc.max_age == 5

    def test_transfer_size_defaults_to_body(self):
        assert Response(body=b"abc").transfer_size == 3

    def test_declared_size_overrides(self):
        resp = Response(body=b"abc", declared_size=1_000_000)
        assert resp.transfer_size == 1_000_000
        assert len(resp.body) == 3

    def test_negative_declared_size_rejected(self):
        with pytest.raises(ValueError):
            Response(declared_size=-1)

    def test_copy_preserves_declared_size(self):
        resp = Response(body=b"x", declared_size=500)
        assert resp.copy().transfer_size == 500


class TestStatusReason:
    def test_known(self):
        assert status_reason(304) == "Not Modified"

    def test_unknown_is_empty(self):
        assert status_reason(799) == ""
