"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _restore_log_level():
    """``main(["--quiet", ...])`` sets the process-wide log level;
    don't let that leak into other tests' stderr assertions."""
    saved = obs_log._level
    yield
    obs_log._level = saved


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure3_defaults(self):
        args = build_parser().parse_args(["figure3"])
        assert args.sites == 6
        assert args.throughputs == (8.0, 60.0)

    def test_float_list_parsing(self):
        args = build_parser().parse_args(
            ["figure3", "--throughputs", "8,16,60"])
        assert args.throughputs == (8.0, 16.0, 60.0)

    def test_bad_float_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3", "--throughputs", "a,b"])

    def test_visit_options(self):
        args = build_parser().parse_args(
            ["visit", "--seed", "3", "--delay", "6h", "--rtt", "80"])
        assert args.seed == 3
        assert args.delay == "6h"
        assert args.rtt == 80.0

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.url == "/index.html"
        assert args.mode == "catalyst"
        assert args.trace_out == "trace.json"
        assert args.fault_rate == 0.0

    def test_quiet_is_global(self):
        args = build_parser().parse_args(["--quiet", "figure1"])
        assert args.quiet is True

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.sites is None
        assert args.backend == "auto"
        assert args.delays == "1min,1h,6h,1d,1w"
        assert args.throughputs == (8.0, 16.0, 30.0, 60.0)
        assert not args.validate and not args.bench

    def test_sweep_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "fortran"])


class TestCommands:
    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "(a) first visit" in out
        assert "CacheCatalyst" in out

    def test_visit_runs(self, capsys):
        assert main(["visit", "--seed", "3", "--delay", "1h"]) == 0
        out = capsys.readouterr().out
        assert "catalyst" in out and "standard" in out

    def test_visit_waterfall(self, capsys):
        assert main(["visit", "--seed", "3", "--delay", "1h",
                     "--waterfall"]) == 0
        assert "PLT=" in capsys.readouterr().out

    def test_motivation_runs(self, capsys):
        # full corpus; moderate runtime, exercised once here
        assert main(["motivation"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_figure3_tiny_runs(self, capsys):
        assert main(["figure3", "--sites", "2", "--throughputs", "60",
                     "--latencies", "40", "--delays", "1h"]) == 0
        out = capsys.readouterr().out
        assert "PLT reduction" in out

    def test_crosspage_runs(self, capsys):
        assert main(["crosspage"]) == 0
        assert "inner" in capsys.readouterr().out

    def test_serverload_runs(self, capsys):
        assert main(["serverload"]) == 0
        out = capsys.readouterr().out
        assert "origin requests" in out

    def test_userweighted_runs(self, capsys):
        assert main(["userweighted"]) == 0
        assert "user-weighted" in capsys.readouterr().out

    def test_bench_runs_and_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_PR3.json"
        assert main(["bench", "--sites", "1", "--repeats", "2",
                     "--out", str(out)]) == 0
        assert "warm-path speedup" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["bench"] == "server_hot_path"
        assert payload["byte_identical"] is True

    def test_trace_writes_perfetto_artifact(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        har = tmp_path / "warm.har"
        assert main(["trace", "--seed", "3", "--trace-out", str(out),
                     "--har-out", str(har)]) == 0
        stdout = capsys.readouterr().out
        assert "spans across" in stdout
        assert "cold" in stdout and "warm" in stdout
        trace = json.loads(out.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert events and all(e["ts"] >= 0 for e in events)
        entries = json.loads(har.read_text())["log"]["entries"]
        assert entries and all("_traceId" in e for e in entries)

    def test_bench_min_speedup_gate(self, capsys, tmp_path):
        # an absurd floor must trip the gate without crashing
        out = tmp_path / "BENCH_PR3.json"
        assert main(["bench", "--sites", "1", "--repeats", "2",
                     "--out", str(out), "--min-speedup", "1e9"]) == 1

    def test_sweep_runs_and_writes_grid(self, capsys, tmp_path):
        out = tmp_path / "sweep.txt"
        assert main(["--quiet", "sweep", "--sites", "4",
                     "--throughputs", "8,60", "--latencies", "10,100",
                     "--delays", "1h,1d", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "PLT reduction" in stdout
        assert "revisit delay" in stdout
        assert "PLT reduction" in out.read_text()

    def test_sweep_python_backend_matches_auto(self, capsys):
        assert main(["--quiet", "sweep", "--sites", "2",
                     "--throughputs", "8", "--latencies", "40",
                     "--delays", "1d", "--backend", "python"]) == 0
        assert "python backend" in capsys.readouterr().out

    def test_sweep_bad_delay_is_handled(self, capsys):
        assert main(["--quiet", "sweep", "--delays", "notaduration"]) == 2

    def test_sweep_bench_writes_artifact_and_gates(self, capsys, tmp_path):
        out = tmp_path / "BENCH_PR8.json"
        assert main(["--quiet", "sweep", "--bench", "--sites", "4",
                     "--rounds", "1", "--bench-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["bench"] == "analytic_sweep"
        assert payload["analytic_sweep"]["estimates_per_s_fallback"] > 0
        assert "manifest" in payload
        # an absurd floor must trip the gate without crashing
        assert main(["--quiet", "sweep", "--bench", "--sites", "4",
                     "--rounds", "1", "--bench-out", str(out),
                     "--min-estimates", "1e15"]) == 1
