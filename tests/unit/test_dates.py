"""Unit tests for HTTP-date handling."""

import pytest

from repro.http.dates import format_http_date, parse_http_date

_CANONICAL = "Sun, 06 Nov 1994 08:49:37 GMT"
_TIMESTAMP = 784111777.0


class TestParse:
    def test_imf_fixdate(self):
        assert parse_http_date(_CANONICAL) == _TIMESTAMP

    def test_rfc850(self):
        assert parse_http_date(
            "Sunday, 06-Nov-94 08:49:37 GMT") == _TIMESTAMP

    def test_asctime(self):
        assert parse_http_date("Sun Nov  6 08:49:37 1994") == _TIMESTAMP

    def test_whitespace_tolerated(self):
        assert parse_http_date(f"  {_CANONICAL}  ") == _TIMESTAMP

    @pytest.mark.parametrize("bad", ["", "not a date", "32 Foo 2024",
                                     "Sun, 99 Nov 1994 08:49:37 GMT"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_http_date(bad)


class TestFormat:
    def test_canonical_output(self):
        assert format_http_date(_TIMESTAMP) == _CANONICAL

    def test_round_trip(self):
        for ts in (0.0, 1704067200.0, 2_000_000_000.0):
            assert parse_http_date(format_http_date(ts)) == ts

    def test_epoch(self):
        assert format_http_date(0.0) == "Thu, 01 Jan 1970 00:00:00 GMT"
