"""Unit tests for the revisit-interval model and user-weighted runs."""

import random

import pytest

from repro.netsim.clock import DAY, HOUR, MINUTE
from repro.workload.revisits import DEFAULT_REVISIT_MODEL, RevisitModel


class TestRevisitModel:
    def test_draws_within_clamps(self):
        rng = random.Random(1)
        for _ in range(500):
            delay = DEFAULT_REVISIT_MODEL.draw(rng)
            assert DEFAULT_REVISIT_MODEL.min_delay_s <= delay \
                <= DEFAULT_REVISIT_MODEL.max_delay_s

    def test_deterministic_given_seed(self):
        a = DEFAULT_REVISIT_MODEL.draw_many(random.Random(7), 50)
        b = DEFAULT_REVISIT_MODEL.draw_many(random.Random(7), 50)
        assert a == b

    def test_heavy_tail_shape(self):
        """Median within hours; p90 spans days — the documented shape."""
        q50, q90 = DEFAULT_REVISIT_MODEL.quantiles([0.5, 0.9], seed=2)
        assert MINUTE < q50 < DAY
        assert q90 > 12 * HOUR
        assert q90 > 5 * q50

    def test_quantiles_monotone(self):
        qs = DEFAULT_REVISIT_MODEL.quantiles([0.1, 0.5, 0.9, 0.99],
                                             seed=3, samples=5000)
        assert qs == sorted(qs)

    def test_session_returns_dominate_short_end(self):
        rng = random.Random(4)
        draws = DEFAULT_REVISIT_MODEL.draw_many(rng, 2000)
        within_hour = sum(1 for d in draws if d <= HOUR) / len(draws)
        assert 0.25 < within_hour < 0.65


class TestUserWeighted:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.user_weighted import run_user_weighted
        return run_user_weighted(sites=3, revisits_per_site=2)

    def test_positive_mean_reduction(self, result):
        assert result.summary.mean > 0.10

    def test_sample_bookkeeping(self, result):
        assert len(result.reductions) == len(result.delays_s) == 6

    def test_format_mentions_ci(self, result):
        assert "95% CI" in result.format()

    def test_deterministic(self):
        from repro.experiments.user_weighted import run_user_weighted
        a = run_user_weighted(sites=2, revisits_per_site=2, seed=5)
        b = run_user_weighted(sites=2, revisits_per_site=2, seed=5)
        assert a.reductions == b.reductions

    def test_cdf_matches_draw_distribution(self):
        """RevisitModel.cdf is the closed form the fleet's delay bins
        price with — it must agree with the sampler."""
        rng = random.Random(9)
        draws = sorted(DEFAULT_REVISIT_MODEL.draw(rng)
                       for _ in range(5000))
        for x in (10 * MINUTE, HOUR, 6 * HOUR, DAY):
            empirical = sum(1 for d in draws if d <= x) / len(draws)
            assert abs(empirical - DEFAULT_REVISIT_MODEL.cdf(x)) < 0.03

    def test_cdf_clamps_and_monotone(self):
        model = DEFAULT_REVISIT_MODEL
        assert model.cdf(model.min_delay_s / 2) == 0.0
        assert model.cdf(model.max_delay_s) == 1.0
        probes = [model.min_delay_s * (1.5 ** k) for k in range(30)]
        values = [model.cdf(x) for x in probes]
        assert values == sorted(values)

    def test_is_single_cohort_population_view(self, result):
        """The measured (site, delay) pairs are exactly the population
        sampler's first warm entries for the one-cohort spec — the
        experiment is a view, not a second workload generator."""
        from repro.experiments.user_weighted import user_weighted_spec
        from repro.netsim.link import NetworkConditions
        from repro.workload.population import sample_visits

        spec = user_weighted_spec(
            NetworkConditions.of(60, 40, label="60Mbps/40ms"),
            sites=3, revisits_per_site=2)
        visits = sample_visits(spec, 6, measured_only=False,
                               warm_only=True)
        assert [v.delay_s for v in visits] == result.delays_s
        assert all(v.delay_s is not None for v in visits)
