"""Unit tests for the revisit-interval model and user-weighted runs."""

import random

import pytest

from repro.netsim.clock import DAY, HOUR, MINUTE
from repro.workload.revisits import DEFAULT_REVISIT_MODEL, RevisitModel


class TestRevisitModel:
    def test_draws_within_clamps(self):
        rng = random.Random(1)
        for _ in range(500):
            delay = DEFAULT_REVISIT_MODEL.draw(rng)
            assert DEFAULT_REVISIT_MODEL.min_delay_s <= delay \
                <= DEFAULT_REVISIT_MODEL.max_delay_s

    def test_deterministic_given_seed(self):
        a = DEFAULT_REVISIT_MODEL.draw_many(random.Random(7), 50)
        b = DEFAULT_REVISIT_MODEL.draw_many(random.Random(7), 50)
        assert a == b

    def test_heavy_tail_shape(self):
        """Median within hours; p90 spans days — the documented shape."""
        q50, q90 = DEFAULT_REVISIT_MODEL.quantiles([0.5, 0.9], seed=2)
        assert MINUTE < q50 < DAY
        assert q90 > 12 * HOUR
        assert q90 > 5 * q50

    def test_quantiles_monotone(self):
        qs = DEFAULT_REVISIT_MODEL.quantiles([0.1, 0.5, 0.9, 0.99],
                                             seed=3, samples=5000)
        assert qs == sorted(qs)

    def test_session_returns_dominate_short_end(self):
        rng = random.Random(4)
        draws = DEFAULT_REVISIT_MODEL.draw_many(rng, 2000)
        within_hour = sum(1 for d in draws if d <= HOUR) / len(draws)
        assert 0.25 < within_hour < 0.65


class TestUserWeighted:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.user_weighted import run_user_weighted
        return run_user_weighted(sites=3, revisits_per_site=2)

    def test_positive_mean_reduction(self, result):
        assert result.summary.mean > 0.10

    def test_sample_bookkeeping(self, result):
        assert len(result.reductions) == len(result.delays_s) == 6

    def test_format_mentions_ci(self, result):
        assert "95% CI" in result.format()

    def test_deterministic(self):
        from repro.experiments.user_weighted import run_user_weighted
        a = run_user_weighted(sites=2, revisits_per_site=2, seed=5)
        b = run_user_weighted(sites=2, revisits_per_site=2, seed=5)
        assert a.reductions == b.reductions
