"""Unit tests for the repro.perf micro-profiling layer."""

import pytest

from repro.perf import PerfCounters, percentile


class TestPercentile:
    def test_midpoint_interpolation(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        samples = [5, 1, 9, 3]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_single_sample(self):
        assert percentile([42], 99) == 42.0

    def test_unsorted_input(self):
        assert percentile([30, 10, 20], 50) == 20.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestPerfCounters:
    def test_record_and_snapshot(self):
        perf = PerfCounters()
        for ns in (100, 200, 300):
            perf.record_handle_ns(ns)
        perf.render_hits = 2
        perf.html_parses = 1
        snap = perf.snapshot()
        assert snap["handle_count"] == 3
        assert snap["handle_ns_total"] == 600
        assert snap["handle_ns_mean"] == 200
        assert snap["handle_ns_p50"] == 200
        assert snap["render_hits"] == 2
        assert snap["parses_avoided"] == 0

    def test_timed_handle_context(self):
        perf = PerfCounters()
        with perf.timed_handle():
            pass
        assert perf.handle_count == 1
        assert perf.handle_samples_ns[0] >= 0

    def test_ring_bounds_memory(self):
        perf = PerfCounters(max_samples=4)
        for ns in range(10):
            perf.record_handle_ns(ns)
        assert len(perf.handle_samples_ns) == 4
        assert perf.handle_count == 10  # total keeps counting
        assert perf.handle_ns_total == sum(range(10))
        # ring holds the most recent window
        assert set(perf.handle_samples_ns) == {6, 7, 8, 9}

    def test_reset(self):
        perf = PerfCounters()
        perf.record_handle_ns(5)
        perf.map_builds = 3
        perf.reset()
        assert perf.handle_count == 0
        assert perf.map_builds == 0
        assert perf.handle_samples_ns == []
        assert perf.snapshot()["handle_ns_mean"] == 0.0

    def test_parses_avoided_is_ref_hits(self):
        perf = PerfCounters()
        perf.ref_hits = 7
        assert perf.parses_avoided == 7

    def test_empty_percentile_is_zero(self):
        # Regression: used to raise ValueError (percentile([]) on an
        # empty ring) when a snapshot was taken before any request —
        # e.g. the stats endpoint of a freshly started server.
        perf = PerfCounters()
        assert perf.handle_percentile_ns(50) == 0.0
        assert perf.handle_percentile_ns(99) == 0.0
        assert perf.mean_handle_ns() == 0.0  # the behaviour it mirrors
        snap = perf.snapshot()  # must not raise mid-stats
        assert snap["handle_ns_mean"] == 0.0
        assert "handle_ns_p50" not in snap  # empty ring emits no p-keys
