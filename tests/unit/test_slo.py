"""Declarative SLOs with sliding burn-rate windows."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (Objective, default_loadtest_policy, evaluate)
from repro.obs.timeseries import TimeSeriesRecorder


def latency_objective(threshold=100.0, window=2, burn_limit=1.0):
    return Objective(name="p99-lat", kind="latency",
                     metric="http.request_ms", percentile=99.0,
                     threshold=threshold, window_intervals=window,
                     burn_limit=burn_limit)


def ratio_objective(max_ratio=0.1, window=2):
    return Objective(name="errors", kind="ratio", bad="http.status.5xx",
                     good="http.status.2xx", max_ratio=max_ratio,
                     window_intervals=window)


def interval(latencies=(), bad=0, good=0) -> MetricsRegistry:
    registry = MetricsRegistry()
    hist = registry.histogram("http.request_ms")
    for value in latencies:
        hist.observe(value)
    if bad:
        registry.counter("http.status.5xx").inc(bad)
    if good:
        registry.counter("http.status.2xx").inc(good)
    return registry


def series(*registries):
    return list(enumerate(registries))


class TestObjectiveValidation:
    def test_latency_needs_metric_and_threshold(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="latency", metric="m", threshold=0)
        with pytest.raises(ValueError):
            Objective(name="x", kind="latency", threshold=5.0)

    def test_ratio_needs_bad_good_and_max_ratio(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="ratio", bad="b", good="g",
                      max_ratio=0.0)
        with pytest.raises(ValueError):
            Objective(name="x", kind="ratio", max_ratio=0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="availability")


class TestLatencyEvaluation:
    def test_healthy_run_passes(self):
        report = evaluate([latency_objective(threshold=100.0)],
                          series(interval([10.0] * 50),
                                 interval([12.0] * 50),
                                 interval([11.0] * 50)))
        assert report.passed
        assert not report.results[0].breached

    def test_sustained_breach_fails(self):
        report = evaluate([latency_objective(threshold=100.0)],
                          series(interval([500.0] * 50),
                                 interval([500.0] * 50),
                                 interval([500.0] * 50)))
        assert not report.passed
        worst = report.results[0].worst
        assert worst.breached
        assert worst.burn_rate > 1.0

    def test_single_bad_interval_inside_ok_window_tolerated(self):
        # window pools the histograms: one bad interval out of many
        # good ones only breaches if it drags the pooled p99 over
        report = evaluate(
            [latency_objective(threshold=100.0, window=2)],
            series(interval([10.0] * 1000),
                   interval([10.0] * 999 + [120.0]),
                   interval([10.0] * 1000)))
        assert report.passed

    def test_zero_traffic_windows_skipped(self):
        report = evaluate([latency_objective()],
                          series(interval(), interval(), interval()))
        assert report.passed
        assert report.results[0].windows == []

    def test_short_run_clamps_window(self):
        report = evaluate([latency_objective(window=10)],
                          series(interval([500.0] * 10)))
        assert not report.passed  # one clamped window still evaluates


class TestRatioEvaluation:
    def test_clean_ratio_passes(self):
        report = evaluate([ratio_objective(max_ratio=0.1)],
                          series(interval(good=100),
                                 interval(good=100, bad=5)))
        assert report.passed

    def test_burning_ratio_fails(self):
        report = evaluate([ratio_objective(max_ratio=0.1)],
                          series(interval(good=50, bad=50),
                                 interval(good=50, bad=50)))
        assert not report.passed
        assert report.results[0].worst.measured == pytest.approx(0.5)

    def test_burn_rate_is_measured_over_target(self):
        report = evaluate([ratio_objective(max_ratio=0.1, window=1)],
                          series(interval(good=80, bad=20)))
        assert report.results[0].worst.burn_rate == pytest.approx(2.0)


class TestReportShapes:
    def run_report(self):
        return evaluate([latency_objective(threshold=50.0),
                         ratio_objective()],
                        series(interval([500.0] * 20, good=100)))

    def test_format_mentions_breach_and_names(self):
        text = self.run_report().format()
        assert "BREACH" in text
        assert "p99-lat" in text
        assert "errors" in text

    def test_payload_json_safe(self):
        import json
        payload = self.run_report().payload()
        json.dumps(payload)
        assert payload["passed"] is False
        assert {o["name"] for o in payload["objectives"]} \
            == {"p99-lat", "errors"}

    def test_recorder_input_equivalent_to_intervals(self):
        recorder = TimeSeriesRecorder(interval_s=1.0)
        source = interval([500.0] * 20)
        recorder.record(source.dump(), 0.5)
        via_recorder = evaluate([latency_objective(window=1)], recorder)
        via_list = evaluate([latency_objective(window=1)],
                            series(interval([500.0] * 20)))
        assert via_recorder.passed == via_list.passed is False


class TestDefaultPolicy:
    def test_policy_has_three_objectives(self):
        policy = default_loadtest_policy()
        assert {o.name for o in policy} \
            == {"latency-p99", "shed-rate", "error-ratio"}

    def test_policy_overrides_propagate(self):
        policy = default_loadtest_policy(p99_ms=10.0, max_shed_rate=0.2,
                                         max_error_ratio=0.01)
        by_name = {o.name: o for o in policy}
        assert by_name["latency-p99"].threshold == 10.0
        assert by_name["shed-rate"].max_ratio == 0.2
        assert by_name["error-ratio"].max_ratio == 0.01
