"""Unit tests for Early-Hints planning and the hinted load path."""

import pytest

from repro.browser.metrics import FetchSource
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.netsim.link import NetworkConditions
from repro.server.hints import HintPlanner
from repro.server.site import OriginSite
from repro.workload.sitegen import (SiteShape, freeze_site, generate_site,
                                    render_html)

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site_spec():
    return freeze_site(generate_site(
        "https://hints.example", seed=11, median_resources=20,
        shape=SiteShape(js_fetching_share=0.8)))


@pytest.fixture(scope="module")
def site(site_spec):
    return OriginSite(site_spec)


def markup_of(site):
    return render_html(site.spec.index, version=0)


class TestHintPlanner:
    def test_dom_resources_hinted(self, site):
        planner = HintPlanner(site=site, include_css_children=False,
                              include_profiled_js=False)
        urls = planner.hint_urls(markup_of(site))
        assert set(urls) == set(site.spec.index.html_refs)

    def test_css_children_included(self, site):
        planner = HintPlanner(site=site, include_profiled_js=False)
        urls = set(planner.hint_urls(markup_of(site)))
        for spec in site.spec.index.iter_resources():
            if spec.discovered_via == "css":
                assert spec.url in urls

    def test_profiled_js_children_included(self, site):
        planner = HintPlanner(site=site)
        urls = set(planner.hint_urls(markup_of(site)))
        for spec in site.spec.index.iter_resources():
            if spec.discovered_via == "js" and not spec.dynamic:
                assert spec.url in urls

    def test_dynamic_resources_never_hinted(self, site):
        planner = HintPlanner(site=site)
        urls = set(planner.hint_urls(markup_of(site)))
        for spec in site.spec.index.iter_resources():
            if spec.dynamic:
                assert spec.url not in urls

    def test_no_duplicates(self, site):
        urls = HintPlanner(site=site).hint_urls(markup_of(site))
        assert len(urls) == len(set(urls))

    def test_cross_origin_skipped(self, site):
        planner = HintPlanner(site=site)
        markup = ('<html><head>'
                  '<script src="https://other.example/x.js"></script>'
                  '</head></html>')
        assert planner.hint_urls(markup) == []

    def test_planning_does_not_count_requests(self, site):
        before = dict(site.request_counts)
        HintPlanner(site=site).hint_urls(markup_of(site))
        assert site.request_counts == before


class TestHintedLoads:
    def test_mode_builds(self, site_spec):
        setup = build_mode(CachingMode.HINTS, site_spec)
        assert setup.hint_urls_fn is not None
        assert setup.push_urls_fn is None

    def test_hinted_cold_not_slower_materially(self, site_spec):
        plts = {}
        for mode in (CachingMode.NO_CACHE, CachingMode.HINTS):
            setup = build_mode(mode, site_spec)
            outcomes = run_visit_sequence(setup, COND, [0.0])
            plts[mode] = outcomes[0].result.plt_s
        assert plts[CachingMode.HINTS] <= plts[CachingMode.NO_CACHE] * 1.05

    def test_hints_compress_discovery_on_deep_chains(self):
        """On a small deep page at high RTT, hinted JS children arrive
        before the scripts that would have discovered them."""
        deep = freeze_site(generate_site(
            "https://deep.example", seed=11, median_resources=14,
            shape=SiteShape(js_fetching_share=0.9, js_children_mean=2.5)))
        conditions = NetworkConditions.of(60, 200)
        nested_urls = {s.url for s in deep.index.iter_resources()
                       if s.discovered_via in ("css", "js")
                       and not s.dynamic}
        assert nested_urls  # the page does have chains
        ends = {}
        for mode in (CachingMode.NO_CACHE, CachingMode.HINTS):
            setup = build_mode(mode, deep)
            result = run_visit_sequence(setup, conditions,
                                        [0.0])[0].result
            ends[mode] = {e.url: e.end_s for e in result.events
                          if e.url in nested_urls}
        for url in nested_urls:
            assert ends[CachingMode.HINTS][url] <= \
                ends[CachingMode.NO_CACHE][url] + 1e-9

    def test_hints_do_not_block_onload_for_unneeded(self, site_spec):
        setup = build_mode(CachingMode.HINTS, site_spec)
        result = run_visit_sequence(setup, COND, [0.0])[0].result
        # every event belongs to the page load window
        for event in result.events:
            assert event.end_s <= result.onload_s + 1e-9

    def test_catalyst_hints_compose(self, site_spec):
        """catalyst-hints >= catalyst on warm visits (never worse)."""
        from repro.netsim.clock import DAY
        warm = {}
        for mode in (CachingMode.CATALYST, CachingMode.CATALYST_HINTS):
            setup = build_mode(mode, site_spec)
            outcomes = run_visit_sequence(setup, COND, [0.0, DAY])
            warm[mode] = outcomes[1].result.plt_s
        assert warm[CachingMode.CATALYST_HINTS] <= \
            warm[CachingMode.CATALYST] * 1.05

    def test_hints_do_not_remove_revalidations(self, site_spec):
        """The §5 distinction: hinted fetches still revalidate."""
        from repro.netsim.clock import DAY
        setup = build_mode(CachingMode.HINTS, site_spec)
        outcomes = run_visit_sequence(setup, COND, [0.0, DAY])
        warm_sources = outcomes[1].result.count_by_source()
        assert warm_sources.get(FetchSource.REVALIDATED, 0) > 0