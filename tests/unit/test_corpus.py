"""Unit tests for the top-100 corpus."""

import pytest

from repro.workload.corpus import make_corpus


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(size=40, seed=2024)


class TestMakeCorpus:
    def test_size(self, corpus):
        assert len(corpus) == 40

    def test_deterministic(self, corpus):
        again = make_corpus(size=40, seed=2024)
        assert [s.origin for s in again] == [s.origin for s in corpus]
        assert again[0].index.resources == corpus[0].index.resources

    def test_unique_origins(self, corpus):
        origins = [site.origin for site in corpus]
        assert len(set(origins)) == len(origins)

    def test_archetype_diversity(self, corpus):
        archetypes = {site.origin.rsplit("-", 1)[-1].split(".")[0]
                      for site in corpus}
        assert len(archetypes) >= 3

    def test_median_page_weight_plausible(self, corpus):
        """httparchive-ish: a couple of MB per page, not 100 kB, not 50 MB."""
        weights = sorted(site.index.total_bytes for site in corpus)
        median = weights[len(weights) // 2]
        assert 800_000 < median < 10_000_000

    def test_median_resource_count_plausible(self, corpus):
        counts = sorted(site.index.resource_count for site in corpus)
        median = counts[len(counts) // 2]
        assert 40 < median < 250


class TestSample:
    def test_sample_subset(self, corpus):
        sub = corpus.sample(5, seed=1)
        assert len(sub) == 5
        assert all(s in corpus.sites for s in sub.sites)

    def test_sample_deterministic(self, corpus):
        a = corpus.sample(5, seed=1)
        b = corpus.sample(5, seed=1)
        assert [s.origin for s in a] == [s.origin for s in b]

    def test_sample_larger_than_corpus_is_everything(self, corpus):
        assert len(corpus.sample(1000)) == len(corpus)


class TestFrozen:
    def test_frozen_corpus_is_static(self, corpus):
        frozen = corpus.frozen()
        site = frozen[0]
        for spec in site.index.iter_resources():
            if not spec.dynamic:
                assert spec.fixed_change_times == ()

    def test_total_resources(self, corpus):
        assert corpus.total_resources == sum(
            s.index.resource_count for s in corpus)
