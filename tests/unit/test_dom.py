"""Unit tests for the DOM tree."""

from repro.html.dom import Document, Element, Text


def tree() -> Document:
    img = Element(tag="img", attrs={"src": "a.png"})
    p = Element(tag="p", children=[Text("hello "), Element(tag="b",
                children=[Text("bold")])])
    body = Element(tag="body", children=[p, img])
    head = Element(tag="head", children=[Element(tag="title",
                   children=[Text("t")])])
    html = Element(tag="html", children=[head, body])
    return Document(root=Element(tag="#root", children=[html]))


class TestTraversal:
    def test_walk_is_document_order(self):
        tags = [el.tag for el in tree().walk()]
        assert tags == ["#root", "html", "head", "title", "body", "p", "b",
                        "img"]

    def test_find_first(self):
        assert tree().find("img").get("src") == "a.png"

    def test_find_missing_is_none(self):
        assert tree().find("video") is None

    def test_find_all(self):
        doc = tree()
        assert len(list(doc.find_all("p"))) == 1

    def test_head_body_properties(self):
        doc = tree()
        assert doc.head.tag == "head"
        assert doc.body.tag == "body"


class TestContent:
    def test_text_content_concatenates(self):
        doc = tree()
        assert doc.find("p").text_content() == "hello bold"

    def test_attrs_case_insensitive_get(self):
        el = Element(tag="a", attrs={"href": "/x"})
        assert el.get("HREF") == "/x"
        assert el.has_attr("Href")

    def test_get_default(self):
        assert Element(tag="a").get("href", "fallback") == "fallback"


class TestSerialization:
    def test_to_html_void_element(self):
        el = Element(tag="img", attrs={"src": "a.png"})
        assert el.to_html() == '<img src="a.png">'

    def test_to_html_nested(self):
        el = Element(tag="p", children=[Text("x"), Element(tag="br")])
        assert el.to_html() == "<p>x<br></p>"

    def test_valueless_attr(self):
        el = Element(tag="script", attrs={"async": None, "src": "s.js"})
        assert el.to_html() == '<script async src="s.js"></script>'

    def test_attr_escaping(self):
        el = Element(tag="a", attrs={"title": 'has "quotes" & <angles>'})
        html = el.to_html()
        assert "&quot;" in html and "&amp;" in html and "&lt;" in html

    def test_document_to_html_has_doctype(self):
        assert tree().to_html().startswith("<!DOCTYPE html>")
