"""Unit tests for the BENCH_*.json perf-trajectory gate."""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "compare_bench.py")
_spec = importlib.util.spec_from_file_location("compare_bench",
                                               _MODULE_PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _payload(cached_warm: float) -> dict:
    return {"bench": "server_hot_path",
            "throughput_rps": {"cached_warm": cached_warm}}


def _write(directory: pathlib.Path, name: str, payload: dict) -> None:
    (directory / name).write_text(json.dumps(payload))


class TestCompare:
    def test_within_threshold_passes(self):
        ok, messages = compare_bench.compare(_payload(1000), _payload(900))
        assert ok
        assert any("ok" in m for m in messages)

    def test_improvement_passes(self):
        ok, _ = compare_bench.compare(_payload(1000), _payload(4000))
        assert ok

    def test_large_regression_fails(self):
        ok, messages = compare_bench.compare(_payload(1000), _payload(500))
        assert not ok
        assert any("REGRESSION" in m for m in messages)

    def test_custom_threshold(self):
        ok, _ = compare_bench.compare(_payload(1000), _payload(950),
                                      threshold=0.01)
        assert not ok

    def test_missing_metric_not_fatal(self):
        ok, messages = compare_bench.compare({}, _payload(100))
        assert ok
        assert any("not comparable" in m for m in messages)


class TestFindBenches:
    def test_orders_by_pr_number(self, tmp_path):
        for name in ("BENCH_PR10.json", "BENCH_PR3.json", "BENCH_PR4.json"):
            _write(tmp_path, name, _payload(1))
        names = [p.name for p in compare_bench.find_benches(tmp_path)]
        assert names == ["BENCH_PR3.json", "BENCH_PR4.json",
                         "BENCH_PR10.json"]

    def test_ignores_non_bench_files(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1))
        (tmp_path / "server_load.txt").write_text("table")
        assert len(compare_bench.find_benches(tmp_path)) == 1


class TestMain:
    def test_single_artifact_passes(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_empty_dir_passes(self, tmp_path):
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_regression_fails(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        _write(tmp_path, "BENCH_PR4.json", _payload(100))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1

    def test_newest_vs_previous_only(self, tmp_path):
        # PR3 -> PR4 regressed, PR4 -> PR5 is fine: gate looks at the
        # newest pair only
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        _write(tmp_path, "BENCH_PR4.json", _payload(100))
        _write(tmp_path, "BENCH_PR5.json", _payload(120))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_unreadable_artifact_fails(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        (tmp_path / "BENCH_PR4.json").write_text("{not json")
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1
