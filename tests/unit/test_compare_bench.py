"""Unit tests for the BENCH_*.json perf-trajectory gate."""

import importlib.util
import json
import pathlib

import pytest

from repro.obs.manifest import build_manifest

_MODULE_PATH = (pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "compare_bench.py")
_spec = importlib.util.spec_from_file_location("compare_bench",
                                               _MODULE_PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _payload(cached_warm: float, config: dict = None,
             manifest: bool = True) -> dict:
    payload = {"bench": "server_hot_path",
               "throughput_rps": {"cached_warm": cached_warm}}
    if manifest:
        payload["manifest"] = build_manifest(
            config=config or {"bench": "server_hot_path", "sites": 3,
                              "seed": 21},
            sampling={"repeats": 300}, seeds=[21])
    return payload


def _write(directory: pathlib.Path, name: str, payload: dict) -> None:
    (directory / name).write_text(json.dumps(payload))


class TestCompare:
    def test_within_threshold_passes(self):
        ok, messages = compare_bench.compare(_payload(1000), _payload(900))
        assert ok
        assert any("ok" in m for m in messages)

    def test_improvement_passes(self):
        ok, _ = compare_bench.compare(_payload(1000), _payload(4000))
        assert ok

    def test_large_regression_fails(self):
        ok, messages = compare_bench.compare(_payload(1000), _payload(500))
        assert not ok
        assert any("REGRESSION" in m for m in messages)

    def test_custom_threshold(self):
        ok, _ = compare_bench.compare(_payload(1000), _payload(950),
                                      threshold=0.01)
        assert not ok

    def test_missing_metric_not_fatal(self):
        ok, messages = compare_bench.compare({}, _payload(100))
        assert ok
        assert any("not comparable" in m for m in messages)

    def test_population_fleet_keys_gated(self):
        def fleet_payload(vectorized, fallback, des):
            return {"bench": "population_fleet",
                    "population_fleet": {
                        "analytic_visits_per_s_vectorized": vectorized,
                        "analytic_visits_per_s_fallback": fallback,
                        "des_visits_per_s": des}}
        ok, _ = compare_bench.compare(fleet_payload(3e8, 4e7, 7.0),
                                      fleet_payload(2.9e8, 3.9e7, 6.8))
        assert ok
        ok, messages = compare_bench.compare(fleet_payload(3e8, 4e7, 7.0),
                                             fleet_payload(1e8, 4e7, 7.0))
        assert not ok
        assert any("vectorized" in m and "REGRESSION" in m
                   for m in messages)


class TestFindBenches:
    def test_orders_by_pr_number(self, tmp_path):
        for name in ("BENCH_PR10.json", "BENCH_PR3.json", "BENCH_PR4.json"):
            _write(tmp_path, name, _payload(1))
        names = [p.name for p in compare_bench.find_benches(tmp_path)]
        assert names == ["BENCH_PR3.json", "BENCH_PR4.json",
                         "BENCH_PR10.json"]

    def test_ignores_non_bench_files(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1))
        (tmp_path / "server_load.txt").write_text("table")
        assert len(compare_bench.find_benches(tmp_path)) == 1


class TestMain:
    def test_single_artifact_passes(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_empty_dir_passes(self, tmp_path):
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_regression_fails(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        _write(tmp_path, "BENCH_PR4.json", _payload(100))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1

    def test_newest_vs_previous_only(self, tmp_path):
        # PR3 -> PR4 regressed, PR4 -> PR5 is fine: gate looks at the
        # newest pair only
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        _write(tmp_path, "BENCH_PR4.json", _payload(100))
        _write(tmp_path, "BENCH_PR5.json", _payload(120))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_unreadable_artifact_fails(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000))
        (tmp_path / "BENCH_PR4.json").write_text("{not json")
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1


class TestProvenance:
    """Manifest validation + cross-config refusal (the loud gate)."""

    def test_missing_manifest_fails_loudly(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_PR3.json", _payload(1000, manifest=False))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1
        assert "missing run manifest" in capsys.readouterr().err

    def test_missing_manifest_fails_even_alone(self, tmp_path):
        # A single provenance-free artifact is itself a failure — the
        # gate must not silently pass on "nothing to compare".
        _write(tmp_path, "BENCH_CI.json", _payload(1000, manifest=False))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1

    def test_invalid_manifest_fails(self, tmp_path, capsys):
        payload = _payload(1000)
        del payload["manifest"]["git_rev"]
        payload["manifest"]["workers"] = 0
        _write(tmp_path, "BENCH_PR3.json", payload)
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "git_rev" in err

    def test_cross_config_comparison_refused(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_PR3.json", _payload(
            1000, config={"bench": "server_hot_path", "sites": 3,
                          "seed": 21}))
        _write(tmp_path, "BENCH_PR4.json", _payload(
            100, config={"bench": "server_hot_path", "sites": 8,
                         "seed": 21}))
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "REFUSED" in err
        assert "sites" in err

    def test_sampling_difference_still_compared(self, tmp_path):
        # Same config, different repeats: comparable by design (CI runs
        # fewer repeats than the committed artifacts).
        old = _payload(1000)
        new = _payload(990)
        old["manifest"]["sampling"] = {"repeats": 300}
        new["manifest"]["sampling"] = {"repeats": 120}
        _write(tmp_path, "BENCH_PR3.json", old)
        _write(tmp_path, "BENCH_PR4.json", new)
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_bench_filter_scopes_provenance(self, tmp_path):
        # --bench simcore must not trip over an unrelated family's
        # missing manifest...
        _write(tmp_path, "BENCH_PR3.json", _payload(1000, manifest=False))
        simcore = {"bench": "simcore",
                   "simcore": {"events_per_s": 1.0, "transfers_per_s": 1.0,
                               "visits_per_s": 1.0},
                   "manifest": build_manifest(config={"bench": "simcore"})}
        _write(tmp_path, "BENCH_PR5.json", simcore)
        assert compare_bench.main(
            ["--dir", str(tmp_path), "--bench", "simcore"]) == 0
        # ...but the unscoped run still fails on it.
        assert compare_bench.main(["--dir", str(tmp_path)]) == 1

    def test_committed_artifacts_carry_valid_manifests(self):
        # The in-repo trajectory itself must satisfy the gate it feeds.
        assert compare_bench.main([]) == 0

    def test_manifest_errors_helper(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        errors = compare_bench.manifest_errors(path, {})
        assert errors and "missing run manifest" in errors[0]
        assert compare_bench.manifest_errors(
            path, _payload(1.0)) == []
