"""Unit tests for the resource churn model."""

import math

import pytest

from repro.html.parser import ResourceKind
from repro.netsim.clock import DAY, HOUR, WEEK
from repro.workload.churn import ChurnModel, ResourceChurn


class TestResourceChurn:
    def test_version_monotone(self):
        churn = ResourceChurn(period_s=HOUR, seed=1)
        versions = [churn.version_at(t) for t in
                    (0, HOUR, DAY, WEEK, 2 * WEEK)]
        assert versions == sorted(versions)

    def test_version_zero_at_time_zero(self):
        assert ResourceChurn(period_s=HOUR, seed=1).version_at(0.0) == 0

    def test_deterministic_across_instances(self):
        a = ResourceChurn(period_s=HOUR, seed=99)
        b = ResourceChurn(period_s=HOUR, seed=99)
        times = [123.0, 5000.0, 100_000.0]
        assert [a.version_at(t) for t in times] == \
            [b.version_at(t) for t in times]

    def test_query_order_does_not_matter(self):
        a = ResourceChurn(period_s=HOUR, seed=5)
        b = ResourceChurn(period_s=HOUR, seed=5)
        v_big_a = a.version_at(WEEK)
        _ = b.version_at(HOUR)
        v_big_b = b.version_at(WEEK)
        assert v_big_a == v_big_b

    def test_infinite_period_never_changes(self):
        churn = ResourceChurn(period_s=math.inf, seed=1)
        assert churn.version_at(1e12) == 0
        assert not churn.changed_between(0, 1e12)
        assert churn.change_probability(1e12) == 0.0

    def test_changed_between(self):
        churn = ResourceChurn(period_s=math.inf, seed=1,
                              change_times=[100.0])
        assert not churn.changed_between(0, 99)
        assert churn.changed_between(0, 100)
        assert not churn.changed_between(100, 200)

    def test_changed_between_swapped_args(self):
        churn = ResourceChurn(period_s=1.0, seed=1, change_times=[50.0])
        assert churn.changed_between(100, 0)

    def test_fixed_change_times(self):
        churn = ResourceChurn(period_s=1.0, seed=1,
                              change_times=[10.0, 20.0])
        assert churn.version_at(5) == 0
        assert churn.version_at(10) == 1
        assert churn.version_at(25) == 2

    def test_empty_fixed_times_is_frozen(self):
        churn = ResourceChurn(period_s=1.0, seed=1, change_times=[])
        assert churn.version_at(1e9) == 0

    def test_last_change_at(self):
        churn = ResourceChurn(period_s=1.0, seed=1,
                              change_times=[10.0, 20.0])
        assert churn.last_change_at(5) == 0.0
        assert churn.last_change_at(15) == 10.0
        assert churn.last_change_at(100) == 20.0

    def test_change_probability_closed_form(self):
        churn = ResourceChurn(period_s=100.0, seed=1)
        assert churn.change_probability(100.0) == \
            pytest.approx(1 - math.exp(-1))

    def test_mean_change_count_tracks_rate(self):
        """Empirical Poisson check: N(t)/t ~ 1/tau over many resources."""
        total = 0
        horizon = 50 * HOUR
        n = 200
        for seed in range(n):
            total += ResourceChurn(period_s=HOUR, seed=seed) \
                .version_at(horizon)
        mean = total / n
        assert mean == pytest.approx(50.0, rel=0.15)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ResourceChurn(period_s=0.0, seed=1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ResourceChurn(period_s=1.0, seed=1).version_at(-1.0)


class TestChurnModel:
    def test_per_kind_periods_ordered_sensibly(self):
        """API payloads churn faster than fonts, medians say so."""
        model = ChurnModel()
        fetch = model.periods[ResourceKind.FETCH]
        font = model.periods[ResourceKind.FONT]
        assert fetch.median_s < font.median_s

    def test_draw_period_positive(self):
        import random
        model = ChurnModel()
        rng = random.Random(0)
        for kind in (None, ResourceKind.IMAGE, ResourceKind.SCRIPT):
            period = model.draw_period(rng, kind)
            assert period > 0

    def test_immutable_share_produces_inf(self):
        import random
        model = ChurnModel()
        rng = random.Random(0)
        periods = [model.draw_period(rng, ResourceKind.FONT)
                   for _ in range(200)]
        inf_share = sum(1 for p in periods if math.isinf(p)) / len(periods)
        assert 0.4 < inf_share < 0.8  # configured 0.60

    def test_overrides_respected(self):
        from repro.workload.churn import PeriodModel
        model = ChurnModel(periods={
            ResourceKind.IMAGE: PeriodModel(median_s=1.0, sigma=0.0)})
        import random
        assert model.draw_period(random.Random(0),
                                 ResourceKind.IMAGE) == pytest.approx(1.0)
