"""Client-side overload symmetry: Retry-After honouring and the
per-origin circuit breaker.

The breaker is tested as a pure state machine with an injectable clock,
then end-to-end through :class:`AsyncHttpClient` against a live origin.
"""

import asyncio

import pytest

from repro.http.aclient import AsyncHttpClient, CircuitBreaker
from repro.http.aserver import AsyncHttpServer
from repro.http.errors import CircuitOpen
from repro.http.messages import Response


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBreakerStateMachine:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, open_s=1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken, not cumulative

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, open_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(2.1)  # past the jittered open window [1, 2)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # second caller refused

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, open_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_jitter(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=5, open_s=1.0, clock=clock,
                                 seed=3, key="o")
        for _ in range(5):
            breaker.record_failure()
        first_window = breaker._open_for
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()  # the probe fails: instant re-trip
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker._open_for != first_window  # new ordinal, new draw
        assert not breaker.allow()

    def test_open_windows_deterministic_across_instances(self):
        def windows(seed):
            clock = FakeClock()
            breaker = CircuitBreaker(threshold=1, open_s=1.0, seed=seed,
                                     key="origin", clock=clock)
            spans = []
            for _ in range(4):
                breaker.record_failure()
                spans.append(breaker._open_for)
                clock.advance(breaker._open_for + 0.01)
                assert breaker.allow()
            return spans

        assert windows(9) == windows(9)
        assert windows(9) != windows(10)
        assert all(1.0 <= span < 2.0 for span in windows(9))

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestClientIntegration:
    def test_repeated_503s_trip_breaker_without_wire_contact(self):
        async def scenario():
            handler = lambda req: Response(status=503, body=b"no")
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient(breaker_threshold=2,
                                           max_retries=0,
                                           honor_retry_after=False) as client:
                    for _ in range(2):
                        result = await client.get(server.base_url + "/x")
                        assert result.response.status == 503
                    served_before = server.requests_served
                    with pytest.raises(CircuitOpen):
                        await client.get(server.base_url + "/x")
                    return (served_before, server.requests_served,
                            client.circuit_open_rejections)

        before, after, rejections = run(scenario())
        assert before == after == 2  # the refused request never arrived
        assert rejections == 1

    def test_breaker_recovers_after_open_window(self):
        async def scenario():
            failures = 2

            def handler(req):
                nonlocal failures
                if failures > 0:
                    failures -= 1
                    return Response(status=503, body=b"no")
                return Response(body=b"ok")

            clock = FakeClock()
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient(breaker_threshold=2,
                                           breaker_open_s=1.0,
                                           breaker_clock=clock,
                                           max_retries=0,
                                           honor_retry_after=False) as client:
                    for _ in range(2):
                        await client.get(server.base_url + "/x")
                    with pytest.raises(CircuitOpen):
                        await client.get(server.base_url + "/x")
                    clock.advance(2.1)  # open window elapses
                    probe = await client.get(server.base_url + "/x")
                    assert probe.response.status == 200
                    again = await client.get(server.base_url + "/x")
                    assert again.response.status == 200

        run(scenario())

    def test_breaker_disabled_with_none_threshold(self):
        async def scenario():
            handler = lambda req: Response(status=503, body=b"no")
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient(breaker_threshold=None,
                                           max_retries=0,
                                           honor_retry_after=False) as client:
                    for _ in range(20):
                        result = await client.get(server.base_url + "/x")
                        assert result.response.status == 503
                    assert client.breaker_for(server.base_url) is None

        run(scenario())


class TestRetryAfterHonoured:
    def test_hinted_503_retried_after_sleeping_the_hint(self):
        async def scenario():
            calls = 0

            def handler(req):
                nonlocal calls
                calls += 1
                if calls == 1:
                    return Response(status=503, body=b"wait",
                                    headers={"Retry-After": "0"})
                return Response(body=b"ok")

            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient(max_retries=1) as client:
                    result = await client.get(server.base_url + "/x")
                    assert result.response.status == 200
                    assert result.attempts == 2
                    assert client.retries_after_hint == 1

        run(scenario())

    def test_hint_ignored_when_budget_exhausted(self):
        async def scenario():
            handler = lambda req: Response(status=503, body=b"no",
                                           headers={"Retry-After": "0"})
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient(max_retries=0,
                                           breaker_threshold=None) as client:
                    result = await client.get(server.base_url + "/x")
                    # the 503 is the answer, not an exception
                    assert result.response.status == 503
                    assert client.retries_after_hint == 0

        run(scenario())

    def test_hint_disabled_returns_503_immediately(self):
        async def scenario():
            handler = lambda req: Response(status=503, body=b"no",
                                           headers={"Retry-After": "0"})
            async with AsyncHttpServer(handler) as server:
                async with AsyncHttpClient(max_retries=3,
                                           breaker_threshold=None,
                                           honor_retry_after=False) as client:
                    result = await client.get(server.base_url + "/x")
                    assert result.response.status == 503
                    assert result.attempts == 1

        run(scenario())

    def test_unparseable_and_date_hints_ignored(self):
        client = AsyncHttpClient()
        assert client._retry_after_s(Response(
            headers={"Retry-After": "Fri, 01 Jan 2027 00:00:00 GMT"})) \
            is None
        assert client._retry_after_s(Response(
            headers={"Retry-After": "-3"})) is None
        assert client._retry_after_s(Response()) is None

    def test_hint_capped(self):
        client = AsyncHttpClient(retry_after_cap_s=5.0)
        hint = client._retry_after_s(Response(
            headers={"Retry-After": "3600"}))
        assert hint == 5.0

    def test_end_to_end_shed_then_admitted(self):
        """A request shed at the inflight high-water mark is retried on
        the server's own hint and succeeds once a slot frees up."""
        async def scenario():
            release = asyncio.Event()

            async def handler(request):
                await release.wait()
                return Response(body=b"ok")

            server = AsyncHttpServer(handler, max_inflight=1,
                                     retry_after_s=1.0)
            await server.start()
            try:
                async with AsyncHttpClient(max_retries=2) as hog, \
                        AsyncHttpClient(max_retries=2) as client:
                    hogging = asyncio.ensure_future(
                        hog.get(server.base_url + "/slot"))
                    while server.inflight == 0:
                        await asyncio.sleep(0.01)
                    shed_then_ok = asyncio.ensure_future(
                        client.get(server.base_url + "/shed"))
                    while server.shed_503 == 0:
                        await asyncio.sleep(0.01)
                    release.set()  # free the slot before the retry lands
                    result = await shed_then_ok
                    await hogging
                    assert result.response.status == 200
                    assert result.attempts == 2
                    assert client.retries_after_hint == 1
            finally:
                await server.stop(drain_s=1.0)

        run(scenario())
