"""Unit tests for the trace exporters (repro.obs.export)."""

import json

import pytest

from repro.obs import (Tracer, enrich_har, to_chrome_trace,
                       to_chrome_trace_json, to_jsonl)
from repro.obs.export import LAYER_LANES

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def sample_tracer() -> Tracer:
    tracer = Tracer(clock=FakeClock(), trace_id="trace1")
    page = tracer.add_span("page.load", "browser", 0.0, 1.0,
                           args={"url": "/index.html"})
    tracer.add_span("link.down", "netsim", 0.1, 0.4, parent=page,
                    args={"bytes": 1000})
    tracer.instant("sw.etag_hit", "sw", parent=page,
                   args={"url": "/a.css"}, at=0.5)
    return tracer


class TestChromeTrace:
    def test_structure_and_phases(self):
        trace = to_chrome_trace(sample_tracer())
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(metadata) == len(LAYER_LANES)
        assert {e["name"] for e in spans} == {"page.load", "link.down"}
        assert instants[0]["s"] == "t"

    def test_timestamps_micros_and_nonnegative(self):
        events = [e for e in to_chrome_trace(sample_tracer())["traceEvents"]
                  if e["ph"] != "M"]
        by_name = {e["name"]: e for e in events}
        assert by_name["link.down"]["ts"] == 100_000
        assert by_name["link.down"]["dur"] == 300_000
        assert all(e["ts"] >= 0 for e in events)
        assert all(e.get("dur", 0) >= 0 for e in events)

    def test_layers_land_on_distinct_lanes(self):
        events = [e for e in to_chrome_trace(sample_tracer())["traceEvents"]
                  if e["ph"] != "M"]
        tids = {e["cat"]: e["tid"] for e in events}
        assert len(set(tids.values())) == 3

    def test_args_carry_tree_links(self):
        events = to_chrome_trace(sample_tracer())["traceEvents"]
        down = next(e for e in events if e["name"] == "link.down")
        assert down["args"]["trace_id"] == "trace1"
        assert down["args"]["parent_id"] == 1
        assert down["args"]["bytes"] == 1000

    def test_json_round_trips(self):
        text = to_chrome_trace_json(sample_tracer(), indent=1)
        assert json.loads(text)["displayTimeUnit"] == "ms"


class TestJsonl:
    def test_one_object_per_span(self):
        lines = to_jsonl(sample_tracer()).splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert all(row["trace_id"] == "trace1" for row in rows)
        assert rows[1]["duration_s"] == pytest.approx(0.3)

    def test_empty_tracer_yields_empty_string(self):
        assert to_jsonl(Tracer(clock=FakeClock())) == ""


class TestEnrichHar:
    def har(self) -> dict:
        return {"log": {"entries": [
            {"request": {"url": "/index.html"}, "_startS": 0.0},
            {"request": {"url": "/missing.js"}, "_startS": 0.2},
        ]}}

    def test_trace_and_span_ids_attached(self):
        tracer = Tracer(clock=FakeClock(), trace_id="trace1")
        span = tracer.add_span("browser.fetch", "browser", 0.0, 0.4,
                               args={"url": "/index.html"})
        har = enrich_har(self.har(), tracer)
        first, second = har["log"]["entries"]
        assert har["log"]["_traceId"] == "trace1"
        assert first["_traceId"] == "trace1"
        assert first["_spanId"] == span.span_id
        assert "_spanId" not in second  # no span carried that URL

    def test_repeated_url_matches_nearest_start(self):
        tracer = Tracer(clock=FakeClock(), trace_id="trace1")
        cold = tracer.add_span("browser.fetch", "browser", 0.0, 0.4,
                               args={"url": "/a.css"})
        warm = tracer.add_span("browser.fetch", "browser", 10.0, 10.1,
                               args={"url": "/a.css"})
        har = {"log": {"entries": [
            {"request": {"url": "/a.css"}, "_startS": 10.02},
        ]}}
        enrich_har(har, tracer)
        assert har["log"]["entries"][0]["_spanId"] == warm.span_id
        assert warm.span_id != cold.span_id

    def test_prefers_fetch_spans_over_instants(self):
        tracer = Tracer(clock=FakeClock(), trace_id="trace1")
        fetch = tracer.add_span("browser.fetch", "browser", 0.0, 0.4,
                                args={"url": "/index.html"})
        tracer.instant("sw.etag_hit", "sw",
                       args={"url": "/index.html"}, at=0.0)
        har = enrich_har(self.har(), tracer)
        assert har["log"]["entries"][0]["_spanId"] == fetch.span_id


# -- cross-process (pid-stamped) records ----------------------------------


def worker_records(pid: int, n: int = 2) -> list:
    """What one traced fleet worker ships: span_to_dict records whose
    local IDs start from 1 (every worker ring counts from 1)."""
    from repro.obs.export import span_to_dict
    tracer = Tracer(clock=FakeClock(), trace_id=f"w{pid}")
    parent = tracer.add_span("server.request", "http", 0.0, 0.5)
    for i in range(n - 1):
        tracer.add_span("server.handler", "server", 0.1, 0.2,
                        parent=parent)
    return [span_to_dict(span, pid=pid) for span in tracer.spans()]


class TestSpanToDict:
    def test_record_shape(self):
        from repro.obs.export import span_to_dict
        tracer = Tracer(clock=FakeClock(), trace_id="t")
        span = tracer.add_span("x", "http", 0.0, 1.0, args={"k": "v"})
        record = span_to_dict(span, pid=42)
        assert record["pid"] == 42
        assert record["span_id"] == span.span_id
        assert record["args"] == {"k": "v"}
        assert record["end_s"] == 1.0

    def test_remote_parent_carried(self):
        tracer = Tracer(clock=FakeClock(), trace_id="t")
        span = tracer.begin("server.request", "http",
                            remote_parent=(99, 7))
        span.end(at=1.0)
        from repro.obs.export import span_to_dict
        record = span_to_dict(span, pid=1)
        assert record["remote_parent"] == [99, 7]

    def test_pickle_and_json_safe(self):
        import pickle
        record = worker_records(10)[0]
        assert pickle.loads(pickle.dumps(record)) == record
        assert json.loads(json.dumps(record)) == record


class TestNamespacedIds:
    def test_same_local_id_does_not_alias_across_pids(self):
        from repro.obs.export import namespaced_span_id
        assert namespaced_span_id(100, 7) != namespaced_span_id(200, 7)

    def test_two_worker_merge_keeps_ids_unique(self):
        """The regression this PR fixes: both workers' rings count from
        1, so an un-namespaced merge would alias every span pair."""
        merged = worker_records(100) + worker_records(200)
        trace = to_chrome_trace(merged)
        span_events = [e for e in trace["traceEvents"]
                       if e["ph"] in ("X", "i")]
        ids = [e["args"]["span_id"] for e in span_events]
        assert len(ids) == len(set(ids)) == 4
        assert {e["pid"] for e in span_events} == {100, 200}

    def test_local_parent_namespaced_into_same_pid(self):
        records = worker_records(31)
        trace = to_chrome_trace(records)
        child = next(e for e in trace["traceEvents"]
                     if e["name"] == "server.handler")
        parent = next(e for e in trace["traceEvents"]
                      if e["name"] == "server.request")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]

    def test_remote_parent_wins_and_crosses_pids(self):
        from repro.obs.export import namespaced_span_id, span_to_dict
        client = Tracer(clock=FakeClock(), trace_id="t")
        cspan = client.add_span("http.request", "http", 0.0, 1.0)
        server = Tracer(clock=FakeClock(), trace_id="t")
        sspan = server.begin("server.request", "http",
                             remote_parent=(1000, cspan.span_id))
        sspan.end(at=0.8)
        merged = [span_to_dict(cspan, pid=1000),
                  span_to_dict(sspan, pid=2000)]
        trace = to_chrome_trace(merged)
        sevent = next(e for e in trace["traceEvents"]
                      if e["name"] == "server.request")
        cevent = next(e for e in trace["traceEvents"]
                      if e["name"] == "http.request")
        assert sevent["args"]["parent_id"] == cevent["args"]["span_id"]
        assert sevent["args"]["parent_id"] \
            == namespaced_span_id(1000, cspan.span_id)

    def test_per_pid_process_metadata_emitted(self):
        trace = to_chrome_trace(worker_records(55))
        names = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert any(e["pid"] == 55 and e["args"]["name"] == "pid 55"
                   for e in names)

    def test_legacy_span_export_unchanged_by_pid_support(self):
        tracer = sample_tracer()
        trace = to_chrome_trace(tracer)
        assert all(e["pid"] == 1 for e in trace["traceEvents"])
        assert not any(e["name"] == "process_name"
                       for e in trace["traceEvents"])

    def test_jsonl_carries_pid_and_remote_parent(self):
        records = worker_records(77)
        records[0]["remote_parent"] = [1, 5]
        lines = [json.loads(line)
                 for line in to_jsonl(records).splitlines()]
        assert lines[0]["pid"] == 77
        assert lines[0]["remote_parent"] == [1, 5]
