"""Unit tests for the trace exporters (repro.obs.export)."""

import json

import pytest

from repro.obs import (Tracer, enrich_har, to_chrome_trace,
                       to_chrome_trace_json, to_jsonl)
from repro.obs.export import LAYER_LANES

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def sample_tracer() -> Tracer:
    tracer = Tracer(clock=FakeClock(), trace_id="trace1")
    page = tracer.add_span("page.load", "browser", 0.0, 1.0,
                           args={"url": "/index.html"})
    tracer.add_span("link.down", "netsim", 0.1, 0.4, parent=page,
                    args={"bytes": 1000})
    tracer.instant("sw.etag_hit", "sw", parent=page,
                   args={"url": "/a.css"}, at=0.5)
    return tracer


class TestChromeTrace:
    def test_structure_and_phases(self):
        trace = to_chrome_trace(sample_tracer())
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(metadata) == len(LAYER_LANES)
        assert {e["name"] for e in spans} == {"page.load", "link.down"}
        assert instants[0]["s"] == "t"

    def test_timestamps_micros_and_nonnegative(self):
        events = [e for e in to_chrome_trace(sample_tracer())["traceEvents"]
                  if e["ph"] != "M"]
        by_name = {e["name"]: e for e in events}
        assert by_name["link.down"]["ts"] == 100_000
        assert by_name["link.down"]["dur"] == 300_000
        assert all(e["ts"] >= 0 for e in events)
        assert all(e.get("dur", 0) >= 0 for e in events)

    def test_layers_land_on_distinct_lanes(self):
        events = [e for e in to_chrome_trace(sample_tracer())["traceEvents"]
                  if e["ph"] != "M"]
        tids = {e["cat"]: e["tid"] for e in events}
        assert len(set(tids.values())) == 3

    def test_args_carry_tree_links(self):
        events = to_chrome_trace(sample_tracer())["traceEvents"]
        down = next(e for e in events if e["name"] == "link.down")
        assert down["args"]["trace_id"] == "trace1"
        assert down["args"]["parent_id"] == 1
        assert down["args"]["bytes"] == 1000

    def test_json_round_trips(self):
        text = to_chrome_trace_json(sample_tracer(), indent=1)
        assert json.loads(text)["displayTimeUnit"] == "ms"


class TestJsonl:
    def test_one_object_per_span(self):
        lines = to_jsonl(sample_tracer()).splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert all(row["trace_id"] == "trace1" for row in rows)
        assert rows[1]["duration_s"] == pytest.approx(0.3)

    def test_empty_tracer_yields_empty_string(self):
        assert to_jsonl(Tracer(clock=FakeClock())) == ""


class TestEnrichHar:
    def har(self) -> dict:
        return {"log": {"entries": [
            {"request": {"url": "/index.html"}, "_startS": 0.0},
            {"request": {"url": "/missing.js"}, "_startS": 0.2},
        ]}}

    def test_trace_and_span_ids_attached(self):
        tracer = Tracer(clock=FakeClock(), trace_id="trace1")
        span = tracer.add_span("browser.fetch", "browser", 0.0, 0.4,
                               args={"url": "/index.html"})
        har = enrich_har(self.har(), tracer)
        first, second = har["log"]["entries"]
        assert har["log"]["_traceId"] == "trace1"
        assert first["_traceId"] == "trace1"
        assert first["_spanId"] == span.span_id
        assert "_spanId" not in second  # no span carried that URL

    def test_repeated_url_matches_nearest_start(self):
        tracer = Tracer(clock=FakeClock(), trace_id="trace1")
        cold = tracer.add_span("browser.fetch", "browser", 0.0, 0.4,
                               args={"url": "/a.css"})
        warm = tracer.add_span("browser.fetch", "browser", 10.0, 10.1,
                               args={"url": "/a.css"})
        har = {"log": {"entries": [
            {"request": {"url": "/a.css"}, "_startS": 10.02},
        ]}}
        enrich_har(har, tracer)
        assert har["log"]["entries"][0]["_spanId"] == warm.span_id
        assert warm.span_id != cold.span_id

    def test_prefers_fetch_spans_over_instants(self):
        tracer = Tracer(clock=FakeClock(), trace_id="trace1")
        fetch = tracer.add_span("browser.fetch", "browser", 0.0, 0.4,
                                args={"url": "/index.html"})
        tracer.instant("sw.etag_hit", "sw",
                       args={"url": "/index.html"}, at=0.0)
        har = enrich_har(self.har(), tracer)
        assert har["log"]["entries"][0]["_spanId"] == fetch.span_id
