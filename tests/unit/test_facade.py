"""Unit tests for the high-level Catalyst facade."""

import pytest

from repro.core.catalyst import Catalyst, run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.netsim.clock import HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.sitegen import generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site_spec():
    return generate_site("https://facade.example", seed=47,
                         median_resources=20)


class TestFacade:
    def test_for_site_builds_catalyst_stack(self, site_spec):
        catalyst = Catalyst.for_site(site_spec)
        assert catalyst.browser_config.use_service_worker
        assert catalyst.server.site.spec is site_spec

    def test_visit_sequence_cold_plus_delays(self, site_spec):
        catalyst = Catalyst.for_site(site_spec)
        outcomes = catalyst.visit_sequence(COND, delays=["1 min", "1 h"])
        assert len(outcomes) == 3
        assert outcomes[0].at_s == 0.0
        assert outcomes[1].at_s == 60.0
        assert outcomes[2].at_s == 60.0 + 3600.0
        assert all(o.plt_ms > 0 for o in outcomes)

    def test_visit_sequence_warm_faster(self, site_spec):
        catalyst = Catalyst.for_site(site_spec)
        outcomes = catalyst.visit_sequence(COND, delays=["1 h"])
        assert outcomes[1].plt_ms < outcomes[0].plt_ms

    def test_compare_with_standard_keys(self, site_spec):
        catalyst = Catalyst.for_site(site_spec)
        comparison = catalyst.compare_with_standard(COND, "1 h")
        assert set(comparison) == {"standard", "catalyst"}
        assert comparison["catalyst"] <= comparison["standard"]

    def test_numeric_delay_accepted(self, site_spec):
        catalyst = Catalyst.for_site(site_spec)
        comparison = catalyst.compare_with_standard(COND, 3600.0)
        assert comparison["catalyst"] > 0

    def test_new_session_is_fresh(self, site_spec):
        catalyst = Catalyst.for_site(site_spec)
        session = catalyst.new_session()
        assert session.http_cache.entry_count == 0
        assert not session.sw.registered


class TestRunVisitSequence:
    def test_rejects_time_travel(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        with pytest.raises(ValueError, match="non-decreasing"):
            run_visit_sequence(setup, COND, [HOUR, 0.0])

    def test_single_visit(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        outcomes = run_visit_sequence(setup, COND, [0.0])
        assert len(outcomes) == 1

    def test_shared_state_across_visits(self, site_spec):
        setup = build_mode(CachingMode.STANDARD, site_spec)
        run_visit_sequence(setup, COND, [0.0, HOUR])
        assert setup.session.visits == 2
        assert setup.session.http_cache.entry_count > 0

    def test_alternate_page_url(self, site_spec):
        from repro.workload.sitegen import generate_site as gen
        multi = gen("https://facade2.example", seed=48, extra_pages=1,
                    median_resources=15)
        setup = build_mode(CachingMode.STANDARD, multi)
        outcomes = run_visit_sequence(setup, COND, [0.0],
                                      page_url="/page1.html")
        assert outcomes[0].result.url == "/page1.html"
