"""Unit tests for duration parsing/formatting."""

import pytest

from repro.netsim.clock import (DAY, HOUR, MINUTE, WEEK, format_duration, ms,
                                parse_duration, seconds_to_ms)


class TestParseDuration:
    @pytest.mark.parametrize("text,expected", [
        ("1 min", 60.0),
        ("1min", 60.0),
        ("2 minutes", 120.0),
        ("1h", 3600.0),
        ("6 hours", 6 * 3600.0),
        ("1 d", 86400.0),
        ("1 day", 86400.0),
        ("1 week", 7 * 86400.0),
        ("1w", 7 * 86400.0),
        ("250ms", 0.25),
        ("1.5h", 5400.0),
        ("1h 30min", 5400.0),
        ("0.5s", 0.5),
    ])
    def test_parses(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_numbers_pass_through_as_seconds(self):
        assert parse_duration(42) == 42.0
        assert parse_duration(1.5) == 1.5

    @pytest.mark.parametrize("bad", ["", "xyz", "5 parsecs", "1h!",
                                     "h1", "--3s"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    def test_constants_consistent(self):
        assert MINUTE == 60.0
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY


class TestFormatDuration:
    @pytest.mark.parametrize("seconds,expected", [
        (WEEK, "1w"),
        (DAY, "1d"),
        (HOUR, "1h"),
        (MINUTE, "1min"),
        (90.0, "1.5min"),
        (5.0, "5s"),
        (0.25, "250ms"),
        (6 * HOUR, "6h"),
    ])
    def test_formats(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_roundtrip_of_paper_delays(self):
        for text in ("1min", "1h", "6h", "1d", "1w"):
            assert format_duration(parse_duration(text)) == text


class TestMs:
    def test_ms_converts_to_seconds(self):
        assert ms(40) == 0.04

    def test_seconds_to_ms(self):
        assert seconds_to_ms(0.04) == pytest.approx(40.0)
