"""Unit tests for multi-page site generation and cross-page navigation."""

import pytest

from repro.experiments.cross_page import (format_cross_page,
                                          make_multipage_site,
                                          run_cross_page)
from repro.html import extract_resources, parse_html
from repro.workload.sitegen import generate_site, render_html


@pytest.fixture(scope="module")
def site():
    return generate_site("https://mp.example", seed=5, extra_pages=3,
                         median_resources=40)


class TestGeneration:
    def test_page_count(self, site):
        assert set(site.pages) == {"/index.html", "/page1.html",
                                   "/page2.html", "/page3.html"}

    def test_inner_pages_share_assets(self, site):
        index_urls = set(site.index.resources)
        for url in ("/page1.html", "/page2.html"):
            page = site.pages[url]
            shared = set(page.resources) & index_urls
            assert shared, f"{url} shares nothing with the homepage"

    def test_inner_pages_have_unique_assets(self, site):
        index_urls = set(site.index.resources)
        page = site.pages["/page1.html"]
        assert set(page.resources) - index_urls

    def test_unique_assets_namespaced(self, site):
        index_urls = set(site.index.resources)
        for page_url in ("/page1.html", "/page2.html"):
            tag = page_url.strip("/").split(".")[0]
            page = site.pages[page_url]
            for url in set(page.resources) - index_urls:
                assert f"/{tag}/" in url

    def test_shared_assets_are_same_spec_objects(self, site):
        page = site.pages["/page1.html"]
        for url in set(page.resources) & set(site.index.resources):
            assert page.resources[url] is site.index.resources[url]

    def test_children_closed_under_resources(self, site):
        for page in site.pages.values():
            for spec in page.resources.values():
                for child in spec.children:
                    assert child in page.resources

    def test_render_extract_round_trip_all_pages(self, site):
        for page in site.pages.values():
            markup = render_html(page, version=0)
            refs = {r.url for r in extract_resources(parse_html(markup))}
            assert refs == set(page.html_refs)

    def test_deterministic(self):
        a = generate_site("https://mp.example", seed=5, extra_pages=2)
        b = generate_site("https://mp.example", seed=5, extra_pages=2)
        assert list(a.pages) == list(b.pages)
        assert a.pages["/page1.html"].html_refs == \
            b.pages["/page1.html"].html_refs


class TestCrossPageExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return run_cross_page(make_multipage_site(
            seed=77, pages=2, median_resources=30))

    def test_all_modes_measured(self, results):
        assert {r.mode for r in results} == \
            {"no-cache", "standard", "catalyst"}

    def test_caching_helps_first_inner_visit(self, results):
        by_mode = {r.mode: r for r in results}
        assert by_mode["standard"].mean_inner_plt_ms < \
            by_mode["no-cache"].mean_inner_plt_ms

    def test_catalyst_beats_standard_on_unseen_pages(self, results):
        by_mode = {r.mode: r for r in results}
        assert by_mode["catalyst"].mean_inner_plt_ms <= \
            by_mode["standard"].mean_inner_plt_ms

    def test_homepage_plt_mode_independent(self, results):
        plts = [r.homepage_plt_ms for r in results]
        assert max(plts) - min(plts) < 0.05 * max(plts)

    def test_formatting(self, results):
        text = format_cross_page(results)
        assert "inner saving" in text
        assert "catalyst" in text
