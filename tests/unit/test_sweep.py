"""Unit tests for the full-grid analytic sweep experiment."""

import json

import pytest

from repro.core.analysis import estimate_plt
from repro.core.modes import CachingMode
from repro.netsim.clock import DAY, HOUR
from repro.netsim.link import NetworkConditions
from repro.obs.manifest import comparable, validate_manifest
from repro.workload.corpus import make_corpus
from repro.experiments.sweep import (analytic_bench_payload,
                                     format_analytic_bench,
                                     run_analytic_bench, run_sweep,
                                     validate_sweep)

pytestmark = pytest.mark.analytic


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep(sites=6, throughputs_mbps=(8.0, 60.0),
                     latencies_ms=(10.0, 40.0, 100.0),
                     delays_s=(HOUR, DAY))


class TestRunSweep:
    def test_grid_shape(self, small_sweep):
        assert len(small_sweep.reduction_grid) == 2
        assert all(len(row) == 3 for row in small_sweep.reduction_grid)
        assert small_sweep.sites == 6
        assert small_sweep.estimates == 6 * 6 * 2 * 2

    def test_reductions_in_unit_interval(self, small_sweep):
        for row in small_sweep.reduction_grid:
            for value in row:
                assert 0.0 < value < 1.0

    def test_latency_story_at_high_throughput(self, small_sweep):
        """At 60 Mbps the win grows with RTT — the paper's Figure 3."""
        top_row = small_sweep.reduction_grid[-1]
        assert top_row == sorted(top_row)

    def test_matches_scalar_reduction_for_one_cell(self, small_sweep):
        """Spot-check the aggregation against the scalar helpers."""
        corpus = make_corpus().sample(6, seed=7)
        cond = NetworkConditions.of(60.0, 40.0)
        total = 0.0
        count = 0
        for site in corpus:
            for delay in (HOUR, DAY):
                standard = estimate_plt(site, CachingMode.STANDARD,
                                        delay, cond)
                catalyst = estimate_plt(site, CachingMode.CATALYST,
                                        delay, cond)
                total += (standard - catalyst) / standard
                count += 1
        assert small_sweep.cell(60.0, 40.0) == pytest.approx(
            total / count, rel=1e-9)

    def test_delay_series_covers_all_delays(self, small_sweep):
        assert [delay for delay, _ in small_sweep.delay_series] \
            == [HOUR, DAY]

    def test_format_mentions_headline_and_backend(self, small_sweep):
        text = small_sweep.format()
        assert "60Mbps/40ms" in text
        assert small_sweep.backend in text
        assert "overall mean" in text


class TestValidateSweep:
    def test_seeded_subgrid_is_reproducible_and_passes(self):
        conditions = [NetworkConditions.of(8.0, 10.0),
                      NetworkConditions.of(60.0, 100.0)]
        first = validate_sweep(sites=2, delays_s=(DAY,),
                               conditions_list=conditions)
        again = validate_sweep(sites=2, delays_s=(DAY,),
                               conditions_list=conditions)
        assert first.passed
        assert first.rho == pytest.approx(again.rho)
        assert [row[:4] for row in first.rows] \
            == [row[:4] for row in again.rows]
        assert "Spearman rank correlation" in first.format()

    def test_min_rho_gate(self):
        conditions = [NetworkConditions.of(8.0, 10.0),
                      NetworkConditions.of(60.0, 100.0)]
        strict = validate_sweep(sites=2, delays_s=(DAY,),
                                conditions_list=conditions,
                                min_rho=1.0)
        assert not strict.passed
        assert "FAIL" in strict.format()


class TestAnalyticBench:
    @pytest.fixture(scope="class")
    def bench(self):
        return run_analytic_bench(sites=6, rounds=2)

    def test_rates_positive(self, bench):
        assert bench.fallback_per_s > 0
        assert bench.estimates_per_site == 20 * 2 * 25

    def test_payload_has_valid_manifest(self, bench):
        payload = analytic_bench_payload(bench)
        assert payload["bench"] == "analytic_sweep"
        assert validate_manifest(payload["manifest"]) == []
        assert json.dumps(payload)  # serializable as committed artifact

    def test_payloads_with_same_workload_are_comparable(self, bench):
        a = analytic_bench_payload(bench)
        b = analytic_bench_payload(run_analytic_bench(sites=6, rounds=1))
        same, _ = comparable(a["manifest"], b["manifest"])
        assert same

    def test_different_workloads_refused(self, bench):
        a = analytic_bench_payload(bench)
        b = analytic_bench_payload(run_analytic_bench(sites=4, rounds=1))
        same, reason = comparable(a["manifest"], b["manifest"])
        assert not same
        assert "config" in reason

    def test_format_lists_floors(self, bench):
        text = format_analytic_bench(bench)
        assert "visit-estimates/s" in text
        assert "fallback (pure python)" in text
