"""Unit tests for OriginSite content materialization."""

import pytest

from repro.http.dates import parse_http_date
from repro.http.messages import Request
from repro.netsim.clock import HOUR, WEEK
from repro.server.site import WALL_EPOCH, OriginSite
from repro.workload.sitegen import generate_site


@pytest.fixture
def site():
    return OriginSite(generate_site("https://o.example", seed=21))


class TestRespond:
    def test_html_response_shape(self, site):
        resp = site.respond("/index.html", at_time=0.0)
        assert resp.status == 200
        assert resp.content_type.startswith("text/html")
        assert resp.headers.get("ETag")
        assert resp.headers.get("Last-Modified")
        assert resp.cache_control.no_cache  # base documents revalidate

    def test_resource_response_carries_policy_headers(self, site):
        page = site.spec.index
        for url, spec in page.resources.items():
            resp = site.respond(url, at_time=0.0)
            assert resp.status == 200
            expected = spec.policy.to_cache_control()
            assert resp.headers.get("Cache-Control") == expected

    def test_unknown_url_404(self, site):
        assert site.respond("/nope.bin", at_time=0.0).status == 404

    def test_date_header_tracks_sim_time(self, site):
        resp = site.respond("/index.html", at_time=3600.0)
        assert parse_http_date(resp.headers["Date"]) == \
            pytest.approx(WALL_EPOCH + 3600.0)

    def test_declared_size_for_standin_bodies(self, site):
        page = site.spec.index
        image_url = next(url for url, s in page.resources.items()
                         if s.kind.value == "image")
        resp = site.respond(image_url, at_time=0.0)
        assert resp.transfer_size == page.resources[image_url].size_bytes
        assert len(resp.body) < resp.transfer_size

    def test_materialize_fully_sends_real_bytes(self):
        site = OriginSite(generate_site("https://o.example", seed=21),
                          materialize_fully=True)
        page = site.spec.index
        image_url = next(url for url, s in page.resources.items()
                         if s.kind.value == "image")
        resp = site.respond(image_url, at_time=0.0)
        assert len(resp.body) == resp.transfer_size


class TestVersioning:
    def test_etag_stable_when_unchanged(self, site):
        first = site.respond("/index.html", at_time=0.0).headers["ETag"]
        # pick a time before the first HTML change
        second = site.respond("/index.html", at_time=0.001).headers["ETag"]
        assert first == second

    def test_etag_oracle_matches_serving(self, site):
        page = site.spec.index
        for url in list(page.resources)[:10]:
            spec = page.resources[url]
            if spec.dynamic:
                assert site.etag_of(url, 0.0) is None
                continue
            served = site.respond(url, at_time=0.0).etag.opaque
            assert site.etag_of(url, 0.0) == served

    def test_dynamic_resource_changes_every_request(self, site):
        page = site.spec.index
        dynamic_urls = [u for u, s in page.resources.items() if s.dynamic]
        if not dynamic_urls:
            pytest.skip("seed produced no dynamic resources")
        url = dynamic_urls[0]
        first = site.respond(url, at_time=0.0).etag
        second = site.respond(url, at_time=0.0).etag
        assert first.opaque != second.opaque

    def test_changed_between_consistent_with_etags(self, site):
        page = site.spec.index
        for url, spec in page.resources.items():
            if spec.dynamic:
                continue
            changed = site.changed_between(url, 0.0, WEEK)
            tag0 = site.etag_of(url, 0.0)
            tag1 = site.etag_of(url, WEEK)
            assert changed == (tag0 != tag1)

    def test_changed_between_unknown_url_raises(self, site):
        with pytest.raises(KeyError):
            site.changed_between("/nope", 0.0, 1.0)

    def test_last_modified_monotone(self, site):
        url = site.spec.index.html_refs[0]
        lm0 = site.last_modified_of(url, 0.0)
        lm1 = site.last_modified_of(url, 4 * WEEK)
        assert lm1 >= lm0


class TestHelpers:
    def test_all_urls_includes_page_and_resources(self, site):
        urls = site.all_urls()
        assert "/index.html" in urls
        assert len(urls) == 1 + site.spec.index.resource_count

    def test_absolute_url(self, site):
        assert site.absolute_url("/a.css") == "https://o.example/a.css"

    def test_request_counting(self, site):
        site.respond("/index.html", at_time=0.0)
        site.respond("/index.html", at_time=1.0)
        assert site.request_counts["/index.html"] == 2
