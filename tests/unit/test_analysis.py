"""Unit tests for the closed-form PLT model."""

import math

import pytest

from repro.browser.engine import BrowserConfig
from repro.core.analysis import AnalyticModel, estimate_plt, estimate_reduction
from repro.core.modes import CachingMode
from repro.experiments.figure1 import build_figure1_site
from repro.html.parser import ResourceKind
from repro.netsim.clock import DAY, HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.headers_model import HeaderPolicy
from repro.workload.sitegen import (PageSpec, ResourceSpec, SiteSpec,
                                    generate_site)

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site():
    return generate_site("https://an.example", seed=71)


def make_page_site(n_resources: int, policy_mode: str = "max-age",
                   ttl_s: float = 1e9,
                   period_s: float = math.inf) -> SiteSpec:
    """A hand-built one-page site with ``n_resources`` HTML-level images."""
    resources = {}
    refs = []
    for i in range(n_resources):
        url = f"/img{i}.png"
        resources[url] = ResourceSpec(
            url=url, kind=ResourceKind.IMAGE, size_bytes=10_000 + i,
            policy=HeaderPolicy(mode=policy_mode, ttl_s=ttl_s),
            change_period_s=period_s, content_seed=i,
            discovered_via="html",
            fixed_change_times=() if math.isinf(period_s) else None)
        refs.append(url)
    page = PageSpec(url="/index.html", html_size_bytes=20_000,
                    html_change_period_s=DAY, html_content_seed=9,
                    html_refs=tuple(refs), resources=resources)
    return SiteSpec(origin="https://hand.example", seed=0,
                    pages={"/index.html": page})


class TestEstimatePlt:
    def test_positive(self, site):
        assert estimate_plt(site, CachingMode.STANDARD, HOUR, COND) > 0

    def test_cold_slower_than_warm(self, site):
        cold = estimate_plt(site, CachingMode.STANDARD, HOUR, COND,
                            cold=True)
        warm = estimate_plt(site, CachingMode.STANDARD, HOUR, COND)
        assert cold > warm

    def test_catalyst_not_slower(self, site):
        std = estimate_plt(site, CachingMode.STANDARD, DAY, COND)
        cat = estimate_plt(site, CachingMode.CATALYST, DAY, COND)
        assert cat <= std

    def test_monotone_in_rtt(self, site):
        plts = [estimate_plt(site, CachingMode.STANDARD, HOUR,
                             NetworkConditions.of(60, rtt))
                for rtt in (10, 40, 100)]
        assert plts == sorted(plts)

    def test_no_cache_worst(self, site):
        none = estimate_plt(site, CachingMode.NO_CACHE, HOUR, COND)
        std = estimate_plt(site, CachingMode.STANDARD, HOUR, COND)
        assert none >= std


class TestEstimateReduction:
    def test_in_unit_interval(self, site):
        reduction = estimate_reduction(site, DAY, COND)
        assert 0.0 <= reduction < 1.0

    def test_higher_latency_higher_reduction(self, site):
        low = estimate_reduction(site, DAY, NetworkConditions.of(60, 10))
        high = estimate_reduction(site, DAY, NetworkConditions.of(60, 100))
        assert high > low


class TestEdgeCases:
    def test_cold_ignores_mode(self, site):
        """Cold visits price full fetches regardless of caching mode."""
        plts = {mode: estimate_plt(site, mode, HOUR, COND, cold=True)
                for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                             CachingMode.CATALYST)}
        assert len(set(plts.values())) == 1

    def test_cold_equals_no_cache_warm_html_aside(self):
        """With fully-cacheable resources, cold == NO_CACHE warm up to
        the HTML churn weighting."""
        page_site = make_page_site(4)
        model = AnalyticModel(COND)
        cold = model.estimate_plt(page_site, CachingMode.STANDARD, HOUR,
                                  cold=True)
        no_cache = model.estimate_plt(page_site, CachingMode.NO_CACHE,
                                      HOUR)
        assert cold == pytest.approx(no_cache)

    def test_empty_page_is_navigation_only(self):
        """html_refs == (): PLT is setup + HTML + parse, no levels."""
        empty = make_page_site(0)
        model = AnalyticModel(COND)
        plt = model.estimate_plt(empty, CachingMode.STANDARD, HOUR)
        page = empty.index
        p_html = 1.0 - math.exp(-HOUR / page.html_change_period_s)
        expected = (model.config.connection_policy.setup_rtts * COND.rtt_s
                    + COND.rtt_s + model.config.html_server_think_s
                    + p_html * model._transfer_s(page.html_size_bytes)
                    + model.config.parse_time(page.html_size_bytes))
        assert plt == pytest.approx(expected)

    def test_no_store_page_prices_full_fetches(self):
        no_store = make_page_site(3, policy_mode="no-store")
        model = AnalyticModel(COND)
        for url in no_store.index.html_refs:
            spec = no_store.index.resources[url]
            cost = model.expected_resource_s(spec, CachingMode.STANDARD,
                                             HOUR)
            assert cost == pytest.approx(
                model._full_fetch_s(spec.size_bytes))

    def test_no_cache_policy_page_prices_revalidations(self):
        no_cache = make_page_site(3, policy_mode="no-cache")
        model = AnalyticModel(COND)
        for url in no_cache.index.html_refs:
            spec = no_cache.index.resources[url]
            cost = model.expected_resource_s(spec, CachingMode.STANDARD,
                                             HOUR)
            # immutable content: pure revalidation, never a body
            assert cost == pytest.approx(model._revalidation_s())

    def test_wave_boundary_at_exactly_k(self):
        """n == connections_per_origin: one wave, level time = max cost."""
        model = AnalyticModel(COND)
        k = model.config.connections_per_origin
        boundary = make_page_site(k, policy_mode="no-store")
        costs = [model._full_fetch_s(boundary.index.resources[url].size_bytes)
                 for url in boundary.index.html_refs]
        assert model._level_s(costs) == pytest.approx(max(costs))
        # one more resource tips it into a second wave
        extra = make_page_site(k + 1, policy_mode="no-store")
        costs_extra = [
            model._full_fetch_s(extra.index.resources[url].size_bytes)
            for url in extra.index.html_refs]
        assert model._level_s(costs_extra) == pytest.approx(
            max(costs_extra) + min(costs_extra))


class TestConfigDefaultIsolation:
    def test_default_config_is_per_call(self, site):
        """Regression: the module-level helpers used one shared
        ``BrowserConfig()`` default evaluated at import — any state on
        that instance bled between unrelated calls.  The default must be
        ``None`` (fresh config per call)."""
        import inspect
        for helper in (estimate_plt, estimate_reduction):
            default = inspect.signature(helper).parameters["config"].default
            assert default is None

    def test_passed_config_never_leaks_into_default_calls(self, site):
        from repro.browser.js import ScriptModel
        from repro.netsim.tcp import ConnectionPolicy
        baseline = estimate_plt(site, CachingMode.STANDARD, HOUR, COND)
        tweaked = BrowserConfig(
            script_model=ScriptModel(exec_s_per_byte=1.0, max_exec_s=30.0),
            connection_policy=ConnectionPolicy(tls_rtts=50))
        with_tweak = estimate_plt(site, CachingMode.STANDARD, HOUR, COND,
                                  config=tweaked)
        assert with_tweak > baseline
        after = estimate_plt(site, CachingMode.STANDARD, HOUR, COND)
        assert after == baseline
        assert estimate_reduction(site, HOUR, COND) == pytest.approx(
            estimate_reduction(site, HOUR, COND, config=BrowserConfig()))


class TestAgainstSimulator:
    def test_rank_correlation_with_des(self):
        """Analytic and simulated PLT must order conditions the same way."""
        from repro.core.modes import build_mode
        from repro.core.catalyst import run_visit_sequence
        site = build_figure1_site()
        conditions = [NetworkConditions.of(mbps, rtt)
                      for mbps in (8, 60) for rtt in (10, 100)]
        analytic, simulated = [], []
        for cond in conditions:
            analytic.append(estimate_plt(site, CachingMode.STANDARD,
                                         2 * HOUR, cond))
            setup = build_mode(CachingMode.STANDARD, site)
            outcomes = run_visit_sequence(setup, cond, [0.0, 2 * HOUR])
            simulated.append(outcomes[1].result.plt_s)

        def ranks(values):
            order = sorted(range(len(values)), key=values.__getitem__)
            rank = [0] * len(values)
            for position, index in enumerate(order):
                rank[index] = position
            return rank
        assert ranks(analytic) == ranks(simulated)
