"""Unit tests for the closed-form PLT model."""

import pytest

from repro.core.analysis import AnalyticModel, estimate_plt, estimate_reduction
from repro.core.modes import CachingMode
from repro.experiments.figure1 import build_figure1_site
from repro.netsim.clock import DAY, HOUR
from repro.netsim.link import NetworkConditions
from repro.workload.sitegen import generate_site

COND = NetworkConditions.of(60, 40)


@pytest.fixture(scope="module")
def site():
    return generate_site("https://an.example", seed=71)


class TestEstimatePlt:
    def test_positive(self, site):
        assert estimate_plt(site, CachingMode.STANDARD, HOUR, COND) > 0

    def test_cold_slower_than_warm(self, site):
        cold = estimate_plt(site, CachingMode.STANDARD, HOUR, COND,
                            cold=True)
        warm = estimate_plt(site, CachingMode.STANDARD, HOUR, COND)
        assert cold > warm

    def test_catalyst_not_slower(self, site):
        std = estimate_plt(site, CachingMode.STANDARD, DAY, COND)
        cat = estimate_plt(site, CachingMode.CATALYST, DAY, COND)
        assert cat <= std

    def test_monotone_in_rtt(self, site):
        plts = [estimate_plt(site, CachingMode.STANDARD, HOUR,
                             NetworkConditions.of(60, rtt))
                for rtt in (10, 40, 100)]
        assert plts == sorted(plts)

    def test_no_cache_worst(self, site):
        none = estimate_plt(site, CachingMode.NO_CACHE, HOUR, COND)
        std = estimate_plt(site, CachingMode.STANDARD, HOUR, COND)
        assert none >= std


class TestEstimateReduction:
    def test_in_unit_interval(self, site):
        reduction = estimate_reduction(site, DAY, COND)
        assert 0.0 <= reduction < 1.0

    def test_higher_latency_higher_reduction(self, site):
        low = estimate_reduction(site, DAY, NetworkConditions.of(60, 10))
        high = estimate_reduction(site, DAY, NetworkConditions.of(60, 100))
        assert high > low


class TestAgainstSimulator:
    def test_rank_correlation_with_des(self):
        """Analytic and simulated PLT must order conditions the same way."""
        from repro.core.modes import build_mode
        from repro.core.catalyst import run_visit_sequence
        site = build_figure1_site()
        conditions = [NetworkConditions.of(mbps, rtt)
                      for mbps in (8, 60) for rtt in (10, 100)]
        analytic, simulated = [], []
        for cond in conditions:
            analytic.append(estimate_plt(site, CachingMode.STANDARD,
                                         2 * HOUR, cond))
            setup = build_mode(CachingMode.STANDARD, site)
            outcomes = run_visit_sequence(setup, cond, [0.0, 2 * HOUR])
            simulated.append(outcomes[1].result.plt_s)

        def ranks(values):
            order = sorted(range(len(values)), key=values.__getitem__)
            rank = [0] * len(values)
            for position, index in enumerate(order):
                rank[index] = position
            return rank
        assert ranks(analytic) == ranks(simulated)
