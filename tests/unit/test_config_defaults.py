"""No entry point may hold a shared mutable ``BrowserConfig`` default.

``def f(config=BrowserConfig())`` evaluates the default ONCE at import
time, so every caller that omits the argument shares — and can mutate —
one instance.  Every entry point instead takes ``Optional[BrowserConfig]
= None`` and constructs a fresh default per call.  This regression test
sweeps *every* public callable in the package for instance defaults, so
a new entry point can't quietly reintroduce the bug, and pins the
per-call-freshness behaviour at the places users actually hit.
"""

import importlib
import inspect
import pkgutil

import repro
from repro.browser.engine import BrowserConfig, BrowserSession
from repro.core.modes import CachingMode, build_mode
from repro.workload.sitegen import generate_site


def iter_package_callables():
    """Yield (qualified name, callable) for every function and class
    defined anywhere under the ``repro`` package."""
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        module = importlib.import_module(info.name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    yield f"{info.name}.{attr_name}", obj


def signature_defaults(obj):
    try:
        if inspect.isclass(obj):
            sig = inspect.signature(obj.__init__)
        else:
            sig = inspect.signature(obj)
    except (TypeError, ValueError):
        return
    for param in sig.parameters.values():
        if param.default is not inspect.Parameter.empty:
            yield param.name, param.default


def test_no_callable_has_browser_config_instance_default():
    offenders = []
    for name, obj in iter_package_callables():
        for param_name, default in signature_defaults(obj):
            if isinstance(default, BrowserConfig):
                offenders.append(f"{name}({param_name}=...)")
    assert not offenders, (
        "shared mutable BrowserConfig defaults found: "
        + ", ".join(sorted(set(offenders))))


def test_browser_session_default_configs_are_distinct():
    a, b = BrowserSession(), BrowserSession()
    assert a.config is not b.config
    assert a.config == b.config


def test_build_mode_default_configs_are_distinct():
    site = generate_site("https://defaults.example", seed=3)
    setups = [build_mode(CachingMode.STANDARD, site) for _ in range(2)]
    configs = [setup.session.config for setup in setups]
    assert configs[0] is not configs[1]


def test_explicit_config_is_used_verbatim():
    config = BrowserConfig()
    session = BrowserSession(config)
    assert session.config is config


def test_entry_points_accept_none_config():
    """The high-traffic entry points run with config omitted (each
    constructing a fresh default) — the call pattern the sweep, the
    harness and the CLI all rely on."""
    from repro.experiments.harness import measure_pair
    from repro.netsim.link import NetworkConditions

    site = generate_site("https://defaults2.example", seed=4)
    conditions = NetworkConditions.of(60, 40, label="60Mbps/40ms")
    m = measure_pair(site, CachingMode.STANDARD, conditions, 60.0)
    assert m.cold_plt_ms > 0
