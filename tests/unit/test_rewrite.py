"""Unit tests for SW-registration injection."""

from repro.html.parser import parse_html
from repro.html.rewrite import (CACHE_SW_PATH, SW_REGISTRATION_MARKER,
                                has_sw_registration, inject_sw_registration,
                                sw_registration_script)


class TestInjection:
    def test_injected_after_head(self):
        out = inject_sw_registration("<html><head><title>t</title></head>"
                                     "<body></body></html>")
        head_pos = out.index("<head>")
        marker_pos = out.index(SW_REGISTRATION_MARKER)
        title_pos = out.index("<title>")
        assert head_pos < marker_pos < title_pos

    def test_head_with_attributes(self):
        out = inject_sw_registration('<html><head lang="en"></head></html>')
        assert has_sw_registration(out)

    def test_fallback_after_html(self):
        out = inject_sw_registration("<html><body>x</body></html>")
        assert out.index(SW_REGISTRATION_MARKER) > out.index("<html>")

    def test_fallback_prepend(self):
        out = inject_sw_registration("<p>bare fragment</p>")
        assert out.startswith("<script")

    def test_idempotent(self):
        once = inject_sw_registration("<html><head></head></html>")
        assert inject_sw_registration(once) == once

    def test_original_markup_preserved(self):
        original = "<html><head><!-- comment --></head><body>x</body></html>"
        out = inject_sw_registration(original)
        assert "<!-- comment -->" in out
        assert "<body>x</body>" in out

    def test_custom_sw_path(self):
        out = inject_sw_registration("<html><head></head></html>",
                                     sw_path="/custom-sw.js")
        assert "/custom-sw.js" in out

    def test_result_still_parses(self):
        out = inject_sw_registration("<html><head></head>"
                                     "<body><img src=a.png></body></html>")
        doc = parse_html(out)
        assert doc.find("img") is not None
        script = doc.find("script")
        assert script.get("id") == SW_REGISTRATION_MARKER


class TestSnippet:
    def test_snippet_mentions_default_path(self):
        assert CACHE_SW_PATH in sw_registration_script()

    def test_snippet_guards_for_support(self):
        assert "'serviceWorker' in navigator" in sw_registration_script()

    def test_detection(self):
        assert not has_sw_registration("<html></html>")
        assert has_sw_registration(sw_registration_script())
