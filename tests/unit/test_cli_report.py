"""Unit tests for the CLI report command."""

import pathlib

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_from_artifacts(self, tmp_path, capsys, monkeypatch):
        results = tmp_path / "results"
        results.mkdir()
        (results / "headline_claim.txt").write_text("overall: 30.6%")
        out = tmp_path / "out.html"
        assert main(["report", "--results", str(results),
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "30.6%" in out.read_text()
        assert str(out) in capsys.readouterr().out

    def test_report_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", "--results", str(tmp_path / "nope"),
                     "--out", str(tmp_path / "o.html")]) == 1
        err = capsys.readouterr().err
        assert "repro cli error missing-artifact-dir" in err
        assert "nope" in err
