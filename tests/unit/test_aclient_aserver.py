"""Focused tests for asyncio client/server corner cases.

(The happy paths live in tests/integration/test_asyncio_http.py; these
cover the failure handling.)
"""

import asyncio

import pytest

from repro.http.aclient import AsyncHttpClient
from repro.http.aserver import AsyncHttpServer
from repro.http.errors import HttpError, RequestTimeout
from repro.http.messages import Request, Response


def run(coro):
    return asyncio.run(coro)


class TestClientErrors:
    def test_unsupported_scheme_rejected(self):
        async def scenario():
            async with AsyncHttpClient() as client:
                with pytest.raises(HttpError, match="scheme"):
                    await client.get("ftp://example.com/x")
        run(scenario())

    def test_missing_host_rejected(self):
        async def scenario():
            async with AsyncHttpClient() as client:
                with pytest.raises(HttpError, match="host"):
                    await client.get("http:///nohost")
        run(scenario())

    def test_closed_client_rejects_requests(self):
        async def scenario():
            client = AsyncHttpClient()
            await client.close()
            with pytest.raises(HttpError, match="closed"):
                await client.get("http://127.0.0.1:1/x")
        run(scenario())

    def test_request_timeout_raised(self):
        async def never_responds(reader, writer):
            await asyncio.sleep(10)

        async def scenario():
            server = await asyncio.start_server(never_responds,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with AsyncHttpClient(timeout_s=0.2) as client:
                    with pytest.raises(RequestTimeout):
                        await client.get(f"http://127.0.0.1:{port}/slow")
            finally:
                server.close()
                await server.wait_closed()
        run(scenario())

    def test_stale_pooled_connection_retried(self):
        """Server closes idle connections; the next request must retry
        transparently on a fresh connection."""
        async def scenario():
            handler = lambda req: Response(body=req.path.encode())
            async with AsyncHttpServer(handler,
                                       keepalive_timeout_s=0.15) as server:
                async with AsyncHttpClient() as client:
                    first = await client.get(server.base_url + "/one")
                    await asyncio.sleep(0.4)  # server times the conn out
                    second = await client.get(server.base_url + "/two")
                    return first.response.body, second.response.body
        first, second = run(scenario())
        assert first == b"/one"
        assert second == b"/two"


class TestServerBehaviour:
    def test_connection_close_honoured(self):
        def handler(request):
            return Response(body=b"x",
                            headers={"Connection": "close"})

        async def scenario():
            async with AsyncHttpServer(handler) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                data = await reader.read()  # until server closes
                writer.close()
                return data
        data = run(scenario())
        assert b"200" in data
        assert b"Connection: close" in data

    def test_http10_defaults_to_close(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET / HTTP/1.0\r\n\r\n")
                await writer.drain()
                data = await reader.read()
                writer.close()
                return data
        assert b"200" in run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response()) as server:
                with pytest.raises(RuntimeError):
                    await server.start()
        run(scenario())

    def test_requests_served_counter(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                async with AsyncHttpClient() as client:
                    for _ in range(3):
                        await client.get(server.base_url + "/")
                return server.requests_served
        assert run(scenario()) == 3

    def test_non_response_handler_result_is_500(self):
        async def scenario():
            async with AsyncHttpServer(lambda req: "oops") as server:
                async with AsyncHttpClient() as client:
                    return (await client.get(server.base_url + "/")).response
        assert run(scenario()).status == 500


class TestSlowLoris:
    @pytest.mark.faults
    def test_stalled_headers_get_408(self):
        """A peer that sends a request line then stalls mid-headers is
        answered 408 and disconnected, not held open."""
        async def scenario():
            handler = lambda req: Response(body=b"ok")
            async with AsyncHttpServer(handler,
                                       header_read_timeout_s=0.2) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET /x HTTP/1.1\r\nHost: h\r\n")  # no end
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                assert b"408" in data.split(b"\r\n")[0]
                assert b"Connection: close" in data
                assert server.timeouts_408 == 1
                assert server.requests_served == 0
        run(scenario())

    @pytest.mark.faults
    def test_idle_keepalive_closed_silently(self):
        """Between requests (no request line yet) a quiet connection is
        closed with no status line — idleness is not an offence."""
        async def scenario():
            handler = lambda req: Response(body=b"ok")
            async with AsyncHttpServer(handler,
                                       keepalive_timeout_s=0.15,
                                       header_read_timeout_s=5.0) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                data = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                assert data == b""  # silent close, no 408
                assert server.timeouts_408 == 0
        run(scenario())

    @pytest.mark.faults
    def test_prompt_request_unaffected_by_header_deadline(self):
        async def scenario():
            handler = lambda req: Response(body=b"ok")
            async with AsyncHttpServer(handler,
                                       header_read_timeout_s=0.3) as server:
                async with AsyncHttpClient() as client:
                    result = await client.get(server.base_url + "/x")
                    assert result.response.status == 200
        run(scenario())


class TestClientRetryBudget:
    @pytest.mark.faults
    def test_connection_drops_retried_until_success(self):
        """A server that kills the first N connections mid-exchange is
        absorbed by the retry budget."""
        drops = 2

        async def flaky(reader, writer):
            nonlocal drops
            await reader.readuntil(b"\r\n\r\n")
            if drops > 0:
                drops -= 1
                writer.close()
                return
            writer.write(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
            await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_server(flaky, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with AsyncHttpClient(max_retries=3,
                                           backoff_base_s=0.01) as client:
                    result = await client.get(f"http://127.0.0.1:{port}/r")
                    assert result.response.status == 200
                    assert result.attempts == 3
                    assert client.retries == 2
            finally:
                server.close()
                await server.wait_closed()
        run(scenario())

    @pytest.mark.faults
    def test_budget_exhaustion_propagates_failure(self):
        async def always_drops(reader, writer):
            await reader.readuntil(b"\r\n\r\n")
            writer.close()

        async def scenario():
            server = await asyncio.start_server(always_drops,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with AsyncHttpClient(max_retries=1,
                                           backoff_base_s=0.01) as client:
                    with pytest.raises(Exception):
                        await client.get(f"http://127.0.0.1:{port}/r")
                    assert client.retries == 1
            finally:
                server.close()
                await server.wait_closed()
        run(scenario())

    @pytest.mark.faults
    def test_retry_backoff_is_deterministic(self):
        from repro.netsim.faults import backoff_delay
        client = AsyncHttpClient(retry_seed=5)
        a = backoff_delay(0, client.backoff_base_s, client.backoff_cap_s,
                          client.retry_seed, "/u")
        b = backoff_delay(0, client.backoff_base_s, client.backoff_cap_s,
                          client.retry_seed, "/u")
        assert a == b
