"""Focused tests for asyncio client/server corner cases.

(The happy paths live in tests/integration/test_asyncio_http.py; these
cover the failure handling.)
"""

import asyncio

import pytest

from repro.http.aclient import AsyncHttpClient
from repro.http.aserver import AsyncHttpServer
from repro.http.errors import HttpError, RequestTimeout
from repro.http.messages import Request, Response


def run(coro):
    return asyncio.run(coro)


class TestClientErrors:
    def test_unsupported_scheme_rejected(self):
        async def scenario():
            async with AsyncHttpClient() as client:
                with pytest.raises(HttpError, match="scheme"):
                    await client.get("ftp://example.com/x")
        run(scenario())

    def test_missing_host_rejected(self):
        async def scenario():
            async with AsyncHttpClient() as client:
                with pytest.raises(HttpError, match="host"):
                    await client.get("http:///nohost")
        run(scenario())

    def test_closed_client_rejects_requests(self):
        async def scenario():
            client = AsyncHttpClient()
            await client.close()
            with pytest.raises(HttpError, match="closed"):
                await client.get("http://127.0.0.1:1/x")
        run(scenario())

    def test_request_timeout_raised(self):
        async def never_responds(reader, writer):
            await asyncio.sleep(10)

        async def scenario():
            server = await asyncio.start_server(never_responds,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with AsyncHttpClient(timeout_s=0.2) as client:
                    with pytest.raises(RequestTimeout):
                        await client.get(f"http://127.0.0.1:{port}/slow")
            finally:
                server.close()
                await server.wait_closed()
        run(scenario())

    def test_stale_pooled_connection_retried(self):
        """Server closes idle connections; the next request must retry
        transparently on a fresh connection."""
        async def scenario():
            handler = lambda req: Response(body=req.path.encode())
            async with AsyncHttpServer(handler,
                                       keepalive_timeout_s=0.15) as server:
                async with AsyncHttpClient() as client:
                    first = await client.get(server.base_url + "/one")
                    await asyncio.sleep(0.4)  # server times the conn out
                    second = await client.get(server.base_url + "/two")
                    return first.response.body, second.response.body
        first, second = run(scenario())
        assert first == b"/one"
        assert second == b"/two"


class TestServerBehaviour:
    def test_connection_close_honoured(self):
        def handler(request):
            return Response(body=b"x",
                            headers={"Connection": "close"})

        async def scenario():
            async with AsyncHttpServer(handler) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                data = await reader.read()  # until server closes
                writer.close()
                return data
        data = run(scenario())
        assert b"200" in data
        assert b"Connection: close" in data

    def test_http10_defaults_to_close(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET / HTTP/1.0\r\n\r\n")
                await writer.drain()
                data = await reader.read()
                writer.close()
                return data
        assert b"200" in run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response()) as server:
                with pytest.raises(RuntimeError):
                    await server.start()
        run(scenario())

    def test_requests_served_counter(self):
        async def scenario():
            async with AsyncHttpServer(
                    lambda req: Response(body=b"x")) as server:
                async with AsyncHttpClient() as client:
                    for _ in range(3):
                        await client.get(server.base_url + "/")
                return server.requests_served
        assert run(scenario()) == 3

    def test_non_response_handler_result_is_500(self):
        async def scenario():
            async with AsyncHttpServer(lambda req: "oops") as server:
                async with AsyncHttpClient() as client:
                    return (await client.get(server.base_url + "/")).response
        assert run(scenario()).status == 500
