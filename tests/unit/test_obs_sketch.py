"""Unit tests for the mergeable log-bucketed sketch (repro.obs.sketch)."""

import json
import math

import pytest

from repro.obs import LogHistogram

pytestmark = pytest.mark.obs


class TestObserve:
    def test_exact_aggregates(self):
        sketch = LogHistogram()
        for value in (1.0, 2.0, 3.0):
            sketch.observe(value)
        assert sketch.count == 3
        assert sketch.total == pytest.approx(6.0)
        assert sketch.min == 1.0
        assert sketch.max == 3.0
        assert sketch.mean() == pytest.approx(2.0)

    def test_weighted_observe(self):
        sketch = LogHistogram()
        sketch.observe(5.0, n=10)
        assert sketch.count == 10
        assert sketch.total == pytest.approx(50.0)
        sketch.observe(5.0, n=0)  # no-op
        assert sketch.count == 10

    def test_zero_and_subtrackable_values(self):
        sketch = LogHistogram()
        sketch.observe(0.0)
        sketch.observe(1e-12)
        assert sketch.zero_count == 2
        assert sketch.percentile(50) == 0.0

    def test_empty_percentile_is_zero(self):
        assert LogHistogram().percentile(99) == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            LogHistogram().percentile(101)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(relative_error=0.0)
        with pytest.raises(ValueError):
            LogHistogram(relative_error=1.0)
        with pytest.raises(ValueError):
            LogHistogram(max_buckets=1)


class TestAccuracy:
    def test_relative_error_bound_uniform(self):
        error = 0.01
        sketch = LogHistogram(relative_error=error)
        values = [float(i + 1) for i in range(5_000)]
        for value in values:
            sketch.observe(value)
        values.sort()
        for q in (1, 10, 25, 50, 75, 90, 99, 100):
            rank = max(1, math.ceil(q / 100.0 * len(values)))
            truth = values[rank - 1]
            assert abs(sketch.percentile(q) - truth) <= error * truth

    def test_single_sample(self):
        sketch = LogHistogram()
        sketch.observe(42.0)
        for q in (0, 50, 100):
            # clamped to the observed min == max -> exact
            assert sketch.percentile(q) == 42.0

    def test_wide_dynamic_range(self):
        error = 0.01
        sketch = LogHistogram(relative_error=error)
        values = [10.0 ** exp for exp in range(-6, 7)]
        for value in values:
            sketch.observe(value)
        for q in (50, 100):
            rank = max(1, math.ceil(q / 100.0 * len(values)))
            truth = values[rank - 1]  # already sorted
            assert abs(sketch.percentile(q) - truth) <= error * truth

    def test_bucket_collapse_keeps_tail_accurate(self):
        sketch = LogHistogram(relative_error=0.01, max_buckets=16)
        values = [1.001 ** i for i in range(2_000)]
        for value in values:
            sketch.observe(value)
        assert len(sketch) <= 17
        truth = sorted(values)[math.ceil(0.99 * len(values)) - 1]
        assert sketch.percentile(99) == pytest.approx(truth, rel=0.02)


class TestMerge:
    def test_merge_is_lossless(self):
        # The tentpole property: merged shards == one sketch over the
        # pooled samples, bucket for bucket.
        pooled = LogHistogram()
        shards = [LogHistogram() for _ in range(4)]
        for i in range(1_000):
            value = 0.5 + (i * 13 % 997)
            pooled.observe(value)
            shards[i % 4].observe(value)
        merged = LogHistogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.count == pooled.count
        assert merged._buckets == pooled._buckets
        for q in (50, 90, 99):
            assert merged.percentile(q) == pooled.percentile(q)

    def test_merge_empty_shard_is_identity(self):
        sketch = LogHistogram()
        sketch.observe(7.0)
        before = sketch.to_dict()
        sketch.merge(LogHistogram())
        assert sketch.to_dict() == before

    def test_merge_accepts_dump(self):
        a, b = LogHistogram(), LogHistogram()
        a.observe(1.0)
        b.observe(100.0)
        a.merge(b.to_dict())
        assert a.count == 2
        assert a.max == 100.0

    def test_merge_geometry_mismatch_raises(self):
        with pytest.raises(ValueError):
            LogHistogram(relative_error=0.01).merge(
                LogHistogram(relative_error=0.05))


class TestPortability:
    def test_dict_roundtrip_through_json(self):
        sketch = LogHistogram()
        for value in (0.0, 0.001, 1.0, 250.0, 1e6):
            sketch.observe(value)
        restored = LogHistogram.from_dict(
            json.loads(json.dumps(sketch.to_dict())))
        assert restored.count == sketch.count
        assert restored.zero_count == sketch.zero_count
        assert restored._buckets == sketch._buckets
        for q in (50, 99):
            assert restored.percentile(q) == sketch.percentile(q)

    def test_empty_roundtrip(self):
        restored = LogHistogram.from_dict(LogHistogram().to_dict())
        assert restored.count == 0
        assert restored.percentile(50) == 0.0

    def test_snapshot_shape(self):
        snap = LogHistogram().snapshot()
        for key in ("count", "total", "mean", "min", "max",
                    "p50", "p90", "p99"):
            assert key in snap
        assert snap["min"] == snap["max"] == 0.0
