"""Unit tests for the vectorized analytic sweep engine."""

import math

import pytest

from repro.browser.engine import BrowserConfig
from repro.core.analysis import AnalyticModel
from repro.core.analysis_vec import (VectorAnalyticModel, batch_estimate_plt,
                                     compile_site, numpy_available)
from repro.core.modes import CachingMode
from repro.html.parser import ResourceKind
from repro.netsim.clock import DAY, HOUR, MINUTE, WEEK
from repro.netsim.link import NetworkConditions
from repro.workload.headers_model import HeaderPolicy
from repro.workload.sitegen import (PageSpec, ResourceSpec, SiteSpec,
                                    generate_site)

pytestmark = pytest.mark.analytic

COND = NetworkConditions.of(60, 40)
CONDITIONS = [NetworkConditions.of(mbps, rtt)
              for mbps in (8.0, 60.0) for rtt in (10.0, 100.0)]
MODES = (CachingMode.NO_CACHE, CachingMode.STANDARD, CachingMode.CATALYST,
         CachingMode.CATALYST_SESSIONS)
DELAYS = (0.0, MINUTE, HOUR, DAY, WEEK)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def site():
    return generate_site("https://vec.example", seed=71)


def single_page_site(specs: dict[str, ResourceSpec],
                     refs: tuple[str, ...]) -> SiteSpec:
    page = PageSpec(url="/index.html", html_size_bytes=15_000,
                    html_change_period_s=6 * HOUR, html_content_seed=3,
                    html_refs=refs, resources=specs)
    return SiteSpec(origin="https://one.example", seed=0,
                    pages={"/index.html": page})


def resource(url: str, *, size: int = 8_000, mode: str = "max-age",
             ttl: float = 1e9, period: float = math.inf,
             via: str = "html", dynamic: bool = False,
             kind: ResourceKind = ResourceKind.IMAGE,
             children: tuple[str, ...] = ()) -> ResourceSpec:
    return ResourceSpec(
        url=url, kind=kind, size_bytes=size,
        policy=HeaderPolicy(mode=mode, ttl_s=ttl),
        change_period_s=period, content_seed=1, discovered_via=via,
        children=children, dynamic=dynamic,
        fixed_change_times=() if math.isinf(period) else None)


def assert_matches_scalar(site, backend, modes=MODES, delays=DELAYS,
                          conditions=CONDITIONS, cold=False, rel=1e-9):
    model = VectorAnalyticModel(backend=backend)
    batch = model.batch_plt(compile_site(site), modes, delays, conditions,
                            cold=cold)
    for ci, cond in enumerate(conditions):
        scalar_model = AnalyticModel(cond)
        for mi, mode in enumerate(modes):
            for di, delay in enumerate(delays):
                expected = scalar_model.estimate_plt(site, mode, delay,
                                                     cold=cold)
                assert float(batch[ci][mi][di]) == pytest.approx(
                    expected, rel=rel), (backend, cond, mode, delay)


class TestCompileSite:
    def test_level_contiguous_layout(self, site):
        compiled = compile_site(site)
        end1, end2, end3 = compiled.level_ends
        assert 0 < end1 <= end2 <= end3 == compiled.n_slots
        page = site.index
        assert end1 == len(page.html_refs)
        assert compiled.html_size == page.html_size_bytes

    def test_compile_is_memoized(self, site):
        assert compile_site(site) is compile_site(site)

    def test_script_sizes_are_html_level_scripts_only(self, site):
        compiled = compile_site(site)
        page = site.index
        expected = sorted(page.resources[url].size_bytes
                          for url in page.html_refs
                          if page.resources[url].kind
                          is ResourceKind.SCRIPT)
        assert sorted(compiled.script_sizes) == expected

    def test_negative_size_rejected(self):
        bad = single_page_site({"/r.png": resource("/r.png", size=-1)},
                               ("/r.png",))
        with pytest.raises(ValueError, match="negative resource size"):
            compile_site(bad)


@pytest.mark.parametrize("backend", BACKENDS)
class TestEquivalence:
    def test_generated_site_full_grid(self, site, backend):
        assert_matches_scalar(site, backend)

    def test_cold_visits(self, site, backend):
        assert_matches_scalar(site, backend, cold=True,
                              delays=(HOUR, DAY))

    def test_empty_page(self, backend):
        empty = single_page_site({}, ())
        assert_matches_scalar(empty, backend)

    def test_wave_boundary_at_exactly_k(self, backend):
        k = BrowserConfig().connections_per_origin
        specs = {f"/r{i}.png": resource(f"/r{i}.png", mode="no-store",
                                        size=5_000 + 997 * i)
                 for i in range(k)}
        assert_matches_scalar(single_page_site(specs, tuple(specs)),
                              backend)
        specs_over = {f"/r{i}.png": resource(f"/r{i}.png", mode="no-store",
                                             size=5_000 + 997 * i)
                      for i in range(k + 1)}
        assert_matches_scalar(single_page_site(specs_over,
                                               tuple(specs_over)),
                              backend)

    def test_policy_branches(self, backend):
        specs = {
            "/store.bin": resource("/store.bin", mode="no-store"),
            "/reval.bin": resource("/reval.bin", mode="no-cache",
                                   period=DAY),
            "/none.bin": resource("/none.bin", mode="none", period=HOUR),
            "/fresh.bin": resource("/fresh.bin", ttl=10 * WEEK),
            "/expired.bin": resource("/expired.bin", ttl=MINUTE,
                                     period=DAY),
            "/dyn.bin": resource("/dyn.bin", mode="no-store",
                                 dynamic=True),
            "/js.bin": resource("/js.bin", mode="no-cache", via="js",
                                period=DAY),
        }
        assert_matches_scalar(single_page_site(specs, tuple(specs)),
                              backend)

    def test_three_levels_with_scripts(self, backend):
        specs = {
            "/app.js": resource("/app.js", kind=ResourceKind.SCRIPT,
                                size=120_000, mode="no-cache",
                                children=("/chunk.js",)),
            "/chunk.js": resource("/chunk.js", kind=ResourceKind.SCRIPT,
                                  via="js", mode="no-cache",
                                  children=("/lazy.png",)),
            "/lazy.png": resource("/lazy.png", via="js", period=DAY),
            "/style.css": resource("/style.css",
                                   kind=ResourceKind.STYLESHEET,
                                   children=("/bg.png",)),
            "/bg.png": resource("/bg.png", via="css"),
        }
        assert_matches_scalar(single_page_site(specs,
                                               ("/app.js", "/style.css")),
                              backend)

    def test_module_level_helper(self, site, backend):
        batch = batch_estimate_plt(site, (CachingMode.STANDARD,), (DAY,),
                                   [COND], backend=backend)
        expected = AnalyticModel(COND).estimate_plt(
            site, CachingMode.STANDARD, DAY)
        assert float(batch[0][0][0]) == pytest.approx(expected, rel=1e-9)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestBackendAgreement:
    def test_numpy_and_python_agree_tightly(self, site):
        fast = VectorAnalyticModel(backend="numpy").batch_plt(
            compile_site(site), MODES, DELAYS, CONDITIONS)
        slow = VectorAnalyticModel(backend="python").batch_plt(
            compile_site(site), MODES, DELAYS, CONDITIONS)
        for ci in range(len(CONDITIONS)):
            for mi in range(len(MODES)):
                for di in range(len(DELAYS)):
                    assert float(fast[ci][mi][di]) == pytest.approx(
                        slow[ci][mi][di], rel=1e-12)


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            VectorAnalyticModel(backend="fortran")

    def test_numpy_backend_without_numpy_raises(self, monkeypatch):
        from repro.core import analysis_vec
        monkeypatch.setattr(analysis_vec, "_np", None)
        with pytest.raises(RuntimeError, match="numpy backend requested"):
            VectorAnalyticModel(backend="numpy")
        assert VectorAnalyticModel(backend="auto").backend == "python"

    @pytest.mark.parametrize("delay", [-1.0, math.inf, math.nan])
    def test_bad_delays_rejected(self, site, delay):
        model = VectorAnalyticModel(backend=BACKENDS[0])
        with pytest.raises(ValueError, match="delays must be finite"):
            model.batch_plt(compile_site(site), (CachingMode.STANDARD,),
                            (delay,), [COND])

    def test_negative_config_cost_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            VectorAnalyticModel(config=BrowserConfig(server_think_s=-0.1))


class TestSweepShape:
    def test_sweep_stacks_sites(self, site):
        other = generate_site("https://vec2.example", seed=72)
        model = VectorAnalyticModel(backend=BACKENDS[0])
        out = model.sweep([site, other], MODES, DELAYS, CONDITIONS)
        assert len(out) == 2
        assert len(out[0]) == len(CONDITIONS)
        assert len(out[0][0]) == len(MODES)
        assert len(out[0][0][0]) == len(DELAYS)

    def test_accepts_raw_site_spec(self, site):
        model = VectorAnalyticModel(backend=BACKENDS[0])
        direct = model.batch_plt(site, (CachingMode.STANDARD,), (DAY,),
                                 [COND])
        precompiled = model.batch_plt(compile_site(site),
                                      (CachingMode.STANDARD,), (DAY,),
                                      [COND])
        assert float(direct[0][0][0]) == float(precompiled[0][0][0])
