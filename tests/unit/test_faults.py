"""Unit tests for the fault-injection layer and client resilience.

Covers the :mod:`repro.netsim.faults` primitives (deterministic draws,
plans, presets, backoff), the :class:`NetworkClient` retry machinery
(watchdog timeouts, budgets, FetchFailed), the end-to-end determinism
guarantee (same seed + same plan => identical trace and PLT), and a CLI
smoke invocation of the ``faultsweep`` subcommand.
"""

import math

import pytest

from repro.browser.fetcher import (DEFAULT_FAULT_GUARD_TIMEOUT_S,
                                   FetchFailed, FetchTimeout, NetworkClient)
from repro.http.messages import Request, Response
from repro.netsim.faults import (FaultDecision, FaultKind, FaultPlan,
                                 InjectedReset, InjectedTruncation,
                                 backoff_delay, captive_portal,
                                 deterministic_draw, flaky_5g, lossy_wifi)
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator

COND = NetworkConditions.of(60, 40)


def make_client(sim, handler, plan=None, conditions=None, **kwargs):
    link = Link(sim, conditions or COND, fault_plan=plan)
    return NetworkClient(sim=sim, link=link, handler=handler, **kwargs)


def simple_handler(request: Request, at_time: float) -> Response:
    return Response(body=b"k" * 1000)


class TestDeterministicDraw:
    def test_same_inputs_same_draw(self):
        assert deterministic_draw(7, "/a.css", 0) \
            == deterministic_draw(7, "/a.css", 0)

    def test_different_inputs_differ(self):
        draws = {deterministic_draw(7, "/a.css", attempt)
                 for attempt in range(8)}
        assert len(draws) == 8

    def test_uniform_range(self):
        draws = [deterministic_draw(0, f"/r{i}") for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55


class TestFaultPlan:
    def test_zero_plan_injects_nothing(self):
        plan = FaultPlan()
        assert not plan.injects_anything
        assert plan.decide("/a", 0) is None

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=0.8, reset_rate=0.5)
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(truncate_fraction=1.5)

    def test_decide_is_deterministic(self):
        plan = FaultPlan.mixed(0.3, seed=5)
        for attempt in range(4):
            assert plan.decide("/x.js", attempt) \
                == plan.decide("/x.js", attempt)

    def test_decide_respects_rates_statistically(self):
        plan = FaultPlan.request_loss(0.1, seed=3)
        faults = sum(1 for i in range(5000)
                     if plan.decide(f"/r{i}") is not None)
        assert 400 < faults < 600  # ~10% of 5000

    def test_mixed_plan_produces_each_kind(self):
        plan = FaultPlan.mixed(0.5, seed=1)
        kinds = {d.kind for d in (plan.decide(f"/r{i}")
                                  for i in range(400)) if d is not None}
        assert {FaultKind.LOSS, FaultKind.RESET,
                FaultKind.TRUNCATE} <= kinds

    def test_retry_attempt_redraws(self):
        """A faulted attempt must not doom its retries: the draw is
        keyed by attempt number."""
        plan = FaultPlan.request_loss(0.5, seed=2)
        urls = [f"/r{i}" for i in range(200)
                if plan.decide(f"/r{i}", 0) is not None]
        cleared = sum(1 for url in urls if plan.decide(url, 1) is None)
        assert cleared > len(urls) * 0.25

    def test_presets_construct(self):
        for preset in (flaky_5g(), lossy_wifi(), captive_portal()):
            assert preset.injects_anything
            assert preset.label
        assert captive_portal().stall_rate > flaky_5g().stall_rate


class TestBackoff:
    def test_exponential_and_capped(self):
        base = [backoff_delay(a, 0.25, 4.0, 0, "/u") for a in range(8)]
        nominal = [min(4.0, 0.25 * 2 ** a) for a in range(8)]
        for delay, cap in zip(base, nominal):
            assert 0.5 * cap <= delay < cap  # equal jitter in [0.5, 1.0)

    def test_deterministic(self):
        assert backoff_delay(2, 0.25, 4.0, 9, "/u") \
            == backoff_delay(2, 0.25, 4.0, 9, "/u")
        assert backoff_delay(2, 0.25, 4.0, 9, "/u") \
            != backoff_delay(2, 0.25, 4.0, 9, "/v")


class TestClientResilience:
    def test_loss_retried_and_succeeds(self):
        """First attempt lost, watchdog fires, retry clears."""
        sim = Simulator()
        plan = FaultPlan(loss_rate=1e-9, seed=0)  # active plan, manual kind
        client = make_client(sim, simple_handler, plan=plan,
                             request_timeout_s=0.5, max_retries=2)
        decisions = [FaultDecision(kind=FaultKind.LOSS), None]
        client.link.fault_plan = _ScriptedPlan(decisions)

        def proc():
            response = yield from client.exchange(Request(url="/a"))
            return response
        response = sim.run_process(proc())
        assert response.body == b"k" * 1000
        assert client.retries == 1
        assert client.faults_seen == 1
        assert client.exchanges[-1].attempts == 2
        assert sim.now > 0.5  # one watchdog period was paid

    def test_budget_exhaustion_raises_fetch_failed(self):
        sim = Simulator()
        client = make_client(sim, simple_handler,
                             plan=_ScriptedPlan(
                                 [FaultDecision(kind=FaultKind.RESET)] * 9),
                             request_timeout_s=1.0, max_retries=2)

        def proc():
            yield from client.exchange(Request(url="/a"))
        with pytest.raises(FetchFailed) as info:
            sim.run_process(proc())
        assert info.value.attempts == 3
        assert isinstance(info.value.cause, InjectedReset)

    def test_truncation_is_retried(self):
        sim = Simulator()
        client = make_client(
            sim, simple_handler,
            plan=_ScriptedPlan([
                FaultDecision(kind=FaultKind.TRUNCATE,
                              truncate_fraction=0.5), None]),
            request_timeout_s=5.0, max_retries=2)

        def proc():
            return (yield from client.exchange(Request(url="/a")))
        response = sim.run_process(proc())
        assert response.body == b"k" * 1000
        assert client.retries == 1

    def test_guard_timeout_armed_when_plan_active(self):
        """A plan with no explicit timeout must not deadlock on a LOSS."""
        sim = Simulator()
        client = make_client(
            sim, simple_handler,
            plan=_ScriptedPlan([FaultDecision(kind=FaultKind.LOSS), None]),
            max_retries=1)  # request_timeout_s stays inf
        assert math.isinf(client.request_timeout_s)

        def proc():
            return (yield from client.exchange(Request(url="/a")))
        response = sim.run_process(proc())
        assert response.status == 200
        assert sim.now >= DEFAULT_FAULT_GUARD_TIMEOUT_S

    def test_timeout_without_plan_applies(self):
        """An explicit timeout guards even fault-free slow origins."""
        sim = Simulator()

        def slow_handler(request, at_time):
            return Response(body=b"x")

        client = make_client(sim, slow_handler, request_timeout_s=0.01,
                             max_retries=0, server_think_s=10.0)

        def proc():
            yield from client.exchange(Request(url="/a"))
        with pytest.raises(FetchFailed) as info:
            sim.run_process(proc())
        assert isinstance(info.value.cause, FetchTimeout)

    def test_clean_path_timing_unchanged_by_resilience_knobs(self):
        """With no plan and no timeout, timing is byte-identical to the
        legacy client (the no-fault configuration must not shift PLT)."""
        times = []
        for kwargs in ({}, {"max_retries": 9, "backoff_base_s": 7.0}):
            sim = Simulator()
            client = make_client(sim, simple_handler, **kwargs)

            def proc():
                yield from client.exchange(Request(url="/a"))
                return sim.now
            times.append(sim.run_process(proc()))
        assert times[0] == times[1]


class _ScriptedPlan:
    """Stand-in plan that replays a fixed decision sequence."""

    def __init__(self, decisions):
        self.decisions = list(decisions)
        self.seed = 0
        self.injects_anything = True

    def decide(self, url, attempt=0):
        if not self.decisions:
            return None
        return self.decisions.pop(0)


class TestEndToEndDeterminism:
    @pytest.mark.faults
    def test_same_seed_same_plan_identical_trace_and_plt(self):
        """The ISSUE's determinism criterion: two runs with the same
        seed and FaultPlan produce identical traces and PLTs."""
        from repro.core.catalyst import run_visit_sequence
        from repro.core.modes import CachingMode, build_mode
        from repro.browser.engine import BrowserConfig
        from repro.netsim.clock import DAY
        from repro.workload.sitegen import freeze_site, generate_site

        spec = freeze_site(generate_site("https://det.example", seed=11,
                                         median_resources=20))
        # per-URL hashing means a small site samples few draws; 25 %
        # makes at least one fault a near-certainty while the retry
        # budget still absorbs everything
        plan = FaultPlan.mixed(0.25, seed=4)
        config = BrowserConfig(request_timeout_s=2.0, max_retries=4)

        def run_once():
            setup = build_mode(CachingMode.CATALYST, spec, config)
            outcomes = run_visit_sequence(setup, COND, [0.0, DAY],
                                          fault_plan=plan)
            trace = [[(e.url, e.source.value, e.status, e.retries,
                       e.start_s, e.end_s)
                      for e in outcome.result.timeline()]
                     for outcome in outcomes]
            return trace, [o.result.plt_ms for o in outcomes]

        trace_a, plts_a = run_once()
        trace_b, plts_b = run_once()
        assert trace_a == trace_b
        assert plts_a == plts_b
        assert sum(e[3] for visit in trace_a for e in visit) > 0, \
            "the 25% plan should have forced at least one retry"


class TestFaultSweepCli:
    @pytest.mark.faults
    def test_faultsweep_smoke(self, capsys):
        """Tiny-grid CLI invocation: runs, prints, exits 0."""
        from repro.cli import main
        code = main(["faultsweep", "--sites", "1", "--rates", "0,0.05",
                     "--no-corruption"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fault sweep" in out
        assert "PASS" in out
