"""Unit tests for the population-scale fleet engine.

Covers the contracts the fleet CLI and CI gates depend on: analytic
backends agree to float tolerance, parallel DES merges *exactly* with
serial (the O(cohorts) streaming claim), the sketch cap bounds memory
without losing counts, and the payloads carry what ``compare_bench`` /
``report_html`` read.
"""

import pytest

from repro.core.analysis_vec import numpy_available
from repro.experiments.fleet import (DEFAULT_FLEET_COHORTS,
                                     FLEET_DES_FLOOR_PER_S,
                                     FLEET_POPULATION_FLOOR,
                                     FleetBenchResult, default_population,
                                     fleet_bench_payload, fleet_payload,
                                     run_fleet_analytic, run_fleet_des,
                                     validate_fleet)
from repro.workload.corpus import make_corpus
from repro.workload.population import sample_visits

pytestmark = pytest.mark.fleet

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def corpus():
    return make_corpus()


@pytest.fixture(scope="module")
def spec():
    return default_population(users=2_000, measured=100_000)


# -- analytic backend -------------------------------------------------------
@pytest.fixture(scope="module")
def analytic(spec, corpus):
    return {backend: run_fleet_analytic(spec, corpus, backend=backend)
            for backend in BACKENDS}


def test_analytic_covers_all_cohorts_and_modes(analytic, spec):
    result = analytic[BACKENDS[0]]
    assert [c.name for c in result.cohorts] == \
        [c.name for c in DEFAULT_FLEET_COHORTS]
    assert abs(sum(c.visits for c in result.cohorts)
               - spec.n_measured) < 1e-6
    for cohort in result.cohorts:
        assert [m.mode for m in cohort.modes] == ["standard", "catalyst"]
        assert 0.0 < cohort.cold_share < 1.0


def test_analytic_aggregates_are_sane(analytic):
    for result in analytic.values():
        by_mode = {m.mode: m for m in result.fleet}
        # catalyst never loses to standard on the fleet mean, and it
        # strictly cuts origin traffic (that's the paper's claim)
        assert by_mode["catalyst"].mean_ms <= by_mode["standard"].mean_ms
        assert by_mode["catalyst"].origin_rps \
            < by_mode["standard"].origin_rps
        for stats in result.fleet:
            assert 0.0 <= stats.hit_ratio <= 1.0
            assert stats.p50_ms <= stats.p90_ms <= stats.p99_ms
            assert stats.origin_rps > 0
        # the constrained cohort is strictly slower than urban-fast
        slow = {m.mode: m for m in result.cohorts[-1].modes}
        fast = {m.mode: m for m in result.cohorts[0].modes}
        assert slow["standard"].mean_ms > fast["standard"].mean_ms


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_analytic_backends_agree(analytic):
    vec, py = analytic["numpy"], analytic["python"]
    for a, b in zip(vec.fleet + sum((c.modes for c in vec.cohorts), ()),
                    py.fleet + sum((c.modes for c in py.cohorts), ())):
        assert a.mode == b.mode
        for field in ("mean_ms", "p50_ms", "p90_ms", "p99_ms",
                      "origin_rps", "origin_mbps", "hit_ratio"):
            x, y = getattr(a, field), getattr(b, field)
            assert abs(x - y) <= 1e-9 * max(1.0, abs(x)), \
                (a.mode, field, x, y)


def test_analytic_rejects_mismatched_corpus(spec):
    small = make_corpus(size=5)
    with pytest.raises(ValueError):
        run_fleet_analytic(spec, small)


# -- sampled DES ------------------------------------------------------------
def test_des_parallel_merges_exactly_with_serial(spec, corpus):
    serial = run_fleet_des(spec, corpus, sample=6, max_workers=0)
    parallel = run_fleet_des(spec, corpus, sample=6, max_workers=2)
    assert serial.visits == parallel.visits > 0
    a, b = serial.metrics.dump(), parallel.metrics.dump()
    a.pop("fleet.des.workers")
    b.pop("fleet.des.workers")
    assert a == b


def test_des_sketch_cap_preserves_counts(spec, corpus):
    """With a tiny per-histogram cap the registry stays bounded but the
    visit/request counters and histogram counts stay exact."""
    capped = run_fleet_des(spec, corpus, sample=6, max_workers=0,
                           histogram_samples=4)
    exact = run_fleet_des(spec, corpus, sample=6, max_workers=0)
    assert capped.visits == exact.visits
    for name, modes in exact.cohorts.items():
        for mode, snap in modes.items():
            capped_snap = capped.cohorts[name][mode]
            assert capped_snap["count"] == snap["count"]
            assert capped_snap["visits"] == snap["visits"]
    for instrument in capped.metrics:
        if hasattr(instrument, "exact") and instrument.count > 4:
            assert not instrument.exact  # spilled to the sketch


def test_des_covers_every_cohort(spec, corpus):
    result = run_fleet_des(spec, corpus, sample=6, max_workers=0)
    assert set(result.cohorts) == {c.name for c in spec.cohorts}


# -- validation gate --------------------------------------------------------
def test_validate_fleet_passes_default_gate(spec, corpus):
    validation = validate_fleet(spec, corpus, sample=9)
    assert validation.rows == len(sample_visits(spec, 9,
                                                per_cohort=True)) * 2
    assert validation.passed, validation.format()
    assert "PASS" in validation.format()


# -- payloads ---------------------------------------------------------------
def test_fleet_payload_shape(analytic, spec, corpus):
    result = analytic[BACKENDS[0]]
    des = run_fleet_des(spec, corpus, sample=6, max_workers=0)
    validation = validate_fleet(spec, corpus, sample=6)
    payload = fleet_payload(result, des, validation)
    assert payload["bench"] == "population_fleet_run"
    assert payload["population_visits"] == spec.n_measured
    assert len(payload["cohorts"]) == len(spec.cohorts)
    for cohort in payload["cohorts"]:
        for mode in cohort["modes"]:
            for key in ("mean_ms", "p50_ms", "p90_ms", "p99_ms",
                        "origin_rps", "hit_ratio"):
                assert key in mode
    assert payload["des"]["visits"] == des.visits
    assert payload["validation"]["passed"] is True


def test_fleet_bench_payload_floors_and_manifest():
    result = FleetBenchResult(
        users=1_000_000, population_visits=50_000_000, sites=100,
        cohorts=3, bins=24, seed=2024, rounds=3, des_sample=24,
        vectorized_visits_per_s=2e8, fallback_visits_per_s=4e7,
        des_visits=24, des_visits_per_s=7.0, elapsed_s=5.0)
    assert result.meets_floors
    payload = fleet_bench_payload(result)
    assert payload["bench"] == "population_fleet"
    assert payload["meets_floors"] is True
    assert payload["population_fleet"]["population_visits"] \
        >= FLEET_POPULATION_FLOOR
    assert "manifest" in payload
    assert payload["manifest"]["config"]["seed"] == 2024
    # the fallback-only leg simply omits the vectorized key
    no_numpy = FleetBenchResult(
        users=1_000_000, population_visits=50_000_000, sites=100,
        cohorts=3, bins=24, seed=2024, rounds=3, des_sample=24,
        vectorized_visits_per_s=None, fallback_visits_per_s=4e7,
        des_visits=24, des_visits_per_s=7.0, elapsed_s=5.0)
    assert no_numpy.meets_floors
    assert "analytic_visits_per_s_vectorized" \
        not in fleet_bench_payload(no_numpy)["population_fleet"]


def test_fleet_bench_floors_reject_slow_runs():
    slow = FleetBenchResult(
        users=1_000_000, population_visits=50_000_000, sites=100,
        cohorts=3, bins=24, seed=2024, rounds=3, des_sample=24,
        vectorized_visits_per_s=2e8, fallback_visits_per_s=4e7,
        des_visits=24, des_visits_per_s=FLEET_DES_FLOOR_PER_S / 2,
        elapsed_s=5.0)
    assert not slow.meets_floors
    tiny = FleetBenchResult(
        users=1_000, population_visits=50_000, sites=100,
        cohorts=3, bins=24, seed=2024, rounds=3, des_sample=24,
        vectorized_visits_per_s=2e8, fallback_visits_per_s=4e7,
        des_visits=24, des_visits_per_s=7.0, elapsed_s=5.0)
    assert not tiny.meets_floors
