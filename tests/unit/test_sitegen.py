"""Unit tests for synthetic site generation."""

import pytest

from repro.html import extract_css_urls, extract_resources, parse_html
from repro.html.parser import ResourceKind
from repro.workload.sitegen import (SiteShape, freeze_site, generate_site,
                                    render_css, render_html, render_js,
                                    render_resource_body)
from repro.browser.js import extract_js_fetches


@pytest.fixture(scope="module")
def site():
    return generate_site("https://t.example", seed=11)


class TestGeneration:
    def test_deterministic(self, site):
        again = generate_site("https://t.example", seed=11)
        assert again.index.resources == site.index.resources
        assert again.index.html_refs == site.index.html_refs

    def test_different_seeds_differ(self, site):
        other = generate_site("https://t.example", seed=12)
        assert other.index.resources != site.index.resources

    def test_all_html_refs_exist_in_resources(self, site):
        for url in site.index.html_refs:
            assert url in site.index.resources

    def test_children_exist_in_resources(self, site):
        for spec in site.index.iter_resources():
            for child in spec.children:
                assert child in site.index.resources

    def test_children_are_not_html_refs(self, site):
        """Nested resources were carved out of the HTML-linked set."""
        nested = {child for spec in site.index.iter_resources()
                  for child in spec.children}
        assert nested.isdisjoint(set(site.index.html_refs))

    def test_discovered_via_consistent_with_parents(self, site):
        for spec in site.index.iter_resources():
            if spec.discovered_via == "html":
                assert spec.parent == ""
            else:
                parent = site.index.resources[spec.parent]
                expected = ("css" if parent.kind is ResourceKind.STYLESHEET
                            else "js")
                assert spec.discovered_via == expected

    def test_dynamic_resources_are_no_store_api(self, site):
        for spec in site.index.iter_resources():
            if spec.dynamic:
                assert spec.policy.mode == "no-store"
                assert spec.url.startswith("/api/")

    def test_stylesheets_blocking(self, site):
        for spec in site.index.iter_resources():
            if spec.kind is ResourceKind.STYLESHEET:
                assert spec.blocking

    def test_unique_urls(self, site):
        urls = [spec.url for spec in site.index.iter_resources()]
        assert len(urls) == len(set(urls))

    def test_resource_count_in_configured_band(self):
        counts = [generate_site(f"https://s{i}.example", seed=i,
                                median_resources=70).index.resource_count
                  for i in range(12)]
        assert all(8 <= c <= 400 for c in counts)


class TestRendering:
    def test_html_extraction_matches_refs(self, site):
        markup = render_html(site.index, version=0)
        refs = extract_resources(parse_html(markup), base_url="")
        assert {r.url for r in refs} == set(site.index.html_refs)

    def test_html_versions_differ_but_structure_stable(self, site):
        v0 = render_html(site.index, version=0)
        v1 = render_html(site.index, version=1)
        assert v0 != v1
        refs0 = {r.url for r in extract_resources(parse_html(v0))}
        refs1 = {r.url for r in extract_resources(parse_html(v1))}
        assert refs0 == refs1

    def test_html_size_near_target(self, site):
        markup = render_html(site.index, version=0)
        assert len(markup) == pytest.approx(site.index.html_size_bytes,
                                            rel=0.35)

    def test_css_children_extractable(self, site):
        for spec in site.index.iter_resources():
            if spec.kind is ResourceKind.STYLESHEET:
                css = render_css(spec, version=0)
                assert set(extract_css_urls(css)) == set(spec.children)

    def test_js_children_extractable(self, site):
        for spec in site.index.iter_resources():
            if spec.kind is ResourceKind.SCRIPT:
                js = render_js(spec, version=0)
                assert extract_js_fetches(js) == list(spec.children)

    def test_body_version_changes_bytes(self, site):
        spec = next(iter(site.index.iter_resources()))
        b0, _ = render_resource_body(spec, 0)
        b1, _ = render_resource_body(spec, 1)
        assert b0 != b1

    def test_standin_body_declares_wire_size(self, site):
        for spec in site.index.iter_resources():
            if spec.kind is ResourceKind.IMAGE:
                body, size = render_resource_body(spec, 0)
                assert size == spec.size_bytes
                assert len(body) < size or size <= len(body)
                break

    def test_materialize_fully_pads(self, site):
        for spec in site.index.iter_resources():
            if spec.kind is ResourceKind.IMAGE:
                body, size = render_resource_body(spec, 0,
                                                  materialize_fully=True)
                assert len(body) == size >= spec.size_bytes
                break


class TestFreeze:
    def test_frozen_site_never_changes(self, site):
        frozen = freeze_site(site)
        for spec in frozen.index.iter_resources():
            if not spec.dynamic:
                assert not spec.make_churn().changed_between(0, 1e9)
        assert frozen.index.make_html_churn().version_at(1e9) == 0

    def test_dynamic_resources_stay_dynamic(self, site):
        frozen = freeze_site(site)
        dynamic_before = {s.url for s in site.index.iter_resources()
                          if s.dynamic}
        dynamic_after = {s.url for s in frozen.index.iter_resources()
                         if s.dynamic}
        assert dynamic_before == dynamic_after

    def test_original_untouched(self, site):
        freeze_site(site)
        fixed = [s for s in site.index.iter_resources()
                 if s.fixed_change_times is not None]
        assert fixed == []

    def test_headers_preserved(self, site):
        frozen = freeze_site(site)
        for url, spec in site.index.resources.items():
            assert frozen.index.resources[url].policy == spec.policy


class TestShape:
    def test_no_js_fetching_when_disabled(self):
        shape = SiteShape(js_fetching_share=0.0)
        site = generate_site("https://x.example", seed=3, shape=shape)
        assert all(spec.discovered_via != "js"
                   for spec in site.index.iter_resources())

    def test_all_scripts_sync_when_async_zero(self):
        shape = SiteShape(async_script_share=0.0)
        site = generate_site("https://x.example", seed=3, shape=shape)
        scripts = [s for s in site.index.iter_resources()
                   if s.kind is ResourceKind.SCRIPT]
        assert scripts and all(s.blocking for s in scripts)
