"""Unit tests for server-push planning."""

import pytest

from repro.server.push import PushPlanner, PushPolicy
from repro.server.site import OriginSite
from repro.workload.sitegen import generate_site, render_html


@pytest.fixture
def site():
    return OriginSite(generate_site("https://p.example", seed=51))


def markup_of(site: OriginSite) -> str:
    return render_html(site.spec.index, version=0)


class TestPolicies:
    def test_all_pushes_every_dom_resource(self, site):
        planner = PushPlanner(site=site, policy=PushPolicy.ALL)
        urls = planner.push_urls(markup_of(site))
        assert set(urls) == set(site.spec.index.html_refs)

    def test_blocking_only(self, site):
        planner = PushPlanner(site=site, policy=PushPolicy.BLOCKING)
        urls = set(planner.push_urls(markup_of(site)))
        page = site.spec.index
        for url in urls:
            spec = page.resources[url]
            assert spec.kind.value in ("stylesheet", "script")

    def test_none_pushes_nothing(self, site):
        planner = PushPlanner(site=site, policy=PushPolicy.NONE)
        assert planner.push_urls(markup_of(site)) == []

    def test_cross_origin_never_pushed(self, site):
        planner = PushPlanner(site=site, policy=PushPolicy.ALL)
        markup = ('<html><head>'
                  '<script src="https://other.example/x.js"></script>'
                  '</head></html>')
        assert planner.push_urls(markup) == []

    def test_unknown_local_urls_skipped(self, site):
        planner = PushPlanner(site=site, policy=PushPolicy.ALL)
        markup = '<html><body><img src="/not-hosted.png"></body></html>'
        assert planner.push_urls(markup) == []

    def test_push_ignorant_of_client_cache(self, site):
        """The defining flaw (§5): the same set is pushed every time."""
        planner = PushPlanner(site=site, policy=PushPolicy.ALL)
        first = planner.push_urls(markup_of(site))
        second = planner.push_urls(markup_of(site))
        assert first == second
