"""The top-level public API: everything README shows must work as shown."""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.browser
        import repro.cache
        import repro.core
        import repro.experiments
        import repro.html
        import repro.http
        import repro.netsim
        import repro.server
        import repro.workload


class TestReadmeQuickstart:
    def test_quickstart_snippet_verbatim(self):
        from repro import Catalyst, NetworkConditions
        from repro.workload import generate_site

        site = generate_site("https://example.test", seed=1)
        catalyst = Catalyst.for_site(site)
        outcomes = catalyst.visit_sequence(
            NetworkConditions.of(60, 40), delays=["1 h"])
        assert outcomes[-1].plt_ms > 0
        assert outcomes[-1].plt_ms < outcomes[0].plt_ms

    def test_compare_with_standard_snippet(self):
        from repro import Catalyst, NetworkConditions
        from repro.workload import generate_site

        site = generate_site("https://example.test", seed=1)
        catalyst = Catalyst.for_site(site)
        comparison = catalyst.compare_with_standard(
            NetworkConditions.of(60, 40), "1 d")
        assert comparison["catalyst"] < comparison["standard"]


class TestDocstringExamples:
    def test_doctests_in_key_modules(self):
        """Run the doctests embedded in public-facing modules."""
        import doctest

        import repro.browser.js
        import repro.browser.trace
        import repro.experiments.report
        import repro.experiments.stats
        import repro.html.css
        import repro.html.parser
        import repro.html.rewrite
        import repro.http.cache_control
        import repro.http.dates
        import repro.http.etag
        import repro.http.headers
        import repro.netsim.clock
        import repro.netsim.link
        import repro.netsim.sim
        import repro.netsim.tcp

        failures = 0
        for module in (repro.netsim.sim, repro.netsim.clock,
                       repro.netsim.link, repro.netsim.tcp,
                       repro.http.headers, repro.http.dates,
                       repro.http.etag, repro.http.cache_control,
                       repro.html.parser, repro.html.css,
                       repro.html.rewrite, repro.browser.js,
                       repro.browser.trace, repro.experiments.stats,
                       repro.experiments.report):
            result = doctest.testmod(module, verbose=False)
            failures += result.failed
        assert failures == 0
