"""Unit tests for HAR import (and the export->import loop)."""

import json

import pytest

from repro.browser.trace import to_har
from repro.html.parser import ResourceKind
from repro.workload.har_import import HarImportError, site_from_har


def make_har(entries: list[dict]) -> dict:
    return {"log": {"version": "1.2", "entries": entries}}


def entry(url: str, mime: str, size: int = 1000,
          cache_control: str | None = None, status: int = 200) -> dict:
    headers = []
    if cache_control is not None:
        headers.append({"name": "Cache-Control", "value": cache_control})
    return {
        "request": {"method": "GET", "url": url},
        "response": {"status": status, "headers": headers,
                     "content": {"size": size, "mimeType": mime},
                     "bodySize": size},
    }


BASE = "https://example.org"


def typical_har() -> dict:
    return make_har([
        entry(f"{BASE}/", "text/html", 24_000, "no-cache"),
        entry(f"{BASE}/main.css", "text/css", 12_000, "max-age=3600"),
        entry(f"{BASE}/app.js", "application/javascript", 80_000),
        entry(f"{BASE}/logo.png", "image/png", 5_000, "max-age=86400"),
        entry(f"{BASE}/brand.woff2", "font/woff2", 40_000,
              "max-age=31536000, immutable"),
        entry(f"{BASE}/api/feed", "application/json", 3_000, "no-store"),
        entry("https://cdn.other.com/lib.js", "application/javascript",
              30_000),
    ])


class TestImport:
    def test_same_origin_resources_imported(self):
        site = site_from_har(typical_har())
        assert site.origin == BASE
        urls = set(site.index.resources)
        assert "/main.css" in urls
        assert "/app.js" in urls
        assert all(not u.startswith("https://cdn") for u in urls)

    def test_kinds_from_mime(self):
        site = site_from_har(typical_har())
        resources = site.index.resources
        assert resources["/main.css"].kind is ResourceKind.STYLESHEET
        assert resources["/app.js"].kind is ResourceKind.SCRIPT
        assert resources["/logo.png"].kind is ResourceKind.IMAGE
        assert resources["/brand.woff2"].kind is ResourceKind.FONT
        assert resources["/api/feed"].kind is ResourceKind.FETCH

    def test_policies_from_headers(self):
        site = site_from_har(typical_har())
        resources = site.index.resources
        assert resources["/main.css"].policy.mode == "max-age"
        assert resources["/main.css"].policy.ttl_s == 3600.0
        assert resources["/app.js"].policy.mode == "none"
        assert resources["/api/feed"].policy.mode == "no-store"
        assert resources["/brand.woff2"].policy.immutable

    def test_sizes_preserved(self):
        site = site_from_har(typical_har())
        assert site.index.resources["/app.js"].size_bytes == 80_000
        assert site.index.html_size_bytes == 24_000

    def test_fonts_become_css_children(self):
        site = site_from_har(typical_har())
        font = site.index.resources["/brand.woff2"]
        assert font.discovered_via == "css"
        assert font.parent == "/main.css"
        assert "/brand.woff2" in \
            site.index.resources["/main.css"].children

    def test_json_text_accepted(self):
        site = site_from_har(json.dumps(typical_har()))
        assert site.index.resource_count >= 5

    def test_deterministic(self):
        a = site_from_har(typical_har(), seed=4)
        b = site_from_har(typical_har(), seed=4)
        assert a.index.resources == b.index.resources

    @pytest.mark.parametrize("bad", [
        "not json", {}, {"log": {}}, make_har([]),
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(HarImportError):
            site_from_har(bad)

    def test_cross_origin_only_rejected(self):
        har = make_har([
            entry(f"{BASE}/", "text/html", 9_000),
            entry("https://cdn.other.com/x.js",
                  "application/javascript", 1_000)])
        with pytest.raises(HarImportError):
            site_from_har(har)


class TestImportedSiteIsMeasurable:
    def test_full_pipeline(self):
        """HAR -> SiteSpec -> Catalyst vs standard measurement."""
        from repro.core.catalyst import run_visit_sequence
        from repro.core.modes import CachingMode, build_mode
        from repro.netsim.clock import DAY
        from repro.netsim.link import NetworkConditions
        site = site_from_har(typical_har())
        plts = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site)
            outcomes = run_visit_sequence(
                setup, NetworkConditions.of(60, 40), [0.0, DAY])
            plts[mode] = outcomes[1].result.plt_ms
        assert plts[CachingMode.CATALYST] <= plts[CachingMode.STANDARD]

    def test_export_import_loop(self):
        """Our own HAR export is importable (sizes land in the spec)."""
        from repro.core.catalyst import run_visit_sequence
        from repro.core.modes import CachingMode, build_mode
        from repro.netsim.link import NetworkConditions
        from repro.workload.sitegen import generate_site
        site = generate_site("https://loop.example", seed=55,
                             median_resources=15)
        setup = build_mode(CachingMode.STANDARD, site)
        outcomes = run_visit_sequence(setup,
                                      NetworkConditions.of(60, 40), [0.0])
        har = to_har(outcomes[0].result)
        # HAR entries carry path-only URLs; give them the origin back
        for har_entry in har["log"]["entries"]:
            har_entry["request"]["url"] = \
                site.origin + har_entry["request"]["url"]
            har_entry["response"]["content"]["mimeType"] = (
                "text/html" if har_entry["request"]["url"]
                .endswith("index.html")
                else "application/octet-stream")
        imported = site_from_har(har, origin=site.origin)
        assert imported.index.resource_count > 0
