"""Unit tests for the Service-Worker cache."""

from repro.cache.service_worker import ServiceWorkerCache
from repro.http.etag import ETag, etag_for_content
from repro.http.messages import Request, Response


def response_with_etag(body: bytes, cache_control: str = "") -> Response:
    headers = {"ETag": str(etag_for_content(body))}
    if cache_control:
        headers["Cache-Control"] = cache_control
    return Response(headers=headers, body=body)


class TestPut:
    def test_stores_plain_response(self):
        cache = ServiceWorkerCache()
        assert cache.put(Request(url="/a"), response_with_etag(b"x"), 0.0)
        assert "/a" in cache

    def test_stores_despite_no_cache(self):
        """The SW ignores freshness directives — only no-store opts out."""
        cache = ServiceWorkerCache()
        assert cache.put(Request(url="/a"),
                         response_with_etag(b"x", "no-cache"), 0.0)
        assert "/a" in cache

    def test_stores_despite_zero_max_age(self):
        cache = ServiceWorkerCache()
        assert cache.put(Request(url="/a"),
                         response_with_etag(b"x", "max-age=0"), 0.0)
        assert "/a" in cache

    def test_no_store_excluded(self):
        cache = ServiceWorkerCache()
        assert not cache.put(Request(url="/a"),
                             response_with_etag(b"x", "no-store"), 0.0)
        assert "/a" not in cache

    def test_non_get_excluded(self):
        cache = ServiceWorkerCache()
        assert not cache.put(Request(method="POST", url="/a"),
                             response_with_etag(b"x"), 0.0)

    def test_error_responses_excluded(self):
        cache = ServiceWorkerCache()
        resp = Response(status=500, body=b"err")
        assert not cache.put(Request(url="/a"), resp, 0.0)

    def test_original_cache_control_preserved_for_inspection(self):
        cache = ServiceWorkerCache()
        cache.put(Request(url="/a"), response_with_etag(b"x", "no-cache"),
                  0.0)
        entry = cache.peek("/a")
        assert entry.response.headers["X-Original-Cache-Control"] == \
            "no-cache"


class TestMatch:
    def test_hit_on_matching_etag(self):
        cache = ServiceWorkerCache()
        response = response_with_etag(b"content")
        cache.put(Request(url="/a"), response, 0.0)
        hit = cache.match(Request(url="/a"), etag_for_content(b"content"),
                          now=1.0)
        assert hit is not None
        assert hit.body == b"content"
        assert cache.etag_hits == 1

    def test_miss_on_stale_etag(self):
        cache = ServiceWorkerCache()
        cache.put(Request(url="/a"), response_with_etag(b"old"), 0.0)
        miss = cache.match(Request(url="/a"), etag_for_content(b"new"),
                           now=1.0)
        assert miss is None
        assert cache.etag_misses == 1

    def test_no_expected_etag_is_miss(self):
        cache = ServiceWorkerCache()
        cache.put(Request(url="/a"), response_with_etag(b"x"), 0.0)
        assert cache.match(Request(url="/a"), None, now=1.0) is None

    def test_weak_comparison_used(self):
        cache = ServiceWorkerCache()
        body = b"content"
        response = Response(
            headers={"ETag": f'W/{etag_for_content(body)}'}, body=body)
        cache.put(Request(url="/a"), response, 0.0)
        assert cache.match(Request(url="/a"),
                           etag_for_content(body), now=1.0) is not None

    def test_returned_response_is_a_copy(self):
        cache = ServiceWorkerCache()
        body = b"content"
        cache.put(Request(url="/a"), response_with_etag(body), 0.0)
        expected = etag_for_content(body)
        first = cache.match(Request(url="/a"), expected, now=1.0)
        first.headers.set("Mutated", "yes")
        second = cache.match(Request(url="/a"), expected, now=2.0)
        assert "Mutated" not in second.headers


class TestHousekeeping:
    def test_stored_etag(self):
        cache = ServiceWorkerCache()
        body = b"abc"
        cache.put(Request(url="/a"), response_with_etag(body), 0.0)
        assert cache.stored_etag("/a") == etag_for_content(body)
        assert cache.stored_etag("/missing") is None

    def test_invalidate(self):
        cache = ServiceWorkerCache()
        cache.put(Request(url="/a"), response_with_etag(b"x"), 0.0)
        assert cache.invalidate("/a") == 1
        assert "/a" not in cache

    def test_clear_and_counts(self):
        cache = ServiceWorkerCache()
        cache.put(Request(url="/a"), response_with_etag(b"x"), 0.0)
        assert cache.entry_count == 1
        assert cache.byte_size > 0
        cache.clear()
        assert cache.entry_count == 0
