"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.netsim.sim import (AllOf, AnyOf, Event, Interrupt, Process,
                              Resource, SimulationError, Simulator, Timeout)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value_after_run(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        sim.run()
        assert ev.processed
        assert ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_value_before_trigger_rejected(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_fail_marks_not_ok(self, sim):
        ev = sim.event()
        exc = RuntimeError("boom")
        ev.fail(exc)
        sim.run()
        assert not ev.ok
        assert ev.value is exc

    def test_callback_after_processing_is_deferred_not_lost(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == []  # deferred through the queue
        sim.run()
        assert seen == ["x"]


class TestTimeout:
    def test_fires_at_delay(self, sim):
        t = sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5
        assert t.processed

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, sim):
        t = sim.timeout(0.0, value="v")
        sim.run()
        assert sim.now == 0.0
        assert t.value == "v"

    def test_ordering_is_fifo_for_equal_times(self, sim):
        order = []
        for index in range(5):
            sim.timeout(1.0).add_callback(
                lambda _ev, i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"
        assert sim.run_process(proc()) == "done"
        assert sim.now == 1.0

    def test_receives_event_value(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="payload")
            return got
        assert sim.run_process(proc()) == "payload"

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now
        assert sim.run_process(proc()) == 3.0

    def test_processes_wait_on_each_other(self, sim):
        def child():
            yield sim.timeout(5.0)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return result
        assert sim.run_process(parent()) == "child-result"

    def test_yielding_non_event_is_an_error(self, sim):
        def proc():
            yield 42
        with pytest.raises(SimulationError, match="not an Event"):
            sim.process(proc())
            sim.run()

    def test_exception_fails_process_in_strict_mode(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inner")
        with pytest.raises(ValueError, match="inner"):
            sim.run_process(proc())

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("failed-dep"))

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"
        assert sim.run_process(proc()) == "caught failed-dep"

    def test_deadlock_detected_by_run_process(self, sim):
        never = sim.event()

        def proc():
            yield never
        with pytest.raises(SimulationError, match="never finished"):
            sim.run_process(proc())

    def test_interrupt_raises_in_process(self, sim):
        log = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                log.append((exc.cause, sim.now))
                return "interrupted"
            return "completed"

        proc = sim.process(victim())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt("reason")
        sim.process(interrupter())
        sim.run()
        assert proc.value == "interrupted"
        # the interrupt lands at t=1; the orphaned 100 s timeout still
        # drains the queue afterwards, which is fine — nobody listens
        assert log == [("reason", 1.0)]

    def test_interrupt_after_completion_is_noop(self, sim):
        def quick():
            yield sim.timeout(1.0)
        proc = sim.process(quick())
        sim.run()
        proc.interrupt()  # no error

    def test_yield_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()

        def late():
            value = yield done
            return value
        assert sim.run_process(late()) == "early"

    def test_long_chain_of_processed_events_no_recursion_error(self, sim):
        events = []
        for _ in range(5000):
            ev = sim.event()
            ev.succeed(None)
            events.append(ev)
        sim.run()

        def walker():
            for ev in events:
                yield ev
            return "walked"
        assert sim.run_process(walker()) == "walked"


class TestCombinators:
    def test_all_of_waits_for_all(self, sim):
        t1, t2 = sim.timeout(1.0), sim.timeout(3.0)

        def proc():
            yield sim.all_of([t1, t2])
            return sim.now
        assert sim.run_process(proc()) == 3.0

    def test_any_of_fires_on_first(self, sim):
        t1, t2 = sim.timeout(1.0), sim.timeout(3.0)

        def proc():
            yield sim.any_of([t1, t2])
            return sim.now
        assert sim.run_process(proc()) == 1.0

    def test_all_of_empty_is_immediate(self, sim):
        def proc():
            value = yield sim.all_of([])
            return value
        assert sim.run_process(proc()) == {}

    def test_all_of_value_maps_events(self, sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")

        def proc():
            mapping = yield sim.all_of([t1, t2])
            return sorted(mapping.values())
        assert sim.run_process(proc()) == ["a", "b"]

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event()
        bad.fail(ValueError("dep failed"))

        def proc():
            yield sim.all_of([sim.timeout(1.0), bad])
        with pytest.raises(ValueError, match="dep failed"):
            sim.run_process(proc())


class TestResource:
    def test_capacity_enforced(self, sim):
        resource = sim.resource(2)
        active = []
        peak = []

        def worker(i):
            grant = resource.request()
            yield grant
            active.append(i)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.remove(i)
            resource.release()

        for i in range(6):
            sim.process(worker(i))
        sim.run()
        assert max(peak) <= 2
        assert sim.now == pytest.approx(3.0)  # 6 jobs, 2 wide, 1s each

    def test_fifo_grant_order(self, sim):
        resource = sim.resource(1)
        order = []

        def worker(i):
            yield resource.request()
            order.append(i)
            yield sim.timeout(1.0)
            resource.release()

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_request_rejected(self, sim):
        resource = sim.resource(1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.resource(0)


class TestRun:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()
        assert sim.now == 10.0

    def test_run_until_past_is_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_until_with_empty_queue_sets_clock(self, sim):
        sim.run(until=123.0)
        assert sim.now == 123.0

    def test_determinism(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def worker(i):
                yield sim.timeout(0.5 * i)
                log.append((i, sim.now))
                yield sim.timeout(1.0)
                log.append((i, sim.now))
            for i in range(10):
                sim.process(worker(i))
            sim.run()
            return log
        assert build_and_run() == build_and_run()
