"""Unit tests for the content-addressed server hot path (PR 3).

Covers the three caches (render / parse-ref / ETag map), churn-keyed
invalidation, byte-identity with the uncached seed path, session
isolation, the negative-result stylesheet memo, and the fail-open
injection fold.
"""

import pytest

from repro.core.etag_config import ETAG_CONFIG_HEADER, EtagConfig
from repro.html.parser import ResourceKind
from repro.html.rewrite import has_sw_registration
from repro.http.messages import Request, Response
from repro.server.catalyst import CatalystConfig, CatalystServer
from repro.server.site import OriginSite
from repro.workload.headers_model import HeaderPolicy
from repro.workload.sitegen import (PageSpec, ResourceSpec, SiteSpec,
                                    generate_site)

ORIGIN = "https://hot.example"


def _resource(url, kind, *, via="html", blocking=False, children=(),
              changes=(), dynamic=False, parent=""):
    return ResourceSpec(
        url=url, kind=kind, size_bytes=400,
        policy=HeaderPolicy(mode="no-cache"), change_period_s=1e9,
        content_seed=hash(url) & 0xFFFF, discovered_via=via,
        parent=parent, children=tuple(children), dynamic=dynamic,
        blocking=blocking, fixed_change_times=tuple(changes))


@pytest.fixture
def scenario_site():
    """Hand-built site with exact change times: /app.js flips at t=50,
    /style.css at t=100, the HTML itself at t=200."""
    resources = {
        "/style.css": _resource("/style.css", ResourceKind.STYLESHEET,
                                blocking=True, children=("/bg.png",),
                                changes=(100.0,)),
        "/app.js": _resource("/app.js", ResourceKind.SCRIPT, blocking=True,
                             changes=(50.0,)),
        "/bg.png": _resource("/bg.png", ResourceKind.IMAGE, via="css",
                             parent="/style.css"),
        "/late.js": _resource("/late.js", ResourceKind.SCRIPT, via="js"),
    }
    page = PageSpec(url="/index.html", html_size_bytes=900,
                    html_change_period_s=1e9, html_content_seed=7,
                    html_refs=("/style.css", "/app.js", "/bg.png"),
                    resources=resources,
                    html_fixed_change_times=(200.0,))
    return OriginSite(SiteSpec(origin=ORIGIN, seed=3,
                               pages={"/index.html": page}))


def config_of(response) -> EtagConfig:
    config = EtagConfig.from_headers(response.headers)
    assert config is not None
    return config


def assert_same_response(a: Response, b: Response) -> None:
    assert a.status == b.status
    assert a.body == b.body
    assert list(a.headers.items()) == list(b.headers.items())


class TestByteIdentity:
    """Cached and uncached paths must produce identical bytes."""

    @pytest.fixture
    def pair(self):
        spec = generate_site("https://ident.example", seed=11)
        return (CatalystServer(OriginSite(spec)),
                CatalystServer(OriginSite(spec),
                               config=CatalystConfig(hot_path_cache=False)))

    def test_repeat_and_churned_documents(self, pair):
        cached, plain = pair
        for at_time in (0.0, 0.0, 1.0, 3600.0, 86400.0, 7 * 86400.0):
            assert_same_response(
                cached.handle(Request(url="/index.html"), at_time),
                plain.handle(Request(url="/index.html"), at_time))

    def test_conditional_304(self, pair):
        cached, plain = pair
        etag = cached.handle(Request(url="/index.html"), 0.0).headers["ETag"]
        plain.handle(Request(url="/index.html"), 0.0)
        request = Request(url="/index.html",
                          headers={"If-None-Match": etag})
        a = cached.handle(request, 5.0)
        b = plain.handle(request, 5.0)
        assert a.status == 304
        assert_same_response(a, b)

    def test_head_request(self, pair):
        cached, plain = pair
        cached.handle(Request(url="/index.html"), 0.0)
        request = Request(method="HEAD", url="/index.html")
        assert_same_response(cached.handle(request, 1.0),
                             plain.handle(request, 1.0))

    def test_subresources_untouched(self, pair):
        cached, plain = pair
        spec = cached.site.spec.index
        for url in list(spec.resources)[:4]:
            assert_same_response(cached.handle(Request(url=url), 0.0),
                                 plain.handle(Request(url=url), 0.0))


class TestRenderCache:
    def test_repeat_request_hits(self, scenario_site):
        server = CatalystServer(scenario_site)
        first = server.handle(Request(url="/index.html"), 0.0)
        second = server.handle(Request(url="/index.html"), 1.0)
        assert server.perf.render_misses == 1
        assert server.perf.render_hits == 1
        assert server.perf.html_parses == 1
        assert server.perf.parses_avoided == 1
        assert first.body == second.body
        assert has_sw_registration(second.body.decode())

    def test_html_churn_invalidates_render(self, scenario_site):
        server = CatalystServer(scenario_site)
        before = server.handle(Request(url="/index.html"), 0.0)
        after = server.handle(Request(url="/index.html"), 250.0)
        assert server.perf.render_misses == 2  # new document version
        assert before.body != after.body
        assert before.headers["ETag"] != after.headers["ETag"]

    def test_request_counts_still_recorded(self, scenario_site):
        server = CatalystServer(scenario_site)
        server.handle(Request(url="/index.html"), 0.0)
        server.handle(Request(url="/index.html"), 1.0)
        assert scenario_site.request_counts["/index.html"] == 2

    def test_disabled_cache_keeps_seed_path(self, scenario_site):
        server = CatalystServer(scenario_site,
                                config=CatalystConfig(hot_path_cache=False))
        server.handle(Request(url="/index.html"), 0.0)
        server.handle(Request(url="/index.html"), 1.0)
        assert server.perf.render_hits == 0
        assert not server._render_cache
        assert server.perf.html_parses == 2


class TestChurnInvalidation:
    """Satellite: after a churn bump, the next document response must
    carry the new ETag in X-Etag-Config — no stale-map serving."""

    def test_resource_bump_refreshes_map_under_render_hit(
            self, scenario_site):
        server = CatalystServer(scenario_site)
        before = config_of(server.handle(Request(url="/index.html"), 0.0))
        after = config_of(server.handle(Request(url="/index.html"), 60.0))
        # Document version unchanged: the render cache answered ...
        assert server.perf.render_hits == 1
        # ... but /app.js changed at t=50, so the map was rebuilt fresh.
        assert before.etag_for("/app.js") != after.etag_for("/app.js")
        assert after.etag_for("/app.js").opaque == \
            scenario_site.etag_of("/app.js", 60.0)
        assert server.perf.map_builds == 2

    def test_unchanged_versions_reuse_map(self, scenario_site):
        server = CatalystServer(scenario_site)
        a = config_of(server.handle(Request(url="/index.html"), 0.0))
        b = config_of(server.handle(Request(url="/index.html"), 10.0))
        assert server.perf.map_builds == 1
        assert server.perf.map_hits == 1
        assert a.entries == b.entries

    def test_css_child_set_tracks_stylesheet_version(self, scenario_site):
        server = CatalystServer(scenario_site)
        before = config_of(server.handle(Request(url="/index.html"), 0.0))
        after = config_of(server.handle(Request(url="/index.html"), 150.0))
        # /style.css changed at t=100: its own tag must move in the map
        assert before.etag_for("/style.css") != after.etag_for("/style.css")
        assert "/bg.png" in after  # transitive child still covered

    def test_css_response_map_refreshes(self, scenario_site):
        server = CatalystServer(scenario_site)
        before = config_of(server.handle(Request(url="/style.css"), 0.0))
        assert "/bg.png" in before
        server.handle(Request(url="/style.css"), 10.0)  # warm map-cache hit
        assert server.perf.map_hits >= 1


class TestSessionIsolation:
    """Satellite: a session-recorded URL set must never leak between
    X-Client-Id values, and must never pollute the shared map cache."""

    @pytest.fixture
    def server(self, scenario_site):
        return CatalystServer(scenario_site,
                              config=CatalystConfig(use_sessions=True))

    def _visit(self, server, client, at_time):
        headers = {"X-Client-Id": client}
        response = server.handle(
            Request(url="/index.html", headers=headers), at_time)
        server.handle(Request(url="/late.js", headers=headers),
                      at_time + 0.1)
        return response

    def test_recorded_urls_stay_per_client(self, server):
        self._visit(server, "u1", 0.0)
        revisit = server.handle(
            Request(url="/index.html", headers={"X-Client-Id": "u1"}), 10.0)
        assert "/late.js" in config_of(revisit)
        other = server.handle(
            Request(url="/index.html", headers={"X-Client-Id": "u2"}), 20.0)
        assert "/late.js" not in config_of(other)

    def test_shared_map_cache_not_polluted(self, server):
        self._visit(server, "u1", 0.0)
        server.handle(Request(url="/index.html",
                              headers={"X-Client-Id": "u1"}), 10.0)
        # the cached session-independent maps must not contain u1's URLs
        for config in server._map_cache.values():
            assert "/late.js" not in config

    def test_anonymous_after_session_merge(self, server):
        self._visit(server, "u1", 0.0)
        server.handle(Request(url="/index.html",
                              headers={"X-Client-Id": "u1"}), 10.0)
        anonymous = server.handle(Request(url="/index.html"), 30.0)
        assert "/late.js" not in config_of(anonymous)


class TestCssNegativeMemo:
    """Satellite: a failed stylesheet peek memoizes as [] instead of
    re-running the render + decode on every document request."""

    def test_failed_peek_runs_once(self, scenario_site, monkeypatch):
        server = CatalystServer(scenario_site)
        original = scenario_site.respond
        calls = {"css": 0}

        def failing_css(url, at_time):
            if url == "/style.css":
                calls["css"] += 1
                return Response(status=404, body=b"gone")
            return original(url, at_time)

        monkeypatch.setattr(scenario_site, "respond", failing_css)
        server.handle(Request(url="/index.html"), 0.0)
        peeks_after_first = calls["css"]
        assert peeks_after_first >= 1
        server.handle(Request(url="/index.html"), 1.0)
        server.handle(Request(url="/index.html"), 2.0)
        assert calls["css"] == peeks_after_first  # negative result cached

    def test_negative_entry_keyed_by_version(self, scenario_site):
        server = CatalystServer(scenario_site)
        server._css_children_memo[("/style.css", 0)] = []
        # same version: memoized empty wins, no re-peek
        assert server._css_children("/style.css", 10.0) == []
        # new version at t=100: fresh peek repopulates children
        assert server._css_children("/style.css", 150.0) == ["/bg.png"]


class TestInjectionFailOpen:
    """Satellite: injection lives inside the render-cache fold and fails
    open — a broken injection serves the unmodified document, and a
    map-build failure neither re-pays nor double-applies injection."""

    def test_injection_failure_serves_unmodified(self, scenario_site,
                                                 monkeypatch):
        import repro.server.catalyst as catalyst_mod

        def broken(markup, *args, **kwargs):
            raise RuntimeError("synthetic injection failure")

        monkeypatch.setattr(catalyst_mod, "inject_sw_registration", broken)
        server = CatalystServer(scenario_site)
        response = server.handle(Request(url="/index.html"), 0.0)
        assert response.status == 200
        assert not has_sw_registration(response.body.decode())
        assert server.injection_failures == 1
        # the map is still built and stapled: injection and stapling fail
        # independently
        assert ETAG_CONFIG_HEADER in response.headers

    def test_injection_failure_raises_when_strict(self, scenario_site,
                                                  monkeypatch):
        import repro.server.catalyst as catalyst_mod

        def broken(markup, *args, **kwargs):
            raise RuntimeError("synthetic injection failure")

        monkeypatch.setattr(catalyst_mod, "inject_sw_registration", broken)
        server = CatalystServer(scenario_site,
                                config=CatalystConfig(fail_open=False))
        with pytest.raises(RuntimeError):
            server.handle(Request(url="/index.html"), 0.0)

    def test_map_failure_does_not_double_inject(self, scenario_site):
        server = CatalystServer(scenario_site)
        server._build_config_for_html = _raises
        first = server.handle(Request(url="/index.html"), 0.0)
        second = server.handle(Request(url="/index.html"), 1.0)
        assert server.map_build_failures == 2
        assert first.body == second.body
        assert first.body.decode().count("cache-catalyst-register") == 1
        # injection + hash ran once (render cache), not once per failure
        assert server.perf.render_misses == 1
        assert server.perf.render_hits == 1


def _raises(*args, **kwargs):
    raise RuntimeError("synthetic map-construction failure")


class TestStatsSurface:
    def test_stats_exposes_perf_and_cache_sizes(self, scenario_site):
        server = CatalystServer(scenario_site)
        server.handle(Request(url="/index.html"), 0.0)
        server.handle(Request(url="/index.html"), 1.0)
        stats = server.stats()
        assert stats["render_hits"] == 1
        assert stats["render_cache_size"] == 1
        assert stats["ref_cache_size"] == 1
        assert stats["map_cache_size"] >= 1
        assert stats["maps_stapled"] == 2
        assert stats["handle_count"] == 2
        assert stats["handle_ns_p50"] > 0

    def test_cache_cap_trims_fifo(self, scenario_site):
        server = CatalystServer(scenario_site,
                                config=CatalystConfig(max_cache_entries=2))
        # three distinct document versions: t<200 (v0), then forced keys
        server._render_cache[("/a", 0)] = object()
        server._render_cache[("/b", 0)] = object()
        server._render_cache[("/c", 0)] = object()
        server._trim(server._render_cache)
        assert len(server._render_cache) == 2
        assert ("/a", 0) not in server._render_cache
