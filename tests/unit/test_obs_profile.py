"""Unit tests for self-time profiling + flamegraph export."""

import pytest

from repro.obs import (Tracer, collapsed_stacks, format_self_times,
                       self_times, to_collapsed)

pytestmark = pytest.mark.obs


def _tree_tracer():
    """root(0..10) -> [child_a(1..4), child_b(3..8)], leaf under a."""
    tracer = Tracer(clock=lambda: 0.0)
    root = tracer.add_span("load", "page", 0.0, 10.0)
    child_a = tracer.add_span("fetch", "net", 1.0, 4.0, parent=root)
    tracer.add_span("parse", "browser", 1.5, 2.0, parent=child_a)
    tracer.add_span("fetch", "net", 3.0, 8.0, parent=root)
    return tracer


class TestSelfTimes:
    def test_overlapping_children_merge(self):
        # children cover [1,4] U [3,8] = 7s -> root self = 3s, never
        # double-subtracted
        totals = self_times(_tree_tracer())
        assert totals[("page", "load")]["self_s"] == pytest.approx(3.0)
        assert totals[("page", "load")]["total_s"] == pytest.approx(10.0)

    def test_child_self_excludes_grandchild(self):
        totals = self_times(_tree_tracer())
        # net:fetch spans: (4-1-0.5) + (8-3) = 7.5 self across count 2
        assert totals[("net", "fetch")]["self_s"] == pytest.approx(7.5)
        assert totals[("net", "fetch")]["count"] == 2

    def test_child_clamped_to_parent(self):
        tracer = Tracer(clock=lambda: 0.0)
        parent = tracer.add_span("p", "c", 0.0, 5.0)
        tracer.add_span("runaway", "c", 4.0, 50.0, parent=parent)
        totals = self_times(tracer)
        assert totals[("c", "p")]["self_s"] == pytest.approx(4.0)

    def test_open_spans_skipped(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.begin("open", "cat")  # never ended
        assert self_times(tracer) == {}

    def test_orphan_parent_treated_as_root(self):
        tracer = Tracer(clock=lambda: 0.0, max_spans=1)
        root = tracer.add_span("evicted", "cat", 0.0, 10.0)
        tracer.add_span("kept", "cat", 2.0, 5.0, parent=root)
        # ring holds only the child; its parent id dangles
        totals = self_times(tracer)
        assert totals == {("cat", "kept"):
                          {"self_s": 3.0, "total_s": 3.0, "count": 1}}
        stacks = collapsed_stacks(tracer)
        assert list(stacks) == ["cat:kept"]


class TestCollapsed:
    def test_paths_and_weights(self):
        stacks = collapsed_stacks(_tree_tracer())
        assert stacks["page:load"] == 3_000_000
        assert stacks["page:load;net:fetch"] == 7_500_000
        assert stacks["page:load;net:fetch;browser:parse"] == 500_000

    def test_zero_weight_paths_dropped(self):
        tracer = Tracer(clock=lambda: 0.0)
        parent = tracer.add_span("covered", "c", 0.0, 2.0)
        tracer.instant("tick", "c", parent=parent, at=1.0)
        tracer.add_span("child", "c", 0.0, 2.0, parent=parent)
        stacks = collapsed_stacks(tracer)
        assert "c:covered" not in stacks  # fully covered by child
        assert "c:covered;c:tick" not in stacks  # instants weigh nothing

    def test_reserved_characters_sanitized(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.add_span("do thing;now", "my cat", 0.0, 1.0)
        (path,) = collapsed_stacks(tracer)
        assert path == "my_cat:do_thing,now"

    def test_to_collapsed_format(self):
        text = to_collapsed(_tree_tracer())
        lines = text.splitlines()
        assert text.endswith("\n")
        assert lines == sorted(lines)
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert int(weight) > 0

    def test_empty_tracer(self):
        tracer = Tracer(clock=lambda: 0.0)
        assert to_collapsed(tracer) == ""
        assert format_self_times(tracer) == "(no finished spans)"


class TestFormat:
    def test_table_shape(self):
        table = format_self_times(_tree_tracer())
        lines = table.splitlines()
        assert "self ms" in lines[0] and "share" in lines[0]
        # heaviest first: net:fetch (7.5s self) above page:load (3s)
        assert lines[1].startswith("net:fetch")
        assert "%" in lines[1]

    def test_top_limits_rows(self):
        table = format_self_times(_tree_tracer(), top=1)
        assert len(table.splitlines()) == 2


class TestSpanListSource:
    def test_accepts_plain_span_iterable(self):
        tracer = _tree_tracer()
        from_list = self_times(tracer.spans())
        assert from_list == self_times(tracer)
