"""Unit tests for the SW offline fallback (isolated from page loads)."""

import pytest

from repro.browser.sw_host import ServiceWorkerHost
from repro.http.etag import etag_for_content
from repro.http.messages import Request, Response


def cached_sw() -> ServiceWorkerHost:
    sw = ServiceWorkerHost()
    sw.registered = True
    body = b"stylesheet bytes"
    sw.on_response(Request(url="/a.css"),
                   Response(headers={"ETag": str(etag_for_content(body))},
                            body=body), now=0.0)
    return sw


class TestOfflineFallback:
    def test_serves_cached_body(self):
        sw = cached_sw()
        fallback = sw.offline_fallback(Request(url="/a.css"), now=10.0)
        assert fallback is not None
        assert fallback.body == b"stylesheet bytes"

    def test_marks_warning_header(self):
        sw = cached_sw()
        fallback = sw.offline_fallback(Request(url="/a.css"), now=10.0)
        assert fallback.headers["Warning"].startswith("111")

    def test_returns_copy_not_cache_entry(self):
        sw = cached_sw()
        first = sw.offline_fallback(Request(url="/a.css"), now=10.0)
        first.headers.set("Mutated", "yes")
        second = sw.offline_fallback(Request(url="/a.css"), now=11.0)
        assert "Mutated" not in second.headers

    def test_unregistered_sw_refuses(self):
        sw = cached_sw()
        sw.registered = False
        assert sw.offline_fallback(Request(url="/a.css"), now=10.0) is None

    def test_uncached_url_refuses(self):
        sw = cached_sw()
        assert sw.offline_fallback(Request(url="/other.css"),
                                   now=10.0) is None

    def test_non_get_refuses(self):
        sw = cached_sw()
        assert sw.offline_fallback(Request(method="POST", url="/a.css"),
                                   now=10.0) is None

    def test_works_without_etag_config(self):
        """Offline serving needs no stapled map — only the cache."""
        sw = cached_sw()
        assert sw.etag_config is None
        assert sw.offline_fallback(Request(url="/a.css"),
                                   now=10.0) is not None
