"""Unit tests for the connection model."""

import pytest

from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.netsim.tcp import (Connection, ConnectionPolicy,
                              slow_start_extra_rtts)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def link(sim):
    return Link(sim, NetworkConditions.of(60, 40))


class TestSlowStart:
    def test_fits_in_initial_window(self):
        policy = ConnectionPolicy(init_cwnd_segments=10, mss=1460)
        assert slow_start_extra_rtts(10 * 1460, policy) == 0
        assert slow_start_extra_rtts(1, policy) == 0

    def test_one_extra_window(self):
        policy = ConnectionPolicy(init_cwnd_segments=10, mss=1460)
        assert slow_start_extra_rtts(11 * 1460, policy) == 1
        assert slow_start_extra_rtts(30 * 1460, policy) == 1

    def test_two_extra_windows(self):
        policy = ConnectionPolicy(init_cwnd_segments=10, mss=1460)
        # 10 + 20 + 40 = 70 segments within 3 windows
        assert slow_start_extra_rtts(31 * 1460, policy) == 2
        assert slow_start_extra_rtts(70 * 1460, policy) == 2

    def test_zero_bytes(self):
        assert slow_start_extra_rtts(0, ConnectionPolicy()) == 0

    def test_custom_window_override(self):
        policy = ConnectionPolicy(init_cwnd_segments=10)
        assert slow_start_extra_rtts(40 * 1460, policy,
                                     cwnd_segments=40) == 0


class TestConnectionPolicy:
    def test_default_setup_is_tcp_plus_tls13(self):
        assert ConnectionPolicy().setup_rtts == 2.0

    def test_plain_http_no_tls(self):
        assert ConnectionPolicy(tls_rtts=0).setup_rtts == 1.0

    def test_no_handshakes(self):
        policy = ConnectionPolicy(tcp_handshake=False, tls_rtts=0)
        assert policy.setup_rtts == 0.0


class TestConnection:
    def test_setup_pays_handshake_rtts(self, sim, link):
        conn = Connection(sim=sim, link=link,
                          policy=ConnectionPolicy(tls_rtts=1))

        def proc():
            yield from conn.setup()
            return sim.now
        assert sim.run_process(proc()) == pytest.approx(0.080)
        assert conn.established

    def test_setup_is_idempotent(self, sim, link):
        conn = Connection(sim=sim, link=link)

        def proc():
            yield from conn.setup()
            first = sim.now
            yield from conn.setup()
            return first, sim.now
        first, second = sim.run_process(proc())
        assert first == second

    def test_request_response_timing(self, sim, link):
        conn = Connection(sim=sim, link=link,
                          policy=ConnectionPolicy(tcp_handshake=False,
                                                  tls_rtts=0))

        def proc():
            elapsed = yield from conn.request_response(
                response_body_bytes=75_000, server_think_s=0.010)
            return elapsed
        elapsed = sim.run_process(proc())
        # one-way 20ms + think 10ms + one-way 20ms + ~75.35kB / 60 Mbps
        expected = 0.020 + 0.010 + 0.020 + (75_350 + 450 / 1e9) * 8 / 60e6
        assert elapsed == pytest.approx(expected, rel=0.01)
        assert conn.requests_served == 1

    def test_request_includes_setup_when_cold(self, sim, link):
        conn = Connection(sim=sim, link=link,
                          policy=ConnectionPolicy(tls_rtts=1))

        def proc():
            yield from conn.request_response(0)
            return sim.now
        total = sim.run_process(proc())
        assert total > 0.080  # handshakes happened first

    def test_slow_start_adds_rtts_for_large_bodies(self, sim, link):
        fast = ConnectionPolicy(tcp_handshake=False, tls_rtts=0,
                                slow_start=False)
        slow = ConnectionPolicy(tcp_handshake=False, tls_rtts=0,
                                slow_start=True)
        body = 100 * 1460  # needs extra windows

        def run(policy):
            local_sim = Simulator()
            local_link = Link(local_sim, NetworkConditions.of(60, 40))
            conn = Connection(sim=local_sim, link=local_link, policy=policy)

            def proc():
                elapsed = yield from conn.request_response(body)
                return elapsed
            return local_sim.run_process(proc())

        assert run(slow) > run(fast)

    def test_slow_start_window_grows_across_requests(self, sim, link):
        policy = ConnectionPolicy(tcp_handshake=False, tls_rtts=0,
                                  slow_start=True)
        conn = Connection(sim=sim, link=link, policy=policy)
        body = 40 * 1460

        def proc():
            first = yield from conn.request_response(body)
            second = yield from conn.request_response(body)
            return first, second
        first, second = sim.run_process(proc())
        assert second < first  # cwnd carried over
