"""Unit tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Span, Tracer
from repro.obs.trace import DEFAULT_MAX_SPANS, NullTracer

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestSpanLifecycle:
    def test_begin_end_records_interval(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.begin("work", "browser")
        clock.now = 0.25
        span.end()
        assert span.finished
        assert span.duration_s == pytest.approx(0.25)
        assert tracer.spans() == [span]

    def test_end_is_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.begin("work")
        clock.now = 1.0
        span.end()
        clock.now = 2.0
        span.end()
        assert span.end_s == 1.0
        assert len(tracer) == 1

    def test_end_never_precedes_start(self):
        tracer = Tracer(clock=FakeClock(5.0))
        span = tracer.begin("work")
        span.end(at=1.0)
        assert span.end_s == span.start_s

    def test_unfinished_spans_not_retained(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("open-forever")
        assert tracer.spans() == []
        assert tracer.spans_started == 1

    def test_annotations_chain(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("work").set("k", 1).annotate(a="b")
        assert span.args == {"k": 1, "a": "b"}

    def test_context_manager_records_errors(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.begin("work") as span:
                raise RuntimeError("boom")
        assert span.args["error"] == "RuntimeError"
        assert span.finished


class TestTracer:
    def test_ids_propagate(self):
        tracer = Tracer(clock=FakeClock(), trace_id="abc")
        parent = tracer.begin("parent")
        child = tracer.begin("child", parent=parent)
        assert child.trace_id == parent.trace_id == "abc"
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_null_span_parent_means_root(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("root", parent=NULL_SPAN)
        assert span.parent_id is None

    def test_instant_has_zero_duration(self):
        tracer = Tracer(clock=FakeClock(3.0))
        span = tracer.instant("verdict", "sw", args={"hit": True})
        assert span.finished
        assert span.duration_s == 0.0
        assert span.start_s == 3.0

    def test_explicit_at_overrides_clock(self):
        tracer = Tracer(clock=FakeClock(99.0))
        span = tracer.add_span("measured", "server", 1.0, 2.0)
        assert (span.start_s, span.end_s) == (1.0, 2.0)

    def test_ring_bounds_retention(self):
        tracer = Tracer(clock=FakeClock(), max_spans=3)
        for i in range(5):
            tracer.begin(f"s{i}").end()
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.spans_started == 5

    def test_bind_clock_rebinds(self):
        tracer = Tracer(clock=FakeClock(1.0))
        late = FakeClock(7.0)
        tracer.bind_clock(late)
        assert tracer.begin("x").start_s == 7.0

    def test_parenting_context(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("outer")
        assert tracer.current_parent is None
        with tracer.parenting(span):
            assert tracer.current_parent is span
        assert tracer.current_parent is None

    def test_summary(self):
        tracer = Tracer(clock=FakeClock(), trace_id="t")
        tracer.begin("a", "browser").end()
        tracer.begin("b", "netsim").end()
        summary = tracer.summary()
        assert summary["trace_id"] == "t"
        assert summary["spans_retained"] == 2
        assert summary["categories"] == ["browser", "netsim"]

    def test_default_ring_capacity(self):
        assert Tracer()._finished.maxlen == DEFAULT_MAX_SPANS


class TestNullTracer:
    def test_disabled_and_shared_singleton(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("x", "cat") is NULL_SPAN
        assert NULL_TRACER.instant("x") is NULL_SPAN
        assert NULL_TRACER.add_span("x", "c", 0.0, 1.0) is NULL_SPAN

    def test_null_span_is_inert_and_falsy(self):
        assert not NULL_SPAN
        assert NULL_SPAN.set("k", 1) is NULL_SPAN
        assert NULL_SPAN.annotate(a=2) is NULL_SPAN
        assert NULL_SPAN.end() is NULL_SPAN
        assert NULL_SPAN.args == {}

    def test_null_parenting_is_noop(self):
        with NULL_TRACER.parenting(NULL_SPAN):
            assert NULL_TRACER.current_parent is None

    def test_collections_empty(self):
        tracer = NullTracer()
        assert tracer.spans() == []
        assert len(tracer) == 0
        assert tracer.summary()["enabled"] is False
