"""Unit tests for the Figure 1 scenario reproduction."""

import pytest

from repro.browser.metrics import FetchSource
from repro.experiments.figure1 import (FIGURE1_REVISIT_DELAY_S,
                                       build_figure1_site, run_figure1)
from repro.netsim.clock import HOUR
from repro.server.site import OriginSite


class TestSiteConstruction:
    def test_exact_resource_set(self):
        site = build_figure1_site()
        assert set(site.index.resources) == {"/a.css", "/b.js", "/c.js",
                                             "/d.jpg"}
        assert site.index.html_refs == ("/a.css", "/b.js")

    def test_dependency_chain(self):
        site = build_figure1_site()
        assert site.index.resources["/b.js"].children == ("/c.js",)
        assert site.index.resources["/c.js"].children == ("/d.jpg",)

    def test_only_djpg_changes_within_two_hours(self):
        origin = OriginSite(build_figure1_site())
        assert origin.changed_between("/d.jpg", 0.0,
                                      FIGURE1_REVISIT_DELAY_S)
        for url in ("/index.html", "/a.css", "/b.js", "/c.js"):
            assert not origin.changed_between(url, 0.0,
                                              FIGURE1_REVISIT_DELAY_S)

    def test_djpg_changes_at_90_minutes(self):
        origin = OriginSite(build_figure1_site())
        assert not origin.changed_between("/d.jpg", 0.0, 1.4 * HOUR)
        assert origin.changed_between("/d.jpg", 0.0, 1.6 * HOUR)


class TestPanels:
    @pytest.fixture(scope="class")
    def panels(self):
        return run_figure1()

    def test_panel_a_all_network(self, panels):
        assert all(e.source is FetchSource.NETWORK
                   for e in panels.cold.events)

    def test_panel_b_matches_paper(self, panels):
        sources = {e.url: e.source for e in panels.standard_revisit.events}
        assert sources["/a.css"] is FetchSource.HTTP_CACHE
        assert sources["/b.js"] is FetchSource.REVALIDATED
        assert sources["/c.js"] is FetchSource.HTTP_CACHE
        assert sources["/d.jpg"] is FetchSource.NETWORK

    def test_panel_c_matches_paper(self, panels):
        sources = {e.url: e.source for e in panels.catalyst_revisit.events}
        assert sources["/a.css"] is FetchSource.SW_CACHE
        assert sources["/b.js"] is FetchSource.SW_CACHE
        assert sources["/d.jpg"] is FetchSource.NETWORK

    def test_plt_ordering_a_b_c(self, panels):
        assert panels.cold.plt_s > panels.standard_revisit.plt_s
        assert panels.standard_revisit.plt_s > panels.catalyst_revisit.plt_s

    def test_panel_c_network_requests_minimal(self, panels):
        """Figure 1c: only the base document and d.jpg touch the network."""
        network = {e.url for e in panels.catalyst_revisit.events
                   if e.source in (FetchSource.NETWORK,
                                   FetchSource.REVALIDATED)}
        assert network == {"/index.html", "/d.jpg"}

    def test_format_mentions_all_panels(self, panels):
        text = panels.format()
        assert "(a)" in text and "(b)" in text and "(c)" in text
