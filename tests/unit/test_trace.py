"""Unit tests for HAR export and the waterfall renderer."""

import json

import pytest

from repro.browser.metrics import FetchEvent, FetchSource, PageLoadResult
from repro.browser.trace import render_waterfall, to_har, to_har_json
from repro.html.parser import ResourceKind


def sample_result() -> PageLoadResult:
    events = [
        FetchEvent(url="/index.html", kind=ResourceKind.DOCUMENT,
                   source=FetchSource.NETWORK, start_s=0.0, end_s=0.14,
                   bytes_down=30_000, rtts_paid=3.0, blocking=True),
        FetchEvent(url="/a.css", kind=ResourceKind.STYLESHEET,
                   source=FetchSource.SW_CACHE, start_s=0.15, end_s=0.151,
                   bytes_down=0, blocking=True),
        FetchEvent(url="/d.jpg", kind=ResourceKind.IMAGE,
                   source=FetchSource.NETWORK, start_s=0.15, end_s=0.2,
                   bytes_down=40_000, rtts_paid=1.0),
    ]
    return PageLoadResult(url="/index.html", mode="catalyst", start_s=0.0,
                          onload_s=0.2, events=events, first_render_s=0.151)


class TestHar:
    def test_shape(self):
        har = to_har(sample_result())
        log = har["log"]
        assert log["version"] == "1.2"
        assert len(log["pages"]) == 1
        assert len(log["entries"]) == 3

    def test_page_timings(self):
        har = to_har(sample_result())
        timings = har["log"]["pages"][0]["pageTimings"]
        assert timings["onLoad"] == pytest.approx(200.0)
        assert timings["onContentLoad"] == pytest.approx(151.0)

    def test_entries_sorted_by_start(self):
        entries = to_har(sample_result())["log"]["entries"]
        starts = [e["startedDateTime"] for e in entries]
        assert starts == sorted(starts)

    def test_cache_source_annotation(self):
        entries = to_har(sample_result())["log"]["entries"]
        by_url = {e["request"]["url"]: e for e in entries}
        assert by_url["/a.css"]["_cacheSource"] == "sw-cache"
        assert by_url["/d.jpg"]["_cacheSource"] == "network"

    def test_sizes(self):
        entries = to_har(sample_result())["log"]["entries"]
        by_url = {e["request"]["url"]: e for e in entries}
        assert by_url["/d.jpg"]["response"]["bodySize"] == 40_000
        assert by_url["/a.css"]["response"]["bodySize"] == 0

    def test_entries_carry_sim_start_for_correlation(self):
        # _startS is what repro.obs.export.enrich_har keys on to match
        # HAR entries against browser.fetch spans.
        entries = to_har(sample_result())["log"]["entries"]
        by_url = {e["request"]["url"]: e for e in entries}
        assert by_url["/index.html"]["_startS"] == pytest.approx(0.0)
        assert by_url["/a.css"]["_startS"] == pytest.approx(0.15)

    def test_json_round_trip(self):
        text = to_har_json(sample_result())
        assert json.loads(text)["log"]["entries"]

    def test_iso_timestamps_anchor_at_wall_epoch(self):
        har = to_har(sample_result())
        started = har["log"]["pages"][0]["startedDateTime"]
        assert started.startswith("2024-01-01T00:00:00")

    def test_empty_result(self):
        result = PageLoadResult(url="/", mode="m", start_s=0.0,
                                onload_s=0.1)
        assert to_har(result)["log"]["entries"] == []


class TestWaterfall:
    def test_contains_all_urls(self):
        text = render_waterfall(sample_result())
        for url in ("/index.html", "/a.css", "/d.jpg"):
            assert url in text

    def test_bars_reflect_order(self):
        text = render_waterfall(sample_result(), width=40)
        lines = text.splitlines()[1:]
        first_bar = lines[0].split("|")[1]
        last_bar = lines[-1].split("|")[1]
        assert first_bar.index("#") <= last_bar.index("#")

    def test_header_has_plt(self):
        assert "PLT=200.0ms" in render_waterfall(sample_result())

    def test_empty(self):
        result = PageLoadResult(url="/", mode="m", start_s=0.0,
                                onload_s=0.1)
        assert "(no events)" in render_waterfall(result)

    def test_real_load_renders(self):
        from repro.core.catalyst import run_visit_sequence
        from repro.core.modes import CachingMode, build_mode
        from repro.netsim.link import NetworkConditions
        from repro.workload.sitegen import generate_site
        site = generate_site("https://w.example", seed=9,
                             median_resources=15)
        setup = build_mode(CachingMode.CATALYST, site)
        outcomes = run_visit_sequence(setup, NetworkConditions.of(60, 40),
                                      [0.0, 3600.0])
        text = render_waterfall(outcomes[1].result)
        assert "sw-cache" in text
