"""Unit tests for the RDR and Extreme Cache baselines."""

import pytest

from repro.baselines.extreme_cache import ExtremeCacheProxy
from repro.baselines.rdr import RdrProxy
from repro.browser.engine import BrowserConfig, BrowserSession
from repro.core.modes import CachingMode, build_mode
from repro.http.messages import Request
from repro.netsim.clock import HOUR
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.server.site import OriginSite
from repro.workload.sitegen import generate_site

COND = NetworkConditions.of(60, 100)


@pytest.fixture(scope="module")
def site_spec():
    return generate_site("https://b.example", seed=81)


def rdr_load(site_spec, conditions=COND):
    sim = Simulator()
    proxy = RdrProxy(OriginSite(site_spec))
    link = Link(sim, conditions)
    return sim.run_process(proxy.load(sim, link, "/index.html"))


class TestRdr:
    def test_single_bulk_event(self, site_spec):
        result = rdr_load(site_spec)
        assert len(result.events) == 1
        assert result.events[0].bytes_down > 0
        assert result.mode == "rdr"

    def test_beats_cold_standard_load_at_high_latency(self, site_spec):
        from repro.core.catalyst import run_visit_sequence
        setup = build_mode(CachingMode.STANDARD, site_spec)
        cold = run_visit_sequence(setup, COND, [0.0])[0].result
        rdr = rdr_load(site_spec)
        assert rdr.plt_s < cold.plt_s

    def test_no_benefit_from_client_cache(self, site_spec):
        """RDR re-ships the bundle every visit (the §5 criticism)."""
        first = rdr_load(site_spec)
        second = rdr_load(site_spec)
        assert second.plt_s == pytest.approx(first.plt_s, rel=0.05)
        assert second.bytes_down == pytest.approx(first.bytes_down,
                                                  rel=0.05)

    def test_plt_scales_with_rtt_only_weakly(self, site_spec):
        low = rdr_load(site_spec, NetworkConditions.of(60, 10))
        high = rdr_load(site_spec, NetworkConditions.of(60, 200))
        # one round trip of difference-ish, not dozens
        assert (high.plt_s - low.plt_s) < 10 * 0.190


class TestExtremeCache:
    def test_rewrites_short_ttls(self, site_spec):
        proxy = ExtremeCacheProxy(OriginSite(site_spec))
        page = site_spec.index
        rewritable = [
            url for url, spec in page.resources.items()
            if spec.policy.mode in ("max-age", "none") and not spec.dynamic]
        for url in rewritable[:5]:
            response = proxy.handle(Request(url=url), at_time=0.0)
            cc = response.cache_control
            assert cc.max_age is not None and cc.max_age >= 60
        assert proxy.rewritten > 0

    def test_no_store_respected(self, site_spec):
        proxy = ExtremeCacheProxy(OriginSite(site_spec))
        page = site_spec.index
        no_store = [url for url, spec in page.resources.items()
                    if spec.policy.mode == "no-store"]
        if not no_store:
            pytest.skip("no no-store resources in this seed")
        response = proxy.handle(Request(url=no_store[0]), at_time=0.0)
        assert response.cache_control.no_store

    def test_no_cache_left_alone(self, site_spec):
        proxy = ExtremeCacheProxy(OriginSite(site_spec))
        page = site_spec.index
        no_cache = [url for url, spec in page.resources.items()
                    if spec.policy.mode == "no-cache"]
        if not no_cache:
            pytest.skip("no no-cache resources in this seed")
        response = proxy.handle(Request(url=no_cache[0]), at_time=0.0)
        assert response.cache_control.no_cache

    def test_estimates_deterministic_per_url(self, site_spec):
        proxy = ExtremeCacheProxy(OriginSite(site_spec), seed=5)
        page = site_spec.index
        url = next(u for u, s in page.resources.items()
                   if s.policy.mode == "max-age")
        first = proxy.handle(Request(url=url), 0.0).cache_control.max_age
        second = proxy.handle(Request(url=url), 1.0).cache_control.max_age
        assert first == second

    def test_oracle_estimator_matches_period_scale(self, site_spec):
        """sigma=0: TTL == safety_factor * true period (clamped)."""
        proxy = ExtremeCacheProxy(OriginSite(site_spec),
                                  estimation_sigma=0.0, safety_factor=0.5)
        page = site_spec.index
        url, spec = next(
            (u, s) for u, s in page.resources.items()
            if s.policy.mode == "max-age" and s.change_period_s < 1e8
            and s.change_period_s > 200)
        ttl = proxy.handle(Request(url=url), 0.0).cache_control.max_age
        expected = min(max(spec.change_period_s * 0.5, 60), 30 * 86400)
        assert ttl == pytest.approx(expected, rel=0.01)

    def test_stale_serves_measurable_with_long_estimates(self, site_spec):
        """Overestimation creates stale serves — the unreported risk."""
        from repro.browser.metrics import FetchSource
        from repro.experiments.harness import _stale_hits
        site = OriginSite(site_spec)
        proxy = ExtremeCacheProxy(site, estimation_sigma=0.0,
                                  safety_factor=50.0)  # reckless TTLs
        config = BrowserConfig()
        session = BrowserSession(config)
        sim = Simulator()
        link = Link(sim, COND)
        sim.run_process(session.load(sim, link, proxy.handle,
                                     "/index.html", mode_label="xc"))
        sim.run(until=30 * 24 * 3600.0)
        link = Link(sim, COND)
        warm = sim.run_process(session.load(sim, link, proxy.handle,
                                            "/index.html",
                                            mode_label="xc"))
        stale = _stale_hits(warm, site_spec, 30 * 24 * 3600.0)
        hits = sum(1 for e in warm.events
                   if e.source is FetchSource.HTTP_CACHE)
        assert hits > 0
        assert stale > 0  # month-old content served as fresh
