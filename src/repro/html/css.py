"""CSS subresource extraction.

Stylesheets pull in more resources — ``@import`` chains, ``url(...)``
images and fonts.  The paper's server must follow these too ("Most
resources are deterministic and can be identified by parsing HTML and CSS
files"), so extraction is shared between server and browser model.

A full CSS parser is unnecessary: references can only appear in ``url()``
tokens and ``@import`` rules, which a small tokenizer handles, including
quoting, escapes and comments.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

__all__ = ["CssRef", "extract_css_urls", "extract_css_refs",
           "extract_css_refs_cached"]

_COMMENT_RE = re.compile(r"/\*.*?\*/", re.S)
_URL_RE = re.compile(
    r"""url\(\s*(?:'(?P<sq>[^']*)'|"(?P<dq>[^"]*)"|(?P<bare>[^)'"\s]+))\s*\)""",
    re.IGNORECASE)
_IMPORT_RE = re.compile(
    r"""@import\s+(?:url\(\s*)?(?:'(?P<sq>[^']*)'|"(?P<dq>[^"]*)"|(?P<bare>[^;)'"\s]+))""",
    re.IGNORECASE)
_FONT_FACE_RE = re.compile(r"@font-face\s*\{(?P<body>[^}]*)\}",
                           re.IGNORECASE | re.S)


@dataclass(frozen=True)
class CssRef:
    """A reference found inside a stylesheet."""

    url: str
    #: "import" (another stylesheet), "font", or "image"
    kind: str


def _matched_url(match: re.Match) -> str:
    return (match.group("sq") or match.group("dq")
            or match.group("bare") or "").strip()


def extract_css_refs(css_text: str) -> list[CssRef]:
    """All external references in a stylesheet, in source order.

    >>> refs = extract_css_refs("@import 'a.css'; body{background:url(b.png)}")
    >>> [(r.url, r.kind) for r in refs]
    [('a.css', 'import'), ('b.png', 'image')]
    """
    text = _COMMENT_RE.sub("", css_text)
    refs: list[CssRef] = []
    seen: set[str] = set()

    font_spans: list[tuple[int, int]] = []
    for match in _FONT_FACE_RE.finditer(text):
        font_spans.append(match.span("body"))

    def in_font_face(position: int) -> bool:
        return any(start <= position < end for start, end in font_spans)

    import_spans: list[tuple[int, int]] = []
    for match in _IMPORT_RE.finditer(text):
        url = _matched_url(match)
        import_spans.append(match.span())
        if url and not url.startswith("data:") and url not in seen:
            seen.add(url)
            refs.append(CssRef(url=url, kind="import"))

    for match in _URL_RE.finditer(text):
        # Skip url() tokens that belong to an @import we already recorded.
        if any(start <= match.start() < end for start, end in import_spans):
            continue
        url = _matched_url(match)
        if not url or url.startswith("data:") or url in seen:
            continue
        seen.add(url)
        kind = "font" if in_font_face(match.start()) else "image"
        refs.append(CssRef(url=url, kind=kind))
    return refs


def extract_css_urls(css_text: str) -> list[str]:
    """Just the URLs (order preserved, de-duplicated)."""
    return [ref.url for ref in extract_css_refs(css_text)]


# Content-digest-keyed memo of :func:`extract_css_refs` — the browser
# model tokenizes the same stylesheet on every one of thousands of
# identical visits; the refs are frozen, so one shared tuple serves all.
_REFS_CACHE: dict[bytes, tuple[CssRef, ...]] = {}
_REFS_CACHE_MAX = 512


def extract_css_refs_cached(css_text: str) -> tuple[CssRef, ...]:
    """Memoized :func:`extract_css_refs`; returns an immutable tuple."""
    key = hashlib.sha256(
        css_text.encode("utf-8", "backslashreplace")).digest()
    cached = _REFS_CACHE.get(key)
    if cached is None:
        cached = tuple(extract_css_refs(css_text))
        if len(_REFS_CACHE) >= _REFS_CACHE_MAX:
            _REFS_CACHE.pop(next(iter(_REFS_CACHE)))
        _REFS_CACHE[key] = cached
    return cached
