"""HTML parsing and subresource extraction.

Built on the stdlib :class:`html.parser.HTMLParser`.  Produces both a DOM
tree (:mod:`repro.html.dom`) and, more importantly for this reproduction,
the ordered list of subresource references a browser would fetch while
loading the page — with the metadata that decides scheduling:

- ``kind``: stylesheet / script / image / font / media / prefetch...
- ``blocking``: whether the reference blocks parsing or the load event
- ``discovered_by``: the URL of the document/stylesheet that linked it
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from html.parser import HTMLParser
from typing import Optional
from urllib.parse import urljoin, urlsplit

from .dom import Document, Element, Text, VOID_ELEMENTS
from .css import extract_css_urls

__all__ = ["ResourceKind", "ResourceRef", "parse_html",
           "extract_resources", "extract_resources_cached",
           "resolve_url", "is_same_origin"]


class ResourceKind(enum.Enum):
    DOCUMENT = "document"
    STYLESHEET = "stylesheet"
    SCRIPT = "script"
    IMAGE = "image"
    FONT = "font"
    MEDIA = "media"
    IFRAME = "iframe"
    FETCH = "fetch"      # XHR/fetch() issued by scripts
    PREFETCH = "prefetch"  # <link rel=preload/prefetch>
    OTHER = "other"


@dataclass(frozen=True)
class ResourceRef:
    """One subresource reference discovered in a document or stylesheet."""

    url: str
    kind: ResourceKind
    #: blocks HTML parsing (sync scripts) or rendering (stylesheets)
    blocking: bool
    #: URL of the containing document/stylesheet
    discovered_by: str = ""
    #: True for <script async>/<script defer>
    deferred: bool = False

    def resolved(self, base_url: str) -> "ResourceRef":
        """Same reference with ``url`` made absolute against ``base_url``."""
        absolute = resolve_url(base_url, self.url)
        if absolute == self.url:
            return self
        return ResourceRef(url=absolute, kind=self.kind,
                           blocking=self.blocking,
                           discovered_by=self.discovered_by,
                           deferred=self.deferred)


def resolve_url(base_url: str, url: str) -> str:
    """Resolve ``url`` against ``base_url`` (RFC 3986 join)."""
    return urljoin(base_url, url)


def is_same_origin(url_a: str, url_b: str) -> bool:
    """Scheme+host+port equality; relative URLs count as same-origin."""
    a, b = urlsplit(url_a), urlsplit(url_b)
    if not a.netloc or not b.netloc:
        return True
    return (a.scheme, a.netloc) == (b.scheme, b.netloc)


class _DomBuilder(HTMLParser):
    """Builds the DOM tree, tolerant of unclosed tags."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element(tag="#root")
        self._stack: list[Element] = [self.root]

    def handle_starttag(self, tag: str, attrs) -> None:
        element = Element(tag=tag.lower(),
                          attrs={k.lower(): v for k, v in attrs})
        self._stack[-1].append(element)
        if tag.lower() not in VOID_ELEMENTS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs) -> None:
        self._stack[-1].append(
            Element(tag=tag.lower(),
                    attrs={k.lower(): v for k, v in attrs}))

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        # Pop to the matching open tag if one exists; ignore strays.
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return

    def handle_data(self, data: str) -> None:
        if data:
            self._stack[-1].append(Text(data))


def parse_html(markup: str) -> Document:
    """Parse HTML text into a :class:`Document`.

    >>> doc = parse_html('<html><body><img src=a.png></body></html>')
    >>> doc.find('img').get('src')
    'a.png'
    """
    builder = _DomBuilder()
    builder.feed(markup)
    builder.close()
    return Document(root=builder.root)


# ---------------------------------------------------------------------------
# Subresource extraction
# ---------------------------------------------------------------------------

_IMG_TAGS = {"img": "src", "embed": "src"}
_MEDIA_TAGS = {"video", "audio", "source", "track"}

_PRELOAD_KINDS = {
    "style": ResourceKind.STYLESHEET,
    "script": ResourceKind.SCRIPT,
    "image": ResourceKind.IMAGE,
    "font": ResourceKind.FONT,
    "fetch": ResourceKind.FETCH,
}


def extract_resources(document: Document, base_url: str = "",
                      include_inline_css: bool = True) -> list[ResourceRef]:
    """Collect subresource references in document order.

    This single function serves both sides of CacheCatalyst: the server
    calls it to build the ETag map; the browser model calls it to know
    what to fetch.  Keeping one implementation guarantees the two agree —
    a disagreement would silently disable the optimization for the missed
    resources.
    """
    refs: list[ResourceRef] = []

    def add(url: Optional[str], kind: ResourceKind, blocking: bool,
            deferred: bool = False) -> None:
        if not url:
            return
        url = url.strip()
        if not url or url.startswith(("data:", "javascript:", "about:",
                                      "#", "blob:")):
            return
        ref = ResourceRef(url=url, kind=kind, blocking=blocking,
                          discovered_by=base_url, deferred=deferred)
        if base_url:
            ref = ref.resolved(base_url)
        refs.append(ref)

    for el in document.walk():
        tag = el.tag
        if tag == "link":
            rel = (el.get("rel") or "").lower()
            href = el.get("href")
            rels = rel.split()
            if "stylesheet" in rels:
                add(href, ResourceKind.STYLESHEET, blocking=True)
            elif "preload" in rels or "prefetch" in rels:
                as_kind = _PRELOAD_KINDS.get((el.get("as") or "").lower(),
                                             ResourceKind.PREFETCH)
                add(href, as_kind, blocking=False)
            elif "icon" in rels or "shortcut" in rels \
                    or "apple-touch-icon" in rel:
                add(href, ResourceKind.IMAGE, blocking=False)
            elif "manifest" in rels:
                add(href, ResourceKind.FETCH, blocking=False)
        elif tag == "script":
            src = el.get("src")
            if src:
                deferred = el.has_attr("async") or el.has_attr("defer") \
                    or (el.get("type") or "").lower() == "module"
                add(src, ResourceKind.SCRIPT, blocking=not deferred,
                    deferred=deferred)
        elif tag in _IMG_TAGS:
            add(el.get(_IMG_TAGS[tag]), ResourceKind.IMAGE, blocking=False)
            srcset = el.get("srcset")
            if srcset:
                for candidate in srcset.split(","):
                    url = candidate.strip().split(" ")[0]
                    add(url, ResourceKind.IMAGE, blocking=False)
        elif tag in _MEDIA_TAGS:
            add(el.get("src"), ResourceKind.MEDIA, blocking=False)
            add(el.get("poster"), ResourceKind.IMAGE, blocking=False)
        elif tag == "iframe":
            add(el.get("src"), ResourceKind.IFRAME, blocking=False)
        elif tag == "input" and (el.get("type") or "").lower() == "image":
            add(el.get("src"), ResourceKind.IMAGE, blocking=False)
        elif tag == "object":
            add(el.get("data"), ResourceKind.OTHER, blocking=False)
        elif tag == "style" and include_inline_css:
            for url in extract_css_urls(el.text_content()):
                add(url, ResourceKind.IMAGE, blocking=False)
        if include_inline_css:
            style_attr = el.get("style")
            if style_attr:
                for url in extract_css_urls(style_attr):
                    add(url, ResourceKind.IMAGE, blocking=False)

    # De-duplicate by URL, keeping the first (and most blocking) mention.
    seen: dict[str, ResourceRef] = {}
    for ref in refs:
        prior = seen.get(ref.url)
        if prior is None:
            seen[ref.url] = ref
        elif ref.blocking and not prior.blocking:
            seen[ref.url] = ResourceRef(
                url=prior.url, kind=prior.kind, blocking=True,
                discovered_by=prior.discovered_by, deferred=False)
    return list(seen.values())


# ---------------------------------------------------------------------------
# Content-digest-keyed extraction cache
# ---------------------------------------------------------------------------
# A grid revisits the same body thousands of times (every warm visit of an
# unchanged page, every mode, every network condition re-parses identical
# markup).  Extraction is pure — same bytes in, same refs out — so the
# dependency graph is derived once per process per distinct content and
# shared from then on.  Values are tuples of frozen ResourceRefs: safe to
# hand to any number of concurrent page loads.  Mirrors the server-side
# render cache (PR 3), keyed the same way: by a digest of the content.

_EXTRACT_CACHE: dict[tuple[bytes, str, bool], tuple[ResourceRef, ...]] = {}
_EXTRACT_CACHE_MAX = 256


def content_digest(text: str) -> bytes:
    """Collision-safe digest of a body used as a parse-cache key."""
    return hashlib.sha256(text.encode("utf-8", "backslashreplace")).digest()


def extract_resources_cached(markup: str, base_url: str = "",
                             include_inline_css: bool = True
                             ) -> tuple[ResourceRef, ...]:
    """Memoized ``extract_resources(parse_html(markup), ...)``.

    Returns an immutable tuple (callers must not mutate the shared
    result).  The cache is process-wide and FIFO-bounded; entries are
    keyed by content digest so identical bodies served under different
    URLs still share one parse.
    """
    key = (content_digest(markup), base_url, include_inline_css)
    cached = _EXTRACT_CACHE.get(key)
    if cached is None:
        cached = tuple(extract_resources(
            parse_html(markup), base_url=base_url,
            include_inline_css=include_inline_css))
        if len(_EXTRACT_CACHE) >= _EXTRACT_CACHE_MAX:
            _EXTRACT_CACHE.pop(next(iter(_EXTRACT_CACHE)))
        _EXTRACT_CACHE[key] = cached
    return cached
