"""HTML rewriting: Service-Worker registration injection.

The paper's modified Caddy "inserts the registration code of the Service
Worker in the HTML file" on the way out.  We do the same with a string-
level injection (not a DOM re-serialization) so the original markup —
whitespace, comments, quirks — survives byte-for-byte except for the one
added ``<script>`` block.  Injection is idempotent.
"""

from __future__ import annotations

import re

__all__ = ["SW_REGISTRATION_MARKER", "sw_registration_script",
           "inject_sw_registration", "has_sw_registration",
           "CACHE_SW_PATH"]

#: URL path the cache Service Worker script is served from
CACHE_SW_PATH = "/cache-catalyst-sw.js"

SW_REGISTRATION_MARKER = "cache-catalyst-register"

_HEAD_OPEN_RE = re.compile(r"<head(\s[^>]*)?>", re.IGNORECASE)
_HTML_OPEN_RE = re.compile(r"<html(\s[^>]*)?>", re.IGNORECASE)


def sw_registration_script(sw_path: str = CACHE_SW_PATH,
                           chain_existing: bool = True) -> str:
    """The registration snippet injected into served HTML.

    ``chain_existing`` addresses the paper's §6 concern about sites that
    already register their own Service Worker: the snippet registers the
    cache SW on its own scope and leaves any existing registration alone,
    letting both coexist (the cache SW claims only fetches the site SW
    passes through).
    """
    coexist = ("" if not chain_existing else
               "/* coexists with any site SW: separate registration, "
               "no takeover */")
    return (
        f'<script id="{SW_REGISTRATION_MARKER}">'
        f"{coexist}"
        "if('serviceWorker' in navigator){"
        f"navigator.serviceWorker.register('{sw_path}')"
        ".catch(function(e){console.warn('cc-sw',e);});"
        "}</script>"
    )


def has_sw_registration(markup: str) -> bool:
    """Whether the registration snippet is already present."""
    return SW_REGISTRATION_MARKER in markup


def inject_sw_registration(markup: str,
                           sw_path: str = CACHE_SW_PATH) -> str:
    """Insert the registration script, preferably right after ``<head>``.

    Falls back to after ``<html>``, then to prepending — every document
    gets the snippet somewhere the browser will execute it.

    >>> out = inject_sw_registration('<html><head></head></html>')
    >>> SW_REGISTRATION_MARKER in out
    True
    >>> inject_sw_registration(out) == out   # idempotent
    True
    """
    if has_sw_registration(markup):
        return markup
    snippet = sw_registration_script(sw_path)
    match = _HEAD_OPEN_RE.search(markup)
    if match:
        pos = match.end()
        return markup[:pos] + snippet + markup[pos:]
    match = _HTML_OPEN_RE.search(markup)
    if match:
        pos = match.end()
        return markup[:pos] + snippet + markup[pos:]
    return snippet + markup
