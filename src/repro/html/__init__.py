"""HTML/CSS content model: parsing, subresource extraction, rewriting."""

from .css import CssRef, extract_css_refs, extract_css_urls
from .dom import Document, Element, Text
from .parser import (ResourceKind, ResourceRef, extract_resources,
                     is_same_origin, parse_html, resolve_url)
from .rewrite import (CACHE_SW_PATH, SW_REGISTRATION_MARKER,
                      has_sw_registration, inject_sw_registration,
                      sw_registration_script)

__all__ = [
    "Document", "Element", "Text",
    "parse_html", "extract_resources", "ResourceRef", "ResourceKind",
    "resolve_url", "is_same_origin",
    "CssRef", "extract_css_refs", "extract_css_urls",
    "inject_sw_registration", "has_sw_registration",
    "sw_registration_script", "SW_REGISTRATION_MARKER", "CACHE_SW_PATH",
]
