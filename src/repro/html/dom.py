"""A lightweight DOM tree.

Just enough document object model for the two jobs the reproduction needs:

- the *server* traverses the DOM of an HTML file to collect subresource
  links for the ``X-Etag-Config`` map (paper §3, "traverses its entire
  DOM, extracts all resource links"), and
- the *browser model* walks the same tree in document order to discover
  fetches and their blocking semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Element", "Text", "Document", "VOID_ELEMENTS"]

#: HTML elements that never have children / close tags
VOID_ELEMENTS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
})


@dataclass
class Text:
    """A text node."""

    data: str

    def to_html(self) -> str:
        return self.data


@dataclass
class Element:
    """An element node with attributes and children."""

    tag: str
    attrs: dict[str, Optional[str]] = field(default_factory=dict)
    children: list["Element | Text"] = field(default_factory=list)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(name.lower(), default)

    def has_attr(self, name: str) -> bool:
        return name.lower() in self.attrs

    def append(self, node: "Element | Text") -> None:
        self.children.append(node)

    # -- traversal --------------------------------------------------------
    def walk(self) -> Iterator["Element"]:
        """Yield this element and every descendant element, document order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.walk()

    def find_all(self, tag: str) -> Iterator["Element"]:
        want = tag.lower()
        for el in self.walk():
            if el.tag == want:
                yield el

    def find(self, tag: str) -> Optional["Element"]:
        return next(self.find_all(tag), None)

    def text_content(self) -> str:
        parts = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.data)
            else:
                parts.append(child.text_content())
        return "".join(parts)

    # -- serialization -----------------------------------------------------
    def to_html(self) -> str:
        attrs = "".join(
            f" {name}" if value is None else f' {name}="{_escape(value)}"'
            for name, value in self.attrs.items())
        if self.tag in VOID_ELEMENTS:
            return f"<{self.tag}{attrs}>"
        inner = "".join(child.to_html() for child in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"

    def __repr__(self) -> str:
        return f"<Element {self.tag} attrs={self.attrs}>"


@dataclass
class Document:
    """A parsed HTML document: a virtual root above the top-level nodes."""

    root: Element

    def walk(self) -> Iterator[Element]:
        yield from self.root.walk()

    def find_all(self, tag: str) -> Iterator[Element]:
        return self.root.find_all(tag)

    def find(self, tag: str) -> Optional[Element]:
        return self.root.find(tag)

    @property
    def head(self) -> Optional[Element]:
        return self.find("head")

    @property
    def body(self) -> Optional[Element]:
        return self.find("body")

    def to_html(self) -> str:
        inner = "".join(child.to_html() for child in self.root.children)
        return "<!DOCTYPE html>" + inner


def _escape(value: str) -> str:
    return (value.replace("&", "&amp;").replace('"', "&quot;")
            .replace("<", "&lt;").replace(">", "&gt;"))
