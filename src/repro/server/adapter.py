"""Bridging sim-time request handlers onto the real asyncio server.

The DES servers take ``handle(request, at_time)``; the asyncio server
calls ``handler(request)`` in wall time.  :func:`as_async_handler` maps
wall-clock seconds since construction onto the sim-time axis, so one
:class:`~repro.server.catalyst.CatalystServer` (or StaticServer /
ExtremeCacheProxy) serves both worlds unchanged — the integration tests
and examples exercise the identical code the experiments measure.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol

from ..http.messages import Request, Response

__all__ = ["as_async_handler", "TimedHandler"]


class TimedHandler(Protocol):
    """Anything with the DES server surface."""

    def handle(self, request: Request, at_time: float) -> Response: ...


def as_async_handler(server: TimedHandler,
                     clock: Callable[[], float] = time.monotonic,
                     time_scale: float = 1.0) -> Callable[[Request], Response]:
    """Wrap a sim-time server for :class:`~repro.http.AsyncHttpServer`.

    ``time_scale`` compresses wall time onto the sim axis — e.g. 3600.0
    makes one wall second age the served content by an hour, letting a
    live demo show revisit behaviour without waiting a week.
    """
    epoch = clock()

    def handler(request: Request) -> Response:
        at_time = (clock() - epoch) * time_scale
        return server.handle(request, at_time)

    return handler
