"""Static origin serving with conditional-request support.

Implements the status-quo revalidation contract the paper describes in
§2.1: a request carrying ``If-None-Match`` gets a short ``304 Not
Modified`` when the representation is unchanged — saving transfer time
but still costing the round trip that CacheCatalyst exists to eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..http.dates import parse_http_date
from ..http.etag import if_none_match_matches, parse_etag
from ..http.headers import Headers
from ..http.messages import Request, Response
from .site import OriginSite

__all__ = ["StaticServer"]

#: headers a 304 must repeat so caches can update stored metadata
_304_HEADERS = ("Date", "ETag", "Cache-Control", "Expires", "Vary",
                "Last-Modified")


@dataclass
class StaticServer:
    """Request handler over an :class:`OriginSite`.

    ``handle(request, at_time)`` is the whole interface; both the DES
    transport and the asyncio server adapt onto it.
    """

    site: OriginSite
    #: count of 304s served (the revalidation traffic the paper measures)
    not_modified_count: int = 0
    #: count of full 200 responses
    full_response_count: int = 0
    _history: list[tuple[float, str, int]] = field(default_factory=list)

    def handle(self, request: Request, at_time: float) -> Response:
        if request.method not in ("GET", "HEAD"):
            return Response(status=405,
                            headers=Headers({"Allow": "GET, HEAD"}))
        full = self.site.respond(request.path, at_time)
        return self.finalize(request, full, at_time)

    def finalize(self, request: Request, full: Response,
                 at_time: float) -> Response:
        """Apply conditional-request handling to a prebuilt full response.

        Split out so :class:`~repro.server.catalyst.CatalystServer` can
        transform the representation (SW injection) before the ETag
        comparison happens — the comparison must see the *final* bytes.
        """
        path = request.path
        if full.status != 200:
            self._record(at_time, path, full.status)
            return full
        conditional = self._try_not_modified(request, full)
        if conditional is not None:
            self.not_modified_count += 1
            self._record(at_time, path, 304)
            return conditional
        if request.method == "HEAD":
            head = full.copy()
            head.body = b""
            head.declared_size = 0
            self._record(at_time, path, 200)
            return head
        self.full_response_count += 1
        self._record(at_time, path, 200)
        return full

    # -- conditionals -----------------------------------------------------------
    def _try_not_modified(self, request: Request,
                          full: Response) -> Response | None:
        etag_raw = full.headers.get("ETag")
        inm = request.headers.get("If-None-Match")
        if inm is not None and etag_raw is not None:
            try:
                current = parse_etag(etag_raw)
                if if_none_match_matches(inm, current):
                    return self._not_modified(full)
            except ValueError:
                pass  # malformed condition: ignore it, serve full
            return None  # INM present but mismatched: serve full response
        ims = request.headers.get("If-Modified-Since")
        if ims is not None:
            last_modified = full.headers.get("Last-Modified")
            if last_modified is not None:
                try:
                    if parse_http_date(last_modified) <= parse_http_date(ims):
                        return self._not_modified(full)
                except ValueError:
                    pass
        return None

    @staticmethod
    def _not_modified(full: Response) -> Response:
        headers = Headers()
        for name in _304_HEADERS:
            value = full.headers.get(name)
            if value is not None:
                headers.set(name, value)
        return Response(status=304, headers=headers, body=b"",
                        declared_size=0)

    # -- diagnostics -------------------------------------------------------------
    def _record(self, at_time: float, path: str, status: int) -> None:
        self._history.append((at_time, path, status))

    @property
    def history(self) -> list[tuple[float, str, int]]:
        """(time, path, status) per request, in arrival order."""
        return list(self._history)

    def reset_stats(self) -> None:
        self.not_modified_count = 0
        self.full_response_count = 0
        self._history.clear()
