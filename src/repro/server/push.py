"""HTTP/2-style Server Push policies (comparison baseline, paper §5).

Server Push sends subresources before the client asks.  The paper's
criticism: the server cannot know what the client has cached, so pushing
"all" wastes bandwidth on already-cached or unneeded bytes, and pushed
resources still consume client downlink that competes with what the page
actually needs.

The policy objects answer "which resources should ride along with this
HTML response"; the browser engine charges their bytes to the downlink
and skips requesting them (they arrive push-style, zero request RTT).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..html.parser import extract_resources, is_same_origin, parse_html
from .site import OriginSite

__all__ = ["PushPolicy", "PushPlanner"]


class PushPolicy(enum.Enum):
    """Which subresources to push with the base HTML."""

    #: push every same-origin subresource visible in the DOM
    ALL = "all"
    #: push only render-blocking resources (stylesheets, sync scripts)
    BLOCKING = "blocking"
    #: push nothing (degenerates to the plain baseline)
    NONE = "none"


@dataclass
class PushPlanner:
    """Computes the push set for an HTML response."""

    site: OriginSite
    policy: PushPolicy = PushPolicy.ALL

    def push_urls(self, markup: str) -> list[str]:
        """Same-origin subresource URLs to push, in document order.

        Note what is *missing* by construction: the server has no idea
        which of these the client already has — that blindness is the
        waste the paper contrasts CacheCatalyst against.
        """
        if self.policy is PushPolicy.NONE:
            return []
        refs = extract_resources(parse_html(markup), base_url="")
        urls = []
        for ref in refs:
            if not is_same_origin(self.site.origin, ref.url):
                continue  # cannot securely push other origins (§5)
            if self.policy is PushPolicy.BLOCKING and not ref.blocking:
                continue
            if self.site.resource_spec(ref.url) is None:
                continue
            urls.append(ref.url)
        return urls
