"""Materializing a :class:`~repro.workload.sitegen.SiteSpec` into servable
content.

The :class:`OriginSite` answers "what are the bytes, ETag and headers of
URL *u* at simulated time *t*?"  Content versions come from the resource's
seeded churn process, so the same site queried at the same time always
serves identical representations — across processes and runs.

The simulated epoch maps to an absolute wall epoch (:data:`WALL_EPOCH`)
for ``Date``/``Last-Modified``/``Expires`` headers, which keeps the HTTP
cache arithmetic real rather than mocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..html.parser import ResourceKind
from ..http.dates import format_http_date
from ..http.etag import etag_for_content
from ..http.headers import Headers
from ..http.messages import Response
from ..workload.churn import ResourceChurn
from ..workload.sitegen import (PageSpec, ResourceSpec, SiteSpec,
                                render_html, render_resource_body)

__all__ = ["OriginSite", "WALL_EPOCH", "CONTENT_TYPES"]

#: Simulated t=0 corresponds to this wall-clock epoch (2024-01-01T00:00Z),
#: the era of the paper's measurements.
WALL_EPOCH = 1704067200.0

CONTENT_TYPES: dict[ResourceKind, str] = {
    ResourceKind.STYLESHEET: "text/css; charset=utf-8",
    ResourceKind.SCRIPT: "application/javascript",
    ResourceKind.IMAGE: "image/png",
    ResourceKind.FONT: "font/woff2",
    ResourceKind.MEDIA: "video/mp4",
    ResourceKind.FETCH: "application/json",
    ResourceKind.IFRAME: "text/html; charset=utf-8",
    ResourceKind.OTHER: "application/octet-stream",
}

HTML_CONTENT_TYPE = "text/html; charset=utf-8"


@dataclass
class OriginSite:
    """Serves one synthetic site's content as HTTP responses.

    ``materialize_fully`` pads stand-in bodies to their declared size —
    required on the real-socket path, wasteful in the DES.
    """

    spec: SiteSpec
    materialize_fully: bool = False
    _churns: dict[str, ResourceChurn] = field(default_factory=dict)
    _html_churns: dict[str, ResourceChurn] = field(default_factory=dict)
    #: requests served per URL (diagnostics)
    request_counts: dict[str, int] = field(default_factory=dict)
    #: (url, version) -> opaque ETag; content is deterministic per
    #: version, so tags are computed once — exactly the memoization a
    #: production stapling server needs to keep per-request cost flat
    _etag_memo: dict[tuple[str, int], str] = field(default_factory=dict)
    #: (url, version) -> encoded base-HTML body; rendering the markup is
    #: the priciest part of a document response and versions churn far
    #: more slowly than requests arrive
    _html_body_memo: dict[tuple[str, int], bytes] = field(
        default_factory=dict, repr=False)
    #: url -> ResourceSpec index; the SiteSpec is immutable, so the
    #: per-request page scan in :meth:`resource_spec` collapses to one
    #: dict lookup after first use
    _spec_index: Optional[dict[str, ResourceSpec]] = field(default=None,
                                                           repr=False)

    # -- version / etag oracle ------------------------------------------------
    def _churn_for(self, spec: ResourceSpec) -> ResourceChurn:
        churn = self._churns.get(spec.url)
        if churn is None:
            churn = spec.make_churn()
            self._churns[spec.url] = churn
        return churn

    def _html_churn_for(self, page: PageSpec) -> ResourceChurn:
        churn = self._html_churns.get(page.url)
        if churn is None:
            churn = page.make_html_churn()
            self._html_churns[page.url] = churn
        return churn

    def resource_spec(self, url: str) -> Optional[ResourceSpec]:
        if self._spec_index is None:
            index: dict[str, ResourceSpec] = {}
            for page in self.spec.pages.values():
                for resource_url, spec in page.resources.items():
                    index.setdefault(resource_url, spec)
            self._spec_index = index
        return self._spec_index.get(url)

    def page_spec(self, url: str) -> Optional[PageSpec]:
        return self.spec.pages.get(url)

    def version_of(self, url: str, at_time: float) -> Optional[int]:
        """Current content version of ``url`` (None if unknown URL)."""
        page = self.page_spec(url)
        if page is not None:
            return self._html_churn_for(page).version_at(at_time)
        spec = self.resource_spec(url)
        if spec is None:
            return None
        if spec.dynamic:
            # Personalised response: new representation on every request.
            count = self.request_counts.get(url, 0)
            return count
        return self._churn_for(spec).version_at(at_time)

    def last_modified_of(self, url: str, at_time: float) -> float:
        page = self.page_spec(url)
        churn: Optional[ResourceChurn]
        if page is not None:
            churn = self._html_churn_for(page)
        else:
            spec = self.resource_spec(url)
            churn = self._churn_for(spec) if spec else None
        if churn is None:
            return WALL_EPOCH
        return WALL_EPOCH + churn.last_change_at(at_time)

    # -- response construction ---------------------------------------------------
    def respond(self, url: str, at_time: float) -> Response:
        """Build the 200 response for ``url`` at simulated time ``at_time``.

        Unknown URLs get a 404.  Conditional handling (304) lives in
        :mod:`repro.server.static`, which calls this for the current
        representation.
        """
        page = self.page_spec(url)
        if page is not None:
            return self._respond_page(page, at_time)
        spec = self.resource_spec(url)
        if spec is not None:
            return self._respond_resource(spec, at_time)
        return Response(status=404, body=b"not found",
                        headers=Headers({"Content-Type": "text/plain"}))

    def _respond_page(self, page: PageSpec, at_time: float) -> Response:
        version = self._html_churn_for(page).version_at(at_time)
        memo_key = (page.url, version)
        body = self._html_body_memo.get(memo_key)
        if body is None:
            body = render_html(page, version).encode()
            self._html_body_memo[memo_key] = body
        headers = self._common_headers(page.url, at_time, HTML_CONTENT_TYPE,
                                       body)
        # Base documents ship no-cache in the wild and in the paper's
        # examples: always revalidated, never trusted from cache.
        headers.set("Cache-Control", "no-cache")
        self._count(page.url)
        return Response(status=200, headers=headers, body=body)

    def _respond_resource(self, spec: ResourceSpec,
                          at_time: float) -> Response:
        version = self.version_of(spec.url, at_time)
        body, wire_size = render_resource_body(
            spec, version, materialize_fully=self.materialize_fully)
        headers = self._common_headers(spec.url, at_time,
                                       CONTENT_TYPES[spec.kind], body)
        spec.policy.apply(headers)
        self._count(spec.url)
        declared = None if self.materialize_fully or wire_size == len(body) \
            else wire_size
        return Response(status=200, headers=headers, body=body,
                        declared_size=declared)

    def _common_headers(self, url: str, at_time: float, content_type: str,
                        body: bytes) -> Headers:
        headers = Headers()
        headers.set("Date", format_http_date(WALL_EPOCH + at_time))
        headers.set("Content-Type", content_type)
        headers.set("ETag", str(etag_for_content(body)))
        last_modified = self.last_modified_of(url, at_time)
        headers.set("Last-Modified", format_http_date(last_modified))
        headers.set("Server", "repro-origin")
        return headers

    def _count(self, url: str) -> None:
        self.request_counts[url] = self.request_counts.get(url, 0) + 1

    def note_request(self, url: str) -> None:
        """Count a request served from a layer above (e.g. a render cache).

        The Catalyst hot-path cache answers repeat document requests
        without calling :meth:`respond`; diagnostics (and dynamic-resource
        versioning) still need the request recorded.
        """
        self._count(url)

    # -- oracle used by experiments ---------------------------------------------
    def etag_of(self, url: str, at_time: float) -> Optional[str]:
        """Current ETag opaque value without counting a request."""
        page = self.page_spec(url)
        if page is not None:
            version = self._html_churn_for(page).version_at(at_time)
            memo_key = (url, version)
            cached = self._etag_memo.get(memo_key)
            if cached is None:
                body = render_html(page, version).encode()
                cached = etag_for_content(body).opaque
                self._etag_memo[memo_key] = cached
            return cached
        spec = self.resource_spec(url)
        if spec is None:
            return None
        if spec.dynamic:
            return None  # changes per request; has no stable current tag
        version = self._churn_for(spec).version_at(at_time)
        memo_key = (url, version)
        cached = self._etag_memo.get(memo_key)
        if cached is None:
            body, _ = render_resource_body(spec, version)
            cached = etag_for_content(body).opaque
            self._etag_memo[memo_key] = cached
        return cached

    def changed_between(self, url: str, t0: float, t1: float) -> bool:
        """Whether a (non-dynamic) resource's content changed in (t0, t1]."""
        spec = self.resource_spec(url)
        if spec is None:
            page = self.page_spec(url)
            if page is None:
                raise KeyError(url)
            return self._html_churn_for(page).changed_between(t0, t1)
        if spec.dynamic:
            return True
        return self._churn_for(spec).changed_between(t0, t1)

    @property
    def origin(self) -> str:
        return self.spec.origin

    def absolute_url(self, path: str) -> str:
        return self.spec.origin + path

    def all_urls(self) -> list[str]:
        urls: list[str] = []
        for page_url, page in self.spec.pages.items():
            urls.append(page_url)
            urls.extend(page.resources)
        return urls
