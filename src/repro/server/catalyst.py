"""The CacheCatalyst origin server (the paper's modified Caddy).

On every base-HTML response the server:

1. renders the current document,
2. injects the Service-Worker registration snippet (§3),
3. traverses the DOM and collects same-origin subresource links —
   optionally following stylesheets one level for their ``url()``
   references ("parsing HTML and CSS files", §3),
4. staples the current ETag of every collected resource into the
   ``X-Etag-Config`` response header, and
5. answers conditional requests with 304s that *still carry the map*,
   because a revisit whose HTML is unchanged needs fresh tokens most of
   all.

Stylesheet responses likewise carry a map for their own references, so
CSS-discovered images/fonts get tokens even when the stylesheet itself
had to be re-fetched.

Two §6 future-work items are implemented behind flags:
- ``use_sessions``: per-client recording of first-visit resource URLs so
  JS-discovered resources get stapled tokens on later visits,
- ``third_party_oracle``: a hook through which the origin can learn (and
  staple) ETags of cross-origin resources it proactively fetched.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.etag_config import (DEFAULT_MAX_ENTRIES,
                                DEFAULT_MAX_HEADER_BYTES,
                                ETAG_CONFIG_DIGEST_HEADER,
                                ETAG_CONFIG_SAME_HEADER, EtagConfig)
from ..html.parser import (ResourceKind, ResourceRef, extract_resources,
                           is_same_origin, parse_html)
from ..html.css import extract_css_refs
from ..html.rewrite import CACHE_SW_PATH, inject_sw_registration
from ..http.dates import format_http_date
from ..http.etag import ETag, etag_for_content
from ..http.headers import Headers
from ..http.messages import Request, Response
from ..obs.trace import NULL_TRACER
from ..perf import PerfCounters
from .site import OriginSite, WALL_EPOCH
from .static import StaticServer
from .sessions import SessionRecorder

__all__ = ["CatalystConfig", "CatalystServer", "SERVICE_WORKER_JS"]

logger = logging.getLogger(__name__)

#: The client-side Service Worker source served at CACHE_SW_PATH.  The DES
#: browser model implements the same logic natively
#: (:mod:`repro.browser.sw_host`); this artifact is what a real browser
#: would execute, and the integration tests serve it for fidelity.
SERVICE_WORKER_JS = r"""
// CacheCatalyst service worker (reproduction).
// Serves cached responses when the X-Etag-Config map says they are
// current; forwards to network otherwise and refreshes the cache.
const CACHE = 'cache-catalyst-v1';
let etagConfig = {};

self.addEventListener('install', e => self.skipWaiting());
self.addEventListener('activate', e => e.waitUntil(clients.claim()));

async function handle(request) {
  const url = new URL(request.url).pathname;
  const cache = await caches.open(CACHE);
  const expected = etagConfig[url];
  if (expected) {
    const cached = await cache.match(request);
    if (cached) {
      const tag = (cached.headers.get('ETag') || '').replace(/W\//, '')
        .replace(/"/g, '');
      if (tag === expected) return cached;  // zero RTTs
    }
  }
  const response = await fetch(request);
  const cc = response.headers.get('Cache-Control') || '';
  const config = response.headers.get('X-Etag-Config');
  if (config) { try { etagConfig = JSON.parse(config); } catch (e) {} }
  if (request.method === 'GET' && response.ok && !cc.includes('no-store')) {
    cache.put(request, response.clone());
  }
  return response;
}

self.addEventListener('fetch', e => e.respondWith(handle(e.request)));
"""


@dataclass(frozen=True)
class CatalystConfig:
    """Server-side knobs (each is an ablation axis)."""

    #: follow stylesheet url()/@import references one level
    include_css_transitive: bool = True
    #: inject the SW registration snippet into served HTML
    inject_sw: bool = True
    #: cap on stapled entries (header-size guard)
    max_entries: int = DEFAULT_MAX_ENTRIES
    #: record per-session fetched URLs and staple them on revisits (§6)
    use_sessions: bool = False
    #: cap on distinct sessions kept in memory (the §6 footprint concern)
    max_sessions: int = 10_000
    #: honour X-Etag-Config-Digest: answer with a tiny "-Same" header
    #: instead of re-sending an identical map (this repo's extension)
    use_map_digest: bool = False
    #: serve the page *without* the map when map construction fails,
    #: instead of surfacing a 500 — stapling is an optimisation and its
    #: failure must never take the page down
    fail_open: bool = True
    #: byte cap on the emitted map header (oversized maps are omitted)
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES
    #: content-addressed hot-path caches (render / parse-ref / ETag map).
    #: Responses are byte-identical either way; the flag exists so the
    #: bench can measure the uncached seed path and tests can diff the two.
    hot_path_cache: bool = True
    #: entry cap per hot-path cache (FIFO eviction; bounds a long-lived
    #: server under heavy version churn)
    max_cache_entries: int = 4096
    #: emit an RFC 9211-style ``Cache-Status`` response header on page
    #: responses naming each hot-path cache's verdict (``repro-render;
    #: hit`` / ``fwd=miss``, ``repro-map; hit`` / ``fwd=miss;
    #: detail=build``, plus ``repro-origin; hit; detail=revalidated`` on
    #: 304s).  Default off: the header changes response bytes, and the
    #: DES paths pin cached-vs-uncached byte identity — the asyncio
    #: serving tier (fleet / ``repro serve``) turns it on.
    emit_cache_status: bool = False


class CatalystServer:
    """Drop-in replacement for :class:`StaticServer` with stapling.

    The request hot path is content-addressed: everything that depends
    only on *content versions* (not on the clock or the client) is
    computed once per version and reused until the churn model moves a
    version forward.

    - **render cache** ``(path, document_version)`` → SW-injected body +
      its precomputed ETag header set; injection and hashing happen once
      per document version instead of once per request.
    - **parse/ref cache** ``(path, document_version)`` → extracted
      :class:`ResourceRef` list; the DOM parse happens once per version.
    - **ETag-map cache** ``(scope, version-vector)`` → session-independent
      :class:`EtagConfig`; invalidated implicitly because the key embeds
      ``site.version_of`` for every candidate URL, so a churn bump on any
      stapled resource changes the key.  Per-client session entries are
      merged *on top* of the cached map per request, so responses stay
      byte-identical to the uncached path.
    """

    def __init__(self, site: OriginSite,
                 config: CatalystConfig = CatalystConfig(),
                 third_party_oracle: Optional[
                     Callable[[str, float], Optional[str]]] = None):
        self.site = site
        self.config = config
        self.static = StaticServer(site)
        self.sessions = SessionRecorder(max_sessions=config.max_sessions) \
            if config.use_sessions else None
        self.third_party_oracle = third_party_oracle
        #: total bytes of X-Etag-Config emitted (overhead accounting)
        self.config_bytes_emitted = 0
        #: times map construction raised and the server failed open
        self.map_build_failures = 0
        #: times SW injection raised and the server served unmodified HTML
        self.injection_failures = 0
        #: entries stapled per HTML response (overhead accounting)
        self.config_entry_counts: list[int] = []
        #: (css_url, version) -> child URLs; stylesheets are parsed once
        #: per content version, not once per HTML request.  Negative
        #: results (failed peek, non-200) memoize as [] under the same key.
        self._css_children_memo: dict[tuple[str, int], list[str]] = {}
        #: (path, document_version) -> rendered entry (body + headers)
        self._render_cache: dict[tuple[str, int], _RenderEntry] = {}
        #: (path, document_version) -> extracted ResourceRef list
        self._ref_cache: dict[tuple[str, int], list[ResourceRef]] = {}
        #: (scope, version-vector) -> session-independent EtagConfig
        self._map_cache: dict[tuple, EtagConfig] = {}
        #: hot-path counters + wall-clock handle latency (repro.perf)
        self.perf = PerfCounters()
        #: rebound by a traced run; NULL_TRACER keeps the hot path clean
        self.tracer = NULL_TRACER

    # -- request entry point ----------------------------------------------------
    def handle(self, request: Request, at_time: float) -> Response:
        if self.tracer.enabled:
            return self._handle_traced(request, at_time)
        start_ns = time.perf_counter_ns()
        try:
            return self._dispatch(request, at_time)
        finally:
            self.perf.record_handle_ns(time.perf_counter_ns() - start_ns)

    def _handle_traced(self, request: Request, at_time: float) -> Response:
        """The traced twin of :meth:`handle`.

        Emits one ``server.handle`` span per request, annotated with the
        hot-path cache verdicts derived from :class:`PerfCounters`
        deltas — the counters stay the single source of truth, the span
        just reads them.  Separated out so the untraced path stays
        byte-for-byte what the bench gate measures.
        """
        tracer = self.tracer
        span = tracer.begin("server.handle", "server",
                            parent=tracer.current_parent,
                            args={"path": request.path}, at=at_time)
        perf = self.perf
        before = (perf.render_hits, perf.render_misses,
                  perf.map_hits, perf.map_builds)
        start_ns = time.perf_counter_ns()
        try:
            response = self._dispatch(request, at_time)
        except BaseException as exc:
            span.set("error", type(exc).__name__).end(at=at_time)
            raise
        finally:
            wall_ns = time.perf_counter_ns() - start_ns
            perf.record_handle_ns(wall_ns)
        render = ("hit" if perf.render_hits > before[0]
                  else "miss" if perf.render_misses > before[1] else "n/a")
        etag_map = ("hit" if perf.map_hits > before[2]
                    else "build" if perf.map_builds > before[3] else "n/a")
        span.annotate(status=response.status, render=render,
                      etag_map=etag_map, wall_ns=wall_ns).end(at=at_time)
        return response

    def _dispatch(self, request: Request, at_time: float) -> Response:
        path = request.path
        if path == CACHE_SW_PATH:
            return self._serve_sw()
        session_id = request.headers.get("X-Client-Id")
        page = self.site.page_spec(path)
        if page is None:
            response = self.static.handle(request, at_time)
            self._maybe_attach_css_config(path, response, at_time)
            if self.sessions is not None and session_id:
                self.sessions.record(session_id, path)
            return response
        return self._handle_page(request, path, session_id, at_time)

    def _handle_page(self, request: Request, path: str,
                     session_id: Optional[str], at_time: float) -> Response:
        caching = self.config.hot_path_cache
        doc_version: Optional[int] = \
            self.site.version_of(path, at_time) if caching else None
        render_verdict = "bypass" if not caching else "miss"
        full = None
        if caching and doc_version is not None:
            entry = self._render_cache.get((path, doc_version))
            if entry is not None:
                self.perf.render_hits += 1
                render_verdict = "hit"
                full = entry.response_at(at_time)
                self.site.note_request(path)
        if full is None:
            if caching:
                self.perf.render_misses += 1
            full = self.site.respond(path, at_time)
            if full.status != 200:
                return full
            self._inject_into(full, path)
            if caching and doc_version is not None:
                self._render_cache[(path, doc_version)] = _RenderEntry(
                    body=full.body, headers=full.headers.copy())
                self._trim(self._render_cache)
        map_hits_before = self.perf.map_hits
        try:
            body = full.body
            config = self._build_config_for_html(
                lambda: body.decode(), at_time, path=path,
                doc_version=doc_version)
            if self.sessions is not None and session_id:
                # A base-HTML request marks a new visit: promote the
                # previous visit's recording, then staple tokens for
                # everything in it.  The merge builds a *new* map, so the
                # cached session-independent one is never polluted.
                self.sessions.begin_visit(session_id)
                recorded = self.sessions.urls_for(session_id)
                config = config.merged_with(
                    self._config_for_urls(recorded, at_time))
        except Exception:
            # Fail open: the map is an optimisation.  A page served
            # without it revalidates conditionally — a page not served
            # at all is an outage.
            if not self.config.fail_open:
                raise
            self.map_build_failures += 1
            logger.warning("X-Etag-Config construction failed for %s; "
                           "serving page without map", path, exc_info=True)
            response = self.static.finalize(request, full, at_time)
            self._stamp_cache_status(response, render_verdict, "error")
            return response
        map_verdict = "hit" if self.perf.map_hits > map_hits_before \
            else "miss"
        response = self.static.finalize(request, full, at_time)
        self._stamp_cache_status(response, render_verdict, map_verdict)
        if self.config.use_map_digest:
            client_digest = request.headers.get(ETAG_CONFIG_DIGEST_HEADER)
            digest = config.digest()
            if client_digest == digest:
                response.headers.set(ETAG_CONFIG_SAME_HEADER, digest)
                self.config_entry_counts.append(len(config))
                self.config_bytes_emitted += len(
                    ETAG_CONFIG_SAME_HEADER) + len(digest) + 4
                return response
        if config.apply_to(response.headers,
                           max_header_bytes=self.config.max_header_bytes):
            self.config_bytes_emitted += config.header_size()
        self.config_entry_counts.append(len(config))
        return response

    def _stamp_cache_status(self, response: Response, render: str,
                            etag_map: str) -> None:
        """RFC 9211-style ``Cache-Status`` naming each hot-path verdict.

        One list member per cache, most-internal first: ``repro-render``
        (the injected-body render cache), ``repro-map`` (the ETag-map
        cache), and — when the conditional path answered 304 —
        ``repro-origin; hit; detail=revalidated``.  Gated on
        ``emit_cache_status`` so DES byte-identity invariants hold.
        """
        if not self.config.emit_cache_status:
            return
        members = []
        for cache, verdict in (("repro-render", render),
                               ("repro-map", etag_map)):
            if verdict == "hit":
                members.append(f"{cache}; hit")
            elif verdict == "bypass":
                members.append(f"{cache}; fwd=bypass")
            elif verdict == "error":
                members.append(f"{cache}; fwd=miss; detail=error")
            else:
                members.append(f"{cache}; fwd=miss"
                               + ("; detail=build"
                                  if cache == "repro-map" else ""))
        if response.status == 304:
            members.append("repro-origin; hit; detail=revalidated")
        response.headers.set("Cache-Status", ", ".join(members))

    def _serve_sw(self) -> Response:
        body = SERVICE_WORKER_JS.encode()
        headers = Headers({
            "Content-Type": "application/javascript",
            "Cache-Control": "max-age=86400",
            "ETag": str(etag_for_content(body)),
        })
        return Response(status=200, headers=headers, body=body)

    # -- config construction -------------------------------------------------
    def _build_config_for_html(self, markup, at_time: float,
                               path: Optional[str] = None,
                               doc_version: Optional[int] = None
                               ) -> EtagConfig:
        """Build (or fetch from cache) the map for one document version.

        ``markup`` may be the document text or a zero-arg callable
        returning it — the callable is only invoked on a parse/ref-cache
        miss, so render-cache hits never pay the decode.
        """
        refs = self._refs_for_document(markup, path, doc_version)
        urls: list[str] = []
        for ref in refs:
            if not is_same_origin(self.site.origin, ref.url):
                if self.third_party_oracle is None:
                    continue  # cross-origin not covered (paper §6)
            urls.append(ref.url)
            if self.config.include_css_transitive \
                    and ref.kind is ResourceKind.STYLESHEET:
                urls.extend(self._css_children(ref.url, at_time))
        # Blocking resources first: if the entry cap bites, keep the
        # entries whose saved RTTs matter most for PLT.
        blocking_urls = {ref.url for ref in refs if ref.blocking}
        urls.sort(key=lambda u: (u not in blocking_urls))
        return self._cached_config(("doc", path, doc_version), urls,
                                   at_time)

    def _refs_for_document(self, markup, path: Optional[str],
                           doc_version: Optional[int]) -> list[ResourceRef]:
        cacheable = (self.config.hot_path_cache and path is not None
                     and doc_version is not None)
        if cacheable:
            cached = self._ref_cache.get((path, doc_version))
            if cached is not None:
                self.perf.ref_hits += 1
                return cached
            self.perf.ref_misses += 1
        text = markup() if callable(markup) else markup
        self.perf.html_parses += 1
        refs = extract_resources(parse_html(text), base_url="")
        if cacheable:
            self._ref_cache[(path, doc_version)] = refs
            self._trim(self._ref_cache)
        return refs

    def _cached_config(self, scope: tuple, urls: list[str],
                       at_time: float) -> EtagConfig:
        """Version-keyed cache around :meth:`_config_for_urls`.

        The key embeds ``site.version_of`` for every candidate URL, so
        any churn bump on a stapled resource changes the key and the
        stale map is never served.  Bypassed when a third-party oracle is
        configured (its answers may be time-dependent) and when there is
        no version context to key on.
        """
        cacheable = (self.config.hot_path_cache
                     and self.third_party_oracle is None
                     and scope[-1] is not None)
        if cacheable:
            key = scope + (self._version_signature(urls, at_time),)
            cached = self._map_cache.get(key)
            if cached is not None:
                self.perf.map_hits += 1
                return cached
        self.perf.map_builds += 1
        config = self._config_for_urls(urls, at_time)
        if cacheable:
            self._map_cache[key] = config
            self._trim(self._map_cache)
        return config

    def _version_signature(self, urls: list[str],
                           at_time: float) -> tuple[int, ...]:
        """Current content-version vector of ``urls`` (the cache key).

        Dynamic resources version per *request* but never yield a stable
        tag (they are always excluded from the map), so they contribute a
        constant instead of thrashing the key.
        """
        signature: list[int] = []
        for url in urls:
            spec = self.site.resource_spec(url)
            if spec is not None and spec.dynamic:
                signature.append(-2)
                continue
            version = self.site.version_of(url, at_time)
            signature.append(-1 if version is None else version)
        return tuple(signature)

    def _css_children(self, css_url: str, at_time: float) -> list[str]:
        spec = self.site.resource_spec(css_url)
        if spec is None or spec.kind is not ResourceKind.STYLESHEET:
            return []
        version = self.site.version_of(css_url, at_time)
        memo_key = (css_url, version if version is not None else -1)
        cached = self._css_children_memo.get(memo_key)
        if cached is not None:
            return cached
        response = self._peek(css_url, at_time)
        if response is None or response.status != 200:
            # Memoize the negative result too: without it a failed peek
            # re-ran the render + decode on every later document request.
            self._css_children_memo[memo_key] = []
            return []
        self.perf.css_parses += 1
        children = [ref.url
                    for ref in extract_css_refs(response.body.decode())]
        self._css_children_memo[memo_key] = children
        return children

    def _config_for_urls(self, urls: list[str],
                         at_time: float) -> EtagConfig:
        pairs: list[tuple[str, ETag]] = []
        seen: set[str] = set()
        for url in urls:
            if url in seen:
                continue
            seen.add(url)
            if is_same_origin(self.site.origin, url):
                opaque = self.site.etag_of(url, at_time)
            elif self.third_party_oracle is not None:
                opaque = self.third_party_oracle(url, at_time)
            else:
                opaque = None
            if opaque is None:
                continue  # dynamic or unknown: cannot promise a tag
            pairs.append((url, ETag(opaque=opaque)))
        return EtagConfig.from_pairs(pairs,
                                     max_entries=self.config.max_entries)

    def _maybe_attach_css_config(self, path: str, response: Response,
                                 at_time: float) -> None:
        if response.status not in (200, 304):
            return
        spec = self.site.resource_spec(path)
        if spec is None or spec.kind is not ResourceKind.STYLESHEET:
            return
        if not self.config.include_css_transitive:
            return
        try:
            children = self._css_children(path, at_time)
            if not children:
                return
            version = self.site.version_of(path, at_time)
            config = self._cached_config(("css", path, version), children,
                                         at_time)
        except Exception:
            if not self.config.fail_open:
                raise
            self.map_build_failures += 1
            logger.warning("X-Etag-Config construction failed for "
                           "stylesheet %s; serving without map", path,
                           exc_info=True)
            return
        if config.apply_to(response.headers,
                           max_header_bytes=self.config.max_header_bytes):
            self.config_bytes_emitted += config.header_size()

    def _peek(self, url: str, at_time: float) -> Optional[Response]:
        """Render a resource without counting a request (server-internal)."""
        spec = self.site.resource_spec(url)
        if spec is None:
            return None
        counts = dict(self.site.request_counts)
        response = self.site.respond(url, at_time)
        self.site.request_counts.clear()
        self.site.request_counts.update(counts)
        return response

    # -- hot-path cache plumbing ---------------------------------------------
    def _inject_into(self, full: Response, path: str) -> None:
        """Apply SW-registration injection + re-hash, failing open.

        Folded into render-cache population so a later map-build failure
        neither re-pays nor double-applies injection; an injection
        failure itself (e.g. undecodable body) degrades to serving the
        unmodified document instead of a 500.
        """
        if not self.config.inject_sw:
            return
        try:
            markup = inject_sw_registration(full.body.decode())
            full.body = markup.encode()
            full.headers.set("ETag", str(etag_for_content(full.body)))
        except Exception:
            if not self.config.fail_open:
                raise
            self.injection_failures += 1
            logger.warning("SW injection failed for %s; serving "
                           "unmodified document", path, exc_info=True)

    def _trim(self, cache: dict) -> None:
        while len(cache) > self.config.max_cache_entries:
            cache.pop(next(iter(cache)))  # FIFO: oldest version first

    def stats(self) -> dict:
        """Server-side counters, including the hot-path perf snapshot."""
        stats = self.perf.snapshot()
        stats.update({
            "config_bytes_emitted": self.config_bytes_emitted,
            "maps_stapled": len(self.config_entry_counts),
            "map_build_failures": self.map_build_failures,
            "injection_failures": self.injection_failures,
            "render_cache_size": len(self._render_cache),
            "ref_cache_size": len(self._ref_cache),
            "map_cache_size": len(self._map_cache),
            "css_memo_size": len(self._css_children_memo),
        })
        return stats


@dataclass
class _RenderEntry:
    """One cached document rendering: injected body + final header set.

    Headers are stored post-injection so field *order* matches the
    uncached path exactly (``set("ETag", ...)`` moves the field to the
    end); only ``Date`` varies per request and is rewritten in place.
    """

    body: bytes
    headers: Headers

    def response_at(self, at_time: float) -> Response:
        headers = self.headers.copy()
        headers.replace("Date", format_http_date(WALL_EPOCH + at_time))
        return Response(status=200, headers=headers, body=self.body)
