"""Per-session resource recording (paper §3 alternative / §6 future work).

"A different solution entails the server capturing a list of resource
URLs that the client requests during a user's first visit to a webpage...
When the user returns ... the server includes validation tokens for the
previously listed resources along with the primary HTML file."

This covers JS-discovered and user-specific resources that static DOM/CSS
parsing cannot see.  The §6 concern — "potentially incurs a significant
memory footprint" — is handled with an LRU cap on sessions and a cap on
URLs per session.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["SessionRecorder"]


class SessionRecorder:
    """Records the URL set each session fetched during its last visit."""

    def __init__(self, max_sessions: int = 10_000,
                 max_urls_per_session: int = 512):
        if max_sessions < 1 or max_urls_per_session < 1:
            raise ValueError("caps must be positive")
        self.max_sessions = max_sessions
        self.max_urls_per_session = max_urls_per_session
        # session id -> (completed visit URLs, in-progress visit URLs)
        self._sessions: OrderedDict[str, tuple[list[str], list[str]]] = \
            OrderedDict()
        self.evicted_sessions = 0

    def begin_visit(self, session_id: str) -> None:
        """Mark a new visit: the previous visit's recording becomes the
        stapling source; recording starts fresh."""
        completed, in_progress = self._sessions.get(session_id, ([], []))
        merged = self._merge(completed, in_progress)
        self._sessions[session_id] = (merged, [])
        self._sessions.move_to_end(session_id)
        self._evict()

    def record(self, session_id: str, url: str) -> None:
        """Record one resource fetch for the session's current visit."""
        completed, in_progress = self._sessions.setdefault(
            session_id, ([], []))
        if url not in in_progress \
                and len(in_progress) < self.max_urls_per_session:
            in_progress.append(url)
        self._sessions.move_to_end(session_id)
        self._evict()

    def urls_for(self, session_id: str) -> list[str]:
        """URLs to staple for this session (from *completed* visits).

        The in-progress list is excluded: mid-visit the server cannot yet
        know the full set, and stapling half a set is still correct (the
        map is advisory, never authoritative).
        """
        completed, _ = self._sessions.get(session_id, ([], []))
        return list(completed)

    def _merge(self, completed: list[str],
               in_progress: list[str]) -> list[str]:
        merged = list(completed)
        for url in in_progress:
            if url not in merged:
                merged.append(url)
        return merged[-self.max_urls_per_session:]

    def _evict(self) -> None:
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.evicted_sessions += 1

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def memory_footprint_bytes(self) -> int:
        """Rough accounting for the §6 footprint discussion."""
        total = 0
        for session_id, (completed, in_progress) in self._sessions.items():
            total += len(session_id)
            total += sum(len(u) for u in completed)
            total += sum(len(u) for u in in_progress)
        return total
