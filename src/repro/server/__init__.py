"""Origin-server substrate: site materialization, static + Catalyst servers."""

from .adapter import TimedHandler, as_async_handler
from .catalyst import (SERVICE_WORKER_JS, CatalystConfig, CatalystServer)
from .hints import HintPlanner
from .push import PushPlanner, PushPolicy
from .sessions import SessionRecorder
from .site import CONTENT_TYPES, WALL_EPOCH, OriginSite
from .static import StaticServer

__all__ = [
    "OriginSite", "StaticServer",
    "CatalystServer", "CatalystConfig", "SERVICE_WORKER_JS",
    "SessionRecorder", "PushPlanner", "PushPolicy", "HintPlanner",
    "WALL_EPOCH", "CONTENT_TYPES",
    "as_async_handler", "TimedHandler",
]
