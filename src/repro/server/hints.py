"""Resource-hint planning (103 Early Hints / Vroom-style URL lists).

§5's third alternative: instead of pushing bytes, the server tells the
client *which URLs it will need* before the client's own dependency
resolution discovers them.  The client starts those fetches immediately
— saving discovery latency (the parse/execute delays before nested
resources are found) but, unlike CacheCatalyst, saving **no
revalidation round trips**: every hinted fetch still goes through
normal cache semantics.

The planner mirrors the Catalyst server's visibility: DOM-visible
resources plus (optionally) stylesheet children.  JS-discovered
resources stay invisible — the same static-analysis boundary §3
acknowledges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..html.css import extract_css_refs
from ..html.parser import (ResourceKind, extract_resources, is_same_origin,
                           parse_html)
from .site import OriginSite

__all__ = ["HintPlanner"]


@dataclass
class HintPlanner:
    """Computes the Early-Hints URL list for an HTML response."""

    site: OriginSite
    #: hint stylesheet children too (the server parsed the CSS anyway)
    include_css_children: bool = True
    #: Vroom-style offline profiling: the operator has recorded which
    #: URLs each script fetches in production, so JS-discovered resources
    #: get hinted too (this is what makes Vroom effective — and what
    #: requires the heavyweight offline pipeline the paper contrasts
    #: CacheCatalyst's simplicity against)
    include_profiled_js: bool = True

    def hint_urls(self, markup: str) -> list[str]:
        """Same-origin URLs to hint, document order, children last."""
        refs = extract_resources(parse_html(markup), base_url="")
        urls: list[str] = []
        seen: set[str] = set()

        def add(url: str) -> None:
            if url in seen:
                return
            if not is_same_origin(self.site.origin, url):
                return
            if self.site.resource_spec(url) is None:
                return
            seen.add(url)
            urls.append(url)

        for ref in refs:
            add(ref.url)
        if self.include_profiled_js:
            for ref in refs:
                if ref.kind is not ResourceKind.SCRIPT:
                    continue
                self._add_profiled_children(ref.url, add, depth=0)
        if self.include_css_children:
            for ref in refs:
                if ref.kind is not ResourceKind.STYLESHEET:
                    continue
                if self.site.resource_spec(ref.url) is None:
                    continue
                # peek at the stylesheet without counting a request; the
                # child set is version-stable, so time 0 is equivalent
                counts = dict(self.site.request_counts)
                response = self.site.respond(ref.url, 0.0)
                self.site.request_counts.clear()
                self.site.request_counts.update(counts)
                for child in extract_css_refs(
                        response.body.decode(errors="replace")):
                    add(child.url)
        return urls

    def _add_profiled_children(self, script_url: str, add, depth: int,
                               max_depth: int = 4) -> None:
        """Recursively hint a script's profiled fetch set.

        Dynamic (personalised) resources are skipped: the profile can
        record their URLs but prefetching them is useless — the response
        depends on the session.
        """
        if depth >= max_depth:
            return
        spec = self.site.resource_spec(script_url)
        if spec is None:
            return
        for child_url in spec.children:
            child = self.site.resource_spec(child_url)
            if child is None or child.dynamic:
                continue
            add(child_url)
            self._add_profiled_children(child_url, add, depth + 1)
