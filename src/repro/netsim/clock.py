"""Time utilities for the simulator.

Everything in the simulation is measured in *seconds* (floats).  These
helpers convert between human-friendly duration strings (used in experiment
configs and by the paper: "1 min", "1 h", "6 h", "1 d", "1 w") and seconds,
and format timeline output.
"""

from __future__ import annotations

import re

__all__ = [
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK",
    "parse_duration", "format_duration", "ms", "seconds_to_ms",
]

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

_UNITS = {
    "s": SECOND, "sec": SECOND, "second": SECOND, "seconds": SECOND,
    "m": MINUTE, "min": MINUTE, "minute": MINUTE, "minutes": MINUTE,
    "h": HOUR, "hr": HOUR, "hour": HOUR, "hours": HOUR,
    "d": DAY, "day": DAY, "days": DAY,
    "w": WEEK, "wk": WEEK, "week": WEEK, "weeks": WEEK,
    "ms": SECOND / 1000.0,
}

_DURATION_RE = re.compile(
    r"\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]+)\s*")


def parse_duration(text: str | float | int) -> float:
    """Parse a duration into seconds.

    Accepts a bare number (seconds) or strings like ``"1 min"``, ``"6h"``,
    ``"1 week"``, ``"250ms"``, and concatenations (``"1h 30min"``).

    >>> parse_duration("1 min")
    60.0
    >>> parse_duration("1h 30min")
    5400.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    total = 0.0
    pos = 0
    matched = False
    for match in _DURATION_RE.finditer(text):
        if match.start() != pos:
            raise ValueError(f"unparsable duration: {text!r}")
        unit = match.group("unit").lower()
        if unit not in _UNITS:
            raise ValueError(f"unknown duration unit {unit!r} in {text!r}")
        total += float(match.group("num")) * _UNITS[unit]
        pos = match.end()
        matched = True
    if not matched or pos != len(text):
        raise ValueError(f"unparsable duration: {text!r}")
    return total


def format_duration(seconds: float) -> str:
    """Format seconds as the largest clean unit (for report labels).

    >>> format_duration(3600.0)
    '1h'
    >>> format_duration(90.0)
    '1.5min'
    """
    for label, size in (("w", WEEK), ("d", DAY), ("h", HOUR), ("min", MINUTE)):
        if seconds >= size:
            qty = seconds / size
            if qty == int(qty):
                return f"{int(qty)}{label}"
            return f"{qty:g}{label}"
    if seconds >= 1:
        return f"{seconds:g}s"
    return f"{seconds * 1000:g}ms"


def ms(milliseconds: float) -> float:
    """Milliseconds -> seconds (reads nicely at call sites: ``ms(40)``)."""
    return milliseconds / 1000.0


def seconds_to_ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1000.0
