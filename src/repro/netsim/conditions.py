"""Named network profiles and the Figure 3 evaluation grid.

The paper evaluates under browser-throttled combinations of throughput and
latency; the text names 8 Mbps (bandwidth-bound) and 60 Mbps / 40 ms — the
median global 5G condition — as anchors, and notes improvement grows with
latency at fixed throughput.  The grid below spans those anchors.
"""

from __future__ import annotations

from .link import NetworkConditions

__all__ = [
    "PROFILES",
    "FIGURE3_THROUGHPUTS_MBPS",
    "FIGURE3_LATENCIES_MS",
    "figure3_grid",
    "profile",
]

#: Throughput axis of Figure 3, in Mbit/s.  16 Mbps is the knee found by
#: Sundaresan et al. (cited in the paper) past which latency dominates PLT.
FIGURE3_THROUGHPUTS_MBPS = (8.0, 16.0, 30.0, 60.0)

#: Latency axis of Figure 3 (round-trip, milliseconds).
FIGURE3_LATENCIES_MS = (10.0, 20.0, 40.0, 80.0, 100.0)

PROFILES: dict[str, NetworkConditions] = {
    # The paper's anchor: median global 5G access.
    "5g-median": NetworkConditions.of(60, 40, label="5g-median"),
    "4g": NetworkConditions.of(20, 60, label="4g"),
    "3g-fast": NetworkConditions.of(1.6, 150, label="3g-fast"),
    "dsl": NetworkConditions.of(8, 25, label="dsl"),
    "cable": NetworkConditions.of(30, 15, label="cable"),
    "fiber": NetworkConditions.of(100, 5, label="fiber"),
    "satellite": NetworkConditions.of(25, 600, label="satellite"),
    # Degenerate profiles for tests/analytics.
    "no-throttle": NetworkConditions.of(1e6, 0.0, label="no-throttle"),
}


def profile(name: str) -> NetworkConditions:
    """Look up a named profile.

    >>> profile("5g-median").rtt_ms
    40.0
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown network profile {name!r}; "
            f"known: {sorted(PROFILES)}") from None


def figure3_grid(throughputs_mbps=FIGURE3_THROUGHPUTS_MBPS,
                 latencies_ms=FIGURE3_LATENCIES_MS):
    """All (throughput, latency) cells of the Figure 3 sweep.

    Yields :class:`NetworkConditions` row-major: for each throughput, every
    latency.
    """
    for mbps in throughputs_mbps:
        for rtt_ms in latencies_ms:
            yield NetworkConditions.of(
                mbps, rtt_ms, label=f"{mbps:g}Mbps/{rtt_ms:g}ms")
