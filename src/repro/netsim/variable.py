"""Time-varying network conditions (mobility, handovers, congestion).

The paper's motivation leans on cellular access, where conditions are
anything but constant.  :class:`VariableLink` behaves like
:class:`~repro.netsim.link.Link` but follows a schedule of
:class:`~repro.netsim.link.NetworkConditions`: propagation delay is read
at send time, and the shared pipes' capacities are re-programmed at each
transition with work conservation (in-flight transfers keep their
progress).

Example — a 5G-to-congested handover mid-load::

    link = VariableLink(sim, [
        (0.0,  NetworkConditions.of(60, 40)),
        (0.35, NetworkConditions.of(8, 120)),
    ])
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Optional, Sequence, TYPE_CHECKING

from .link import NetworkConditions, ProcessorSharingPipe
from .sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - types only
    from .faults import FaultDecision, FaultPlan

__all__ = ["VariableLink"]


class VariableLink:
    """An access link whose conditions follow a time schedule.

    Duck-type compatible with :class:`~repro.netsim.link.Link` (the
    browser stack only uses ``conditions``, ``send_upstream``,
    ``send_downstream``, ``round_trip`` and the byte counters).
    """

    def __init__(self, sim: Simulator,
                 schedule: Sequence[tuple[float, NetworkConditions]],
                 fault_plan: "Optional[FaultPlan]" = None):
        if not schedule:
            raise ValueError("schedule must have at least one entry")
        entries = sorted(schedule, key=lambda item: item[0])
        if entries[0][0] > sim.now:
            raise ValueError(
                f"schedule must cover the present (starts at "
                f"{entries[0][0]}, now is {sim.now})")
        for _, conditions in entries:
            if math.isinf(conditions.downlink_bps):
                raise ValueError(
                    "VariableLink requires finite downlink rates")
        self.sim = sim
        self.fault_plan = fault_plan
        self._times = [at for at, _ in entries]
        self._entries = [conditions for _, conditions in entries]
        initial = self.conditions
        self._down = ProcessorSharingPipe(sim, initial.downlink_bps)
        self._up = (None if math.isinf(initial.uplink_bps)
                    else ProcessorSharingPipe(sim, initial.uplink_bps))
        self.bytes_down = 0
        self.bytes_up = 0
        self._arm_transitions()

    # -- schedule ------------------------------------------------------------
    @property
    def conditions(self) -> NetworkConditions:
        """The conditions in force right now."""
        index = bisect_right(self._times, self.sim.now) - 1
        return self._entries[max(index, 0)]

    def _arm_transitions(self) -> None:
        for at, conditions in zip(self._times, self._entries):
            if at <= self.sim.now:
                continue
            timer = self.sim.timeout(at - self.sim.now)
            timer.add_callback(
                lambda _ev, c=conditions: self._apply(c))

    def _apply(self, conditions: NetworkConditions) -> None:
        self._down.set_capacity(conditions.downlink_bps)
        if self._up is not None and not math.isinf(conditions.uplink_bps):
            self._up.set_capacity(conditions.uplink_bps)

    # -- the Link surface -----------------------------------------------------
    def send_upstream(self, nbytes: int, span=None):
        self.bytes_up += nbytes
        tracer = self.sim.tracer
        tspan = tracer.begin("link.up", "netsim", parent=span,
                             args={"bytes": nbytes}) if tracer.enabled \
            else None
        yield self.sim.timeout(self.conditions.one_way_s)
        if self._up is not None:
            yield self._up.transfer(nbytes)
        if tspan is not None:
            tspan.end()

    def send_downstream(self, nbytes: int, span=None):
        self.bytes_down += nbytes
        tracer = self.sim.tracer
        tspan = tracer.begin("link.down", "netsim", parent=span,
                             args={"bytes": nbytes}) if tracer.enabled \
            else None
        yield self.sim.timeout(self.conditions.one_way_s)
        yield self._down.transfer(nbytes)
        if tspan is not None:
            tspan.end()

    def send_downstream_faulted(self, nbytes: int,
                                decision: "Optional[FaultDecision]",
                                span=None):
        from .faults import faulted_downstream
        yield from faulted_downstream(self.sim, self, nbytes, decision,
                                      span=span)

    def round_trip(self):
        yield self.sim.timeout(self.conditions.rtt_s)
