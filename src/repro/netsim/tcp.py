"""Connection model: handshakes, persistence, and optional slow start.

Browser throttling (the paper's tool) charges each request the configured
latency and squeezes bytes through the throughput cap; it does not emulate
congestion control.  We default to the same model so the reproduced numbers
follow the paper's methodology, but additionally provide a TCP slow-start
cost model as an ablation (``ConnectionPolicy(slow_start=True)``) to show
the conclusions are not artifacts of the simple pipe model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .link import (DEFAULT_REQUEST_BYTES, DEFAULT_RESPONSE_HEADER_BYTES,
                   Link)
from .sim import Simulator

__all__ = ["ConnectionPolicy", "Connection", "slow_start_extra_rtts"]


@dataclass(frozen=True)
class ConnectionPolicy:
    """Knobs for connection setup and transfer cost accounting."""

    #: pay one RTT for the TCP three-way handshake on a new connection
    tcp_handshake: bool = True
    #: extra RTTs for TLS setup (1 = TLS 1.3, 2 = TLS 1.2, 0 = plain HTTP)
    tls_rtts: int = 1
    #: model congestion-window ramp-up as extra RTTs on large responses
    slow_start: bool = False
    #: initial congestion window in segments (RFC 6928)
    init_cwnd_segments: int = 10
    #: maximum segment size in bytes
    mss: int = 1460
    #: request size on the wire (method + path + headers)
    request_bytes: int = DEFAULT_REQUEST_BYTES
    #: response status line + header bytes (body billed separately)
    response_header_bytes: int = DEFAULT_RESPONSE_HEADER_BYTES

    @property
    def setup_rtts(self) -> float:
        return (1.0 if self.tcp_handshake else 0.0) + float(self.tls_rtts)


def slow_start_extra_rtts(nbytes: int, policy: ConnectionPolicy,
                          cwnd_segments: int | None = None) -> int:
    """Extra round trips beyond the first needed to deliver ``nbytes``.

    With an initial window of ``w`` segments and per-RTT doubling, the
    sender delivers ``w, 2w, 4w, ...`` segments in successive round trips.
    The first window rides the RTT already billed to the request, so only
    subsequent windows cost extra.

    >>> pol = ConnectionPolicy(init_cwnd_segments=10, mss=1460)
    >>> slow_start_extra_rtts(10 * 1460, pol)
    0
    >>> slow_start_extra_rtts(30 * 1460, pol)
    1
    """
    if nbytes <= 0:
        return 0
    window = cwnd_segments if cwnd_segments is not None \
        else policy.init_cwnd_segments
    segments = math.ceil(nbytes / policy.mss)
    rtts = 0
    delivered = 0
    while delivered < segments:
        delivered += window
        window *= 2
        rtts += 1
    return rtts - 1


@dataclass
class Connection:
    """One persistent client->origin connection.

    Tracks whether the handshake has completed and (when slow start is
    modelled) the current congestion window, which keeps growing across
    requests on the same connection — so connection reuse is rewarded the
    way it is in reality.
    """

    sim: Simulator
    link: Link
    policy: ConnectionPolicy = field(default_factory=ConnectionPolicy)
    established: bool = False
    _cwnd_segments: int = 0
    #: number of request/response exchanges carried (diagnostics)
    requests_served: int = 0

    def __post_init__(self) -> None:
        self._cwnd_segments = self.policy.init_cwnd_segments

    def setup(self):
        """Process: perform TCP (and TLS) handshakes if not yet done."""
        if self.established:
            return
        rtts = self.policy.setup_rtts
        if rtts > 0:
            yield self.sim.timeout(self.link.conditions.rtt_s * rtts)
        self.established = True

    def request_response(self, response_body_bytes: int,
                         server_think_s: float = 0.0,
                         request_extra_bytes: int = 0):
        """Process: one HTTP exchange; returns elapsed seconds.

        ``request_extra_bytes`` covers oversized requests (e.g. long
        ``If-None-Match`` lists); the response header cost comes from the
        policy and the body from ``response_body_bytes``.
        """
        if not self.established:
            yield from self.setup()
        start = self.sim.now
        req_bytes = self.policy.request_bytes + request_extra_bytes
        yield from self.link.send_upstream(req_bytes)
        if server_think_s > 0:
            yield self.sim.timeout(server_think_s)
        resp_bytes = self.policy.response_header_bytes + response_body_bytes
        if self.policy.slow_start and response_body_bytes > 0:
            extra = slow_start_extra_rtts(
                response_body_bytes, self.policy, self._cwnd_segments)
            if extra > 0:
                yield self.sim.timeout(self.link.conditions.rtt_s * extra)
            # cwnd keeps the value reached while sending this response
            sent_segments = math.ceil(response_body_bytes / self.policy.mss)
            self._cwnd_segments = max(self._cwnd_segments,
                                      min(2 * sent_segments, 1 << 16))
        yield from self.link.send_downstream(resp_bytes)
        self.requests_served += 1
        return self.sim.now - start
