"""Deterministic discrete-event network simulation substrate.

Public surface:

- :class:`~repro.netsim.sim.Simulator` and the event primitives — the DES
  kernel everything runs on.
- :class:`~repro.netsim.link.NetworkConditions` /
  :class:`~repro.netsim.link.Link` — throttled access-link model.
- :class:`~repro.netsim.tcp.Connection` — handshake + transfer cost model.
- :mod:`~repro.netsim.conditions` — named profiles and the Figure 3 grid.
- :mod:`~repro.netsim.clock` — duration parsing/formatting helpers.
"""

from .clock import (DAY, HOUR, MINUTE, SECOND, WEEK, format_duration, ms,
                    parse_duration)
from .conditions import (FIGURE3_LATENCIES_MS, FIGURE3_THROUGHPUTS_MBPS,
                         PROFILES, figure3_grid, profile)
from .faults import (FaultDecision, FaultKind, FaultPlan, InjectedFault,
                     InjectedReset, InjectedTruncation, backoff_delay,
                     captive_portal, deterministic_draw, flaky_5g,
                     lossy_wifi)
from .link import Link, NetworkConditions, ProcessorSharingPipe
from .sim import (AllOf, AnyOf, Event, Interrupt, Process, Resource,
                  SimulationError, Simulator, Timeout)
from .tcp import Connection, ConnectionPolicy, slow_start_extra_rtts
from .variable import VariableLink

__all__ = [
    "Simulator", "Event", "Timeout", "Process", "AnyOf", "AllOf", "Resource",
    "Interrupt", "SimulationError",
    "NetworkConditions", "Link", "ProcessorSharingPipe", "VariableLink",
    "FaultPlan", "FaultKind", "FaultDecision",
    "InjectedFault", "InjectedReset", "InjectedTruncation",
    "flaky_5g", "lossy_wifi", "captive_portal",
    "deterministic_draw", "backoff_delay",
    "Connection", "ConnectionPolicy", "slow_start_extra_rtts",
    "PROFILES", "profile", "figure3_grid",
    "FIGURE3_THROUGHPUTS_MBPS", "FIGURE3_LATENCIES_MS",
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK",
    "parse_duration", "format_duration", "ms",
]
