"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event simulator in the style of
SimPy (which is not available offline).  All network and page-load timing in
this package runs on this kernel so that experiments are exactly
reproducible and take milliseconds of wall time regardless of how many
seconds of simulated time they span.

Model
-----
- A :class:`Simulator` owns a virtual clock and a priority queue of pending
  events.
- An :class:`Event` is a one-shot occurrence.  Once *triggered* with a value
  it fires its callbacks when the simulator reaches its scheduled time.
- A :class:`Process` wraps a generator.  The generator ``yield``\\ s events;
  the process resumes when the yielded event fires, receiving the event's
  value as the result of the ``yield`` expression.  A process is itself an
  event that triggers when the generator returns (its value is the
  generator's return value), so processes can wait on each other.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, results):
...     yield sim.timeout(2.0)
...     results.append(sim.now)
>>> results = []
>>> _ = sim.process(worker(sim, results))
>>> sim.run()
>>> results
[2.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Resource",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yielding non-events...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    Lifecycle: *pending* -> *triggered* (value decided, scheduled on the
    queue) -> *processed* (callbacks ran).  Callbacks added after processing
    are invoked immediately.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value (or failure) has been decided."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        return self._value

    # -- transitions ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, 0.0 if delay is None else delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.

        Adding to an already-processed event defers ``fn`` through the
        queue (same simulated time, later step) instead of invoking it
        synchronously — this keeps resumption order deterministic and
        bounds recursion when long chains of completed events are awaited.
        """
        if self.callbacks is None:
            relay = Event(self.sim)
            relay._triggered = True
            relay._ok = self._ok
            relay._value = self._value
            relay.callbacks.append(fn)
            self.sim._schedule(relay, 0.0)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.succeed(value, delay=delay)


class Process(Event):
    """Drives a generator coroutine; itself an event (fires on return)."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError("Process requires a generator")
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time.
        start = Event(sim)
        start.succeed(None)
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in (target.callbacks or []):
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wake = Event(self.sim)
        wake.fail(Interrupt(cause))
        wake.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process as failed.
            self.fail(exc)
            return
        except Exception as exc:
            if self.sim.strict:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    Value is a dict of the already-fired events to their values (at the
    moment of first firing; simultaneous events at the same timestamp that
    were processed earlier are included).
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed({ev: ev.value for ev in self.events if ev.processed
                      or ev is event})


class AllOf(Event):
    """Fires when every one of ``events`` has fired; value maps event->value."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev.value for ev in self.events})


class Resource:
    """A counted resource (e.g. an origin's connection pool slots).

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` returns the slot.  FIFO granting keeps behaviour
    deterministic.
    """

    def __init__(self, sim: "Simulator", capacity: int):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._queue:
            nxt = self._queue.pop(0)
            nxt.succeed(self)
        else:
            self._in_use -= 1

    def use(self):
        """Context-manager style helper for use inside processes::

            grant = resource.request()
            yield grant
            try: ...
            finally: resource.release()
        """
        return _ResourceUsage(self)


class _ResourceUsage:
    def __init__(self, resource: Resource):
        self.resource = resource
        self.grant = resource.request()

    def __enter__(self) -> Event:
        return self.grant

    def __exit__(self, *exc) -> None:
        self.resource.release()


class Simulator:
    """The event queue and virtual clock.

    Parameters
    ----------
    strict:
        When True (default), exceptions escaping a process fail the process
        event (and propagate to waiters) instead of unwinding ``run()``.
    """

    def __init__(self, strict: bool = True, tracer=None):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self.strict = strict
        # The tracer rides the simulator so every layer holding a ``sim``
        # reference (links, fetchers, loaders) shares one trace without
        # constructor plumbing.  NULL_TRACER's no-op fast path keeps the
        # untraced kernel exactly as fast as before.
        if tracer is None:
            from ..obs.trace import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter),
                                     event))

    def step(self) -> None:
        """Process the single next event."""
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When stopped by ``until`` the clock is advanced exactly to
        ``until``.
        """
        if until is not None and until < self._now:
            raise SimulationError("until lies in the past")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: run ``gen`` to completion and return its value.

        Raises the process's exception if it failed.
        """
        proc = self.process(gen, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never finished (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
