"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event simulator in the style of
SimPy (which is not available offline).  All network and page-load timing in
this package runs on this kernel so that experiments are exactly
reproducible and take milliseconds of wall time regardless of how many
seconds of simulated time they span.

Model
-----
- A :class:`Simulator` owns a virtual clock and a priority queue of pending
  events.
- An :class:`Event` is a one-shot occurrence.  Once *triggered* with a value
  it fires its callbacks when the simulator reaches its scheduled time.
- A :class:`Process` wraps a generator.  The generator ``yield``\\ s events;
  the process resumes when the yielded event fires, receiving the event's
  value as the result of the ``yield`` expression.  A process is itself an
  event that triggers when the generator returns (its value is the
  generator's return value), so processes can wait on each other.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, results):
...     yield sim.timeout(2.0)
...     results.append(sim.now)
>>> results = []
>>> _ = sim.process(worker(sim, results))
>>> sim.run()
>>> results
[2.0]
"""

from __future__ import annotations

import itertools
import sys
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Resource",
    "Interrupt",
    "SimulationError",
]


#: CPython refcount probe used by the timeout free-list; absent on
#: runtimes without refcounts, which simply disables recycling.
_getrefcount = getattr(sys, "getrefcount", None)


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yielding non-events...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    Lifecycle: *pending* -> *triggered* (value decided, scheduled on the
    queue) -> *processed* (callbacks ran).  Callbacks added after processing
    are deferred through the queue.

    ``callbacks`` is lazily allocated: most events (every timeout, every
    pipe completion) collect exactly zero or one waiter, so the common
    case never pays for an empty list.  ``None`` means "no callbacks yet"
    while the event is live, and "already dispatched" once ``_processed``
    is set — always register through :meth:`add_callback`, never by
    appending to ``callbacks`` directly.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value (or failure) has been decided."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        return self._value

    # -- transitions ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, 0.0 if delay is None else delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.

        Adding to an already-processed event defers ``fn`` through the
        queue (same simulated time, later step) instead of invoking it
        synchronously — this keeps resumption order deterministic and
        bounds recursion when long chains of completed events are awaited.

        This is the single registration point for waiters; it owns the
        lazy allocation of ``callbacks``.
        """
        if self._processed:
            relay = Event(self.sim)
            relay._triggered = True
            relay._ok = self._ok
            relay._value = self._value
            relay.callbacks = [fn]
            self.sim._schedule(relay, 0.0)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Instances are recycled through the simulator's free-list (see
    :meth:`Simulator.timeout`): grids schedule millions of timeouts, and
    reusing the objects keeps the dispatch loop off the allocator.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.succeed(value, delay=delay)


class Process(Event):
    """Drives a generator coroutine; itself an event (fires on return)."""

    __slots__ = ("_gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError("Process requires a generator")
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time.
        start = Event(sim)
        start.succeed(None)
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None and target.callbacks:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wake = Event(self.sim)
        wake.fail(Interrupt(cause))
        wake.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process as failed.
            self.fail(exc)
            return
        except Exception as exc:
            if self.sim.strict:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    Value is a dict of the already-fired events to their values (at the
    moment of first firing; simultaneous events at the same timestamp that
    were processed earlier are included).
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed({ev: ev.value for ev in self.events if ev.processed
                      or ev is event})


class AllOf(Event):
    """Fires when every one of ``events`` has fired; value maps event->value."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev.value for ev in self.events})


class Resource:
    """A counted resource (e.g. an origin's connection pool slots).

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` returns the slot.  FIFO granting keeps behaviour
    deterministic.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_queue")

    def __init__(self, sim: "Simulator", capacity: int):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(self)
        else:
            self._in_use -= 1

    def use(self):
        """Context-manager style helper for use inside processes::

            grant = resource.request()
            yield grant
            try: ...
            finally: resource.release()
        """
        return _ResourceUsage(self)


class _ResourceUsage:
    __slots__ = ("resource", "grant")

    def __init__(self, resource: Resource):
        self.resource = resource
        self.grant = resource.request()

    def __enter__(self) -> Event:
        return self.grant

    def __exit__(self, *exc) -> None:
        self.resource.release()


class Simulator:
    """The event queue and virtual clock.

    Parameters
    ----------
    strict:
        When True (default), exceptions escaping a process fail the process
        event (and propagate to waiters) instead of unwinding ``run()``.
    """

    #: recycled Timeout instances kept per simulator (bounds memory while
    #: still absorbing the bursts a page load schedules)
    _TIMEOUT_POOL_MAX = 256

    def __init__(self, strict: bool = True, tracer=None):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._timeout_pool: list[Timeout] = []
        self.strict = strict
        # The tracer rides the simulator so every layer holding a ``sim``
        # reference (links, fetchers, loaders) shares one trace without
        # constructor plumbing.  NULL_TRACER's no-op fast path keeps the
        # untraced kernel exactly as fast as before.
        if tracer is None:
            from ..obs.trace import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            # Reuse a retired instance; the dispatch loop only pools
            # timeouts that nothing else references, so the reset is
            # externally unobservable.
            timer = pool.pop()
            timer.delay = delay
            timer._value = value
            timer._ok = True
            timer._triggered = True
            timer._processed = False
            timer.callbacks = None
            self._schedule(timer, delay)
            return timer
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heappush(self._queue, (self._now + delay, next(self._counter),
                               event))

    def step(self) -> None:
        """Process the single next event."""
        when, _, event = heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks is not None:
            for fn in callbacks:
                fn(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When stopped by ``until`` the clock is advanced exactly to
        ``until``.

        This loop is the simulator's hottest code: everything is bound to
        locals, dispatch is inlined rather than delegated to
        :meth:`step`, and retired timeouts are returned to the free-list.
        A timeout is recycled only when this frame holds the last
        reference (``getrefcount == 2``: the local plus the call
        argument), which makes reuse invisible to any code that kept the
        event — e.g. an :class:`AnyOf` still reading ``.value``.
        """
        if until is not None and until < self._now:
            raise SimulationError("until lies in the past")
        queue = self._queue
        pool = self._timeout_pool
        pool_max = self._TIMEOUT_POOL_MAX
        getrefcount = _getrefcount
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return
            when, _, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks is not None:
                for fn in callbacks:
                    fn(event)
            if (type(event) is Timeout and getrefcount is not None
                    and getrefcount(event) == 2 and len(pool) < pool_max):
                pool.append(event)
        if until is not None:
            self._now = until

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: run ``gen`` to completion and return its value.

        Raises the process's exception if it failed.
        """
        proc = self.process(gen, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never finished (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
