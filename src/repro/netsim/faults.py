"""Deterministic fault injection for the simulated network.

The happy-path model in :mod:`repro.netsim.link` delivers every byte it
is asked to deliver.  Real latency-constrained networks — the median-5G
regime the paper targets — drop requests, stall mid-response, truncate
bodies, and reset connections.  A reproduction that claims CacheCatalyst
is *safe to deploy* has to show the mechanism degrades to standard
caching under those faults, which first requires being able to cause
them on demand, reproducibly.

:class:`FaultPlan` is that cause.  It is consulted once per network
*attempt* (a URL plus a retry ordinal) and answers with a
:class:`FaultDecision` or ``None``.  Decisions are drawn by hashing
``(seed, url, attempt)``, so:

- the same plan produces the same faults on every run (experiments are
  exactly reproducible, and a retry/backoff trace can be asserted
  byte-for-byte), and
- two caching modes evaluated under the same plan face the *same*
  faults on the requests they share — paired sampling, which keeps
  STANDARD-vs-CATALYST comparisons honest.

The four fault kinds mirror what packet loss does to an HTTP exchange:

``LOSS``
    the request (or its response) vanishes; the client hears nothing and
    must rely on its own watchdog timeout.
``RESET``
    the connection dies visibly (TCP RST); the client learns immediately.
``TRUNCATE``
    the body is cut after a fraction of its bytes; the partial bytes
    still traverse (and bill) the shared pipe.
``STALL``
    the response hangs for ``stall_s`` mid-body, then either resumes or
    dies, modelling bufferbloat spikes and half-dead middleboxes.

Scenario presets (:func:`flaky_5g`, :func:`lossy_wifi`,
:func:`captive_portal`) bundle rates observed in the motivating
literature on mobile redundant transfers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FaultKind", "FaultDecision", "FaultPlan",
    "InjectedFault", "InjectedReset", "InjectedTruncation",
    "flaky_5g", "lossy_wifi", "captive_portal",
    "deterministic_draw", "backoff_delay", "faulted_downstream",
]


class InjectedFault(Exception):
    """Base class for failures the fault layer injects into a transfer."""


class InjectedReset(InjectedFault):
    """The connection was reset mid-exchange (TCP RST analogue)."""


class InjectedTruncation(InjectedFault):
    """The response body was cut short; partial bytes were delivered."""


class FaultKind(enum.Enum):
    """What goes wrong with one network attempt."""

    LOSS = "loss"          # silence: the client's watchdog must fire
    RESET = "reset"        # visible connection death
    TRUNCATE = "truncate"  # partial body, then death
    STALL = "stall"        # long pause mid-body, then resume or death


@dataclass(frozen=True)
class FaultDecision:
    """One attempt's fate, as decided by a :class:`FaultPlan`."""

    kind: FaultKind
    #: seconds the response hangs (STALL only)
    stall_s: float = 0.0
    #: a STALL that never resumes (the connection is dead, silently)
    dies: bool = False
    #: fraction of body bytes delivered before the cut (TRUNCATE only)
    truncate_fraction: float = 0.5


def deterministic_draw(seed: int, *parts: object) -> float:
    """A uniform [0, 1) variate fully determined by ``(seed, *parts)``.

    Independent draws use distinct ``parts``; no global RNG state is
    involved, so fault decisions are stable under any fetch ordering.
    """
    token = "|".join([str(seed), *[str(part) for part in parts]])
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def backoff_delay(attempt: int, base_s: float, cap_s: float,
                  seed: int, key: str) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``attempt`` is the zero-based ordinal of the attempt that just
    failed.  Jitter spans [0.5, 1.0) of the nominal delay ("equal
    jitter"), derived from ``(seed, key, attempt)`` so identical runs
    produce identical schedules.
    """
    nominal = min(cap_s, base_s * (2.0 ** attempt))
    jitter = 0.5 + 0.5 * deterministic_draw(seed, "backoff", key, attempt)
    return nominal * jitter


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, composable description of how a link misbehaves.

    Rates are per-attempt probabilities; they must sum to at most 1.
    A plan with all-zero rates injects nothing (and costs one hash per
    attempt).
    """

    loss_rate: float = 0.0
    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    stall_rate: float = 0.0
    #: how long a stalled response hangs before resuming or dying
    stall_s: float = 5.0
    #: fraction of stalls that never resume (silent connection death)
    stall_death_fraction: float = 0.5
    #: fraction of body bytes delivered before a truncation cut
    truncate_fraction: float = 0.5
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        for name in ("loss_rate", "reset_rate", "truncate_rate",
                     "stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.total_rate > 1.0 + 1e-12:
            raise ValueError(
                f"fault rates sum to {self.total_rate:g} > 1")
        if self.stall_s < 0:
            raise ValueError(f"negative stall_s: {self.stall_s}")
        if not 0.0 < self.truncate_fraction < 1.0:
            raise ValueError("truncate_fraction must be in (0, 1)")

    @property
    def total_rate(self) -> float:
        return (self.loss_rate + self.reset_rate + self.truncate_rate
                + self.stall_rate)

    @property
    def injects_anything(self) -> bool:
        return self.total_rate > 0.0

    def describe(self) -> str:
        if self.label:
            return self.label
        if not self.injects_anything:
            return "no-faults"
        parts = [f"{name[0]}{getattr(self, name) * 100:g}%"
                 for name in ("loss_rate", "reset_rate", "truncate_rate",
                              "stall_rate") if getattr(self, name) > 0]
        return "+".join(parts)

    # -- the decision ------------------------------------------------------
    def decide(self, url: str, attempt: int = 0) -> Optional[FaultDecision]:
        """The fate of fetching ``url`` for the ``attempt``-th time.

        Deterministic: the same ``(plan, url, attempt)`` always answers
        the same way, regardless of what else the simulation is doing.
        """
        if not self.injects_anything:
            return None
        u = deterministic_draw(self.seed, "kind", url, attempt)
        edge = self.loss_rate
        if u < edge:
            return FaultDecision(kind=FaultKind.LOSS)
        edge += self.reset_rate
        if u < edge:
            return FaultDecision(kind=FaultKind.RESET)
        edge += self.truncate_rate
        if u < edge:
            return FaultDecision(kind=FaultKind.TRUNCATE,
                                 truncate_fraction=self.truncate_fraction)
        edge += self.stall_rate
        if u < edge:
            dies = deterministic_draw(
                self.seed, "stall", url, attempt) < self.stall_death_fraction
            return FaultDecision(kind=FaultKind.STALL, stall_s=self.stall_s,
                                 dies=dies)
        return None

    # -- convenience constructors -----------------------------------------
    @classmethod
    def request_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Pure request loss at ``rate`` (the acceptance-criteria shape)."""
        return cls(loss_rate=rate, seed=seed,
                   label=f"loss-{rate * 100:g}%")

    @classmethod
    def mixed(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A realistic mix scaled by one knob: half loss, the rest split
        between resets and truncations."""
        return cls(loss_rate=rate / 2.0, reset_rate=rate / 4.0,
                   truncate_rate=rate / 4.0, seed=seed,
                   label=f"mixed-{rate * 100:g}%")


# -- scenario presets --------------------------------------------------------

def flaky_5g(seed: int = 0) -> FaultPlan:
    """Median-5G with an unreliable radio leg: occasional loss and
    resets, short bufferbloat stalls that usually resume."""
    return FaultPlan(loss_rate=0.02, reset_rate=0.01, truncate_rate=0.01,
                     stall_rate=0.02, stall_s=1.5,
                     stall_death_fraction=0.25, seed=seed,
                     label="flaky_5g")


def lossy_wifi(seed: int = 0) -> FaultPlan:
    """Congested shared WiFi: loss-dominated, frequent truncations."""
    return FaultPlan(loss_rate=0.05, reset_rate=0.02, truncate_rate=0.03,
                     stall_rate=0.02, stall_s=0.8,
                     stall_death_fraction=0.5, seed=seed,
                     label="lossy_wifi")


def captive_portal(seed: int = 0) -> FaultPlan:
    """A half-broken gateway: most requests stall long and die, many
    are reset outright.  The regime where only aggressive timeouts keep
    a page load alive at all."""
    return FaultPlan(loss_rate=0.05, reset_rate=0.10, stall_rate=0.30,
                     stall_s=8.0, stall_death_fraction=0.8, seed=seed,
                     label="captive_portal")


def faulted_downstream(sim, link, nbytes: int,
                       decision: Optional[FaultDecision], span=None):
    """Process: deliver a response downstream, applying ``decision``.

    The degenerate case (``decision`` is ``None``) is exactly
    ``link.send_downstream``.  Faulted deliveries still bill the shared
    pipe for every byte that would genuinely have crossed the link —
    truncated transfers consume bandwidth, which is part of why loss
    hurts.  ``LOSS`` is handled by the caller (nothing is delivered at
    all); this helper covers the response-path kinds.

    ``span`` parents the transmission spans; each injected fault is also
    emitted as an instant event on the trace, so retries and the faults
    that caused them line up in one timeline.
    """
    if decision is None:
        yield from link.send_downstream(nbytes, span=span)
        return
    tracer = sim.tracer
    if decision.kind is FaultKind.RESET:
        # The RST arrives after one propagation delay; no payload lands.
        yield sim.timeout(link.conditions.one_way_s)
        if tracer.enabled:
            tracer.instant("fault.reset", "netsim", parent=span,
                           args={"pending_bytes": nbytes})
        raise InjectedReset(f"connection reset ({nbytes} bytes pending)")
    if decision.kind is FaultKind.TRUNCATE:
        delivered = max(1, int(nbytes * decision.truncate_fraction))
        yield from link.send_downstream(delivered, span=span)
        if tracer.enabled:
            tracer.instant("fault.truncate", "netsim", parent=span,
                           args={"delivered": delivered, "total": nbytes})
        raise InjectedTruncation(
            f"body cut after {delivered}/{nbytes} bytes")
    if decision.kind is FaultKind.STALL:
        first = max(1, nbytes // 2)
        yield from link.send_downstream(first, span=span)
        if tracer.enabled:
            tracer.instant("fault.stall", "netsim", parent=span,
                           args={"stall_s": decision.stall_s,
                                 "dies": decision.dies})
        yield sim.timeout(decision.stall_s)
        if decision.dies:
            raise InjectedReset(
                f"stalled {decision.stall_s:g}s then died "
                f"({first}/{nbytes} bytes delivered)")
        yield from link.send_downstream(nbytes - first, span=span)
        return
    # FaultKind.LOSS should never reach the downstream path.
    raise AssertionError(f"unexpected downstream fault {decision.kind}")
