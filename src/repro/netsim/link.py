"""Network link models: propagation latency + shared bandwidth.

The access link is modelled the way browser throttling (the paper's
measurement tool) models it:

- every request/response pays propagation delay derived from the configured
  round-trip time, and
- response bodies are serialized through a *shared* downlink pipe, so
  concurrent fetches divide the configured throughput between them.

The pipe uses a processor-sharing discipline: at any instant each of the
``n`` active transfers progresses at ``capacity / n``.  This matches how
parallel HTTP downloads share a last-mile link closely enough for PLT work,
and is what Chrome's throttle approximates.

:class:`ProcessorSharingPipe` is exact: on every arrival or departure it
advances all in-flight transfers by the elapsed time at the old rate and
reschedules the next completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, TYPE_CHECKING

from .sim import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from .faults import FaultDecision, FaultPlan

__all__ = ["NetworkConditions", "ProcessorSharingPipe", "Link"]

#: Bytes of protocol overhead we bill per HTTP message exchange
#: (request line + headers up, status line + headers down).  Headers ride the
#: same pipes as bodies.
DEFAULT_REQUEST_BYTES = 450
DEFAULT_RESPONSE_HEADER_BYTES = 350


@dataclass(frozen=True)
class NetworkConditions:
    """A throttling profile: RTT plus down/up throughput.

    ``rtt_s`` is the full round-trip time between client and origin in
    seconds.  ``downlink_bps``/``uplink_bps`` are in bits per second;
    ``math.inf`` disables the corresponding bandwidth limit.
    """

    rtt_s: float
    downlink_bps: float
    uplink_bps: float = math.inf
    label: str = ""

    def __post_init__(self) -> None:
        if self.rtt_s < 0:
            raise ValueError(f"negative RTT: {self.rtt_s}")
        if self.downlink_bps <= 0 or self.uplink_bps <= 0:
            raise ValueError("throughput must be positive")

    # Derived values are memoized (cached_property writes straight into
    # the instance dict, so it composes with frozen dataclasses): the
    # link model reads ``one_way_s`` twice per HTTP message, millions of
    # times per grid.
    @cached_property
    def one_way_s(self) -> float:
        """One-way propagation delay."""
        return self.rtt_s / 2.0

    @cached_property
    def rtt_ms(self) -> float:
        return self.rtt_s * 1000.0

    @cached_property
    def downlink_mbps(self) -> float:
        return self.downlink_bps / 1e6

    def describe(self) -> str:
        if self.label:
            return self.label
        down = ("inf" if math.isinf(self.downlink_bps)
                else f"{self.downlink_mbps:g}Mbps")
        return f"{down}/{self.rtt_ms:g}ms"

    @classmethod
    def of(cls, mbps: float, rtt_ms: float, up_mbps: Optional[float] = None,
           label: str = "") -> "NetworkConditions":
        """Build from the units the paper uses (Mbit/s and milliseconds)."""
        return cls(
            rtt_s=rtt_ms / 1000.0,
            downlink_bps=mbps * 1e6,
            uplink_bps=math.inf if up_mbps is None else up_mbps * 1e6,
            label=label,
        )


class _Transfer:
    __slots__ = ("remaining_bits", "event")

    def __init__(self, remaining_bits: float, event: Event):
        self.remaining_bits = remaining_bits
        self.event = event


class ProcessorSharingPipe:
    """A bandwidth pipe shared equally among in-flight transfers.

    Scheduling is lazily invalidated: one timer is armed for the next
    completion, stamped with a wakeup token.  Any arrival, departure or
    capacity change advances every in-flight transfer once (the O(n)
    work the exact discipline requires), bumps the token — which strands
    the armed timer without touching the event heap — and re-arms.  A
    capacity "change" to the identical rate is a no-op, so back-to-back
    handovers between equal-rate conditions cost nothing.
    """

    __slots__ = ("sim", "capacity_bps", "_active", "_last_update",
                 "_wakeup_token", "total_bits")

    def __init__(self, sim: Simulator, capacity_bps: float):
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity_bps = capacity_bps
        self._active: list[_Transfer] = []
        self._last_update = 0.0
        self._wakeup_token = 0
        #: cumulative bits pushed through the pipe (for accounting benches)
        self.total_bits = 0.0

    @property
    def active_count(self) -> int:
        return len(self._active)

    def set_capacity(self, capacity_bps: float) -> None:
        """Change the pipe's rate mid-flight (mobility / handover).

        In-flight transfers are advanced at the old rate up to now, then
        continue at the new rate — work done is conserved.  Setting the
        capacity the pipe already has is free: nothing about any
        transfer's finish time could change, so neither the transfers
        nor the armed wakeup are touched.
        """
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if capacity_bps == self.capacity_bps:
            return
        self._advance()
        self.capacity_bps = capacity_bps
        self._reschedule()

    def transfer(self, nbytes: int) -> Event:
        """Begin a transfer of ``nbytes``; the event fires on completion."""
        ev = Event(self.sim)
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        self.total_bits += nbytes * 8.0
        if nbytes == 0 or math.isinf(self.capacity_bps):
            ev.succeed(nbytes)
            return ev
        self._advance()
        self._active.append(_Transfer(nbytes * 8.0, ev))
        self._reschedule()
        return ev

    # -- internals ----------------------------------------------------------
    def _rate_per_transfer(self) -> float:
        if not self._active:
            return self.capacity_bps
        return self.capacity_bps / len(self._active)

    def _advance(self) -> None:
        """Account progress since the last queue change at the old rate."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        active = self._active
        if elapsed <= 0 or not active:
            return
        progressed = elapsed * (self.capacity_bps / len(active))
        for t in active:
            t.remaining_bits -= progressed

    def _reschedule(self) -> None:
        """Complete any finished transfers and arm the next wakeup.

        One fused pass both collects finished transfers and finds the
        next finisher among the survivors (first-minimum, matching the
        pre-fusion ``min()`` tie-break); the active list is only rebuilt
        when something actually finished.  The wakeup carries its target
        transfer and force-completes it: float drift could otherwise
        leave a sub-bit residue whose completion delay underflows to a
        zero time step, livelocking the queue.
        """
        active = self._active
        finished = None
        target = None
        min_bits = math.inf
        for t in active:
            remaining = t.remaining_bits
            if remaining <= 1e-6:
                if finished is None:
                    finished = [t]
                else:
                    finished.append(t)
            elif remaining < min_bits:
                min_bits = remaining
                target = t
        if finished is not None:
            self._active = active = [t for t in active
                                     if t.remaining_bits > 1e-6]
            for t in finished:
                t.event.succeed()
        self._wakeup_token += 1
        if target is None:
            return
        delay = target.remaining_bits / (self.capacity_bps / len(active))
        token = self._wakeup_token
        timer = self.sim.timeout(delay)
        timer.add_callback(
            lambda _ev, _token=token, _target=target:
            self._on_wakeup(_token, _target))

    def _on_wakeup(self, token: int, target: _Transfer) -> None:
        if token != self._wakeup_token:
            return  # superseded by a later arrival/departure
        self._advance()
        target.remaining_bits = 0.0  # guaranteed progress per wakeup
        self._reschedule()


class Link:
    """A client access link: propagation + shared up/down pipes.

    All fetches issued by one simulated browser share one :class:`Link`,
    which is what makes concurrent downloads contend for throughput the way
    they do behind a real last-mile connection.
    """

    def __init__(self, sim: Simulator, conditions: NetworkConditions,
                 fault_plan: "Optional[FaultPlan]" = None):
        self.sim = sim
        self.conditions = conditions
        #: when set, the client stack consults this plan per attempt and
        #: routes response bodies through :meth:`send_downstream_faulted`
        self.fault_plan = fault_plan
        self._down = (None if math.isinf(conditions.downlink_bps)
                      else ProcessorSharingPipe(sim, conditions.downlink_bps))
        self._up = (None if math.isinf(conditions.uplink_bps)
                    else ProcessorSharingPipe(sim, conditions.uplink_bps))
        #: bytes that actually crossed the downlink (response headers+bodies)
        self.bytes_down = 0
        self.bytes_up = 0

    # Each direction: one-way propagation, then serialization through the
    # shared pipe.  Exposed as generator-coroutines for use in processes.
    # ``span`` (optional) parents the transmission span in a trace; the
    # untraced path costs one attribute read and a branch.
    def send_upstream(self, nbytes: int, span=None):
        """Process: deliver ``nbytes`` from client to server."""
        self.bytes_up += nbytes
        tracer = self.sim.tracer
        tspan = tracer.begin("link.up", "netsim", parent=span,
                             args={"bytes": nbytes}) if tracer.enabled \
            else None
        yield self.sim.timeout(self.conditions.one_way_s)
        if self._up is not None:
            yield self._up.transfer(nbytes)
        if tspan is not None:
            tspan.end()

    def send_downstream(self, nbytes: int, span=None):
        """Process: deliver ``nbytes`` from server to client."""
        self.bytes_down += nbytes
        tracer = self.sim.tracer
        tspan = tracer.begin("link.down", "netsim", parent=span,
                             args={"bytes": nbytes}) if tracer.enabled \
            else None
        yield self.sim.timeout(self.conditions.one_way_s)
        if self._down is not None:
            yield self._down.transfer(nbytes)
        if tspan is not None:
            tspan.end()

    def send_downstream_faulted(self, nbytes: int,
                                decision: "Optional[FaultDecision]",
                                span=None):
        """Process: downstream delivery subject to an injected fault.

        Partial bytes of truncated/stalled transfers still traverse the
        shared pipe (and are billed to ``bytes_down``): a faulty network
        consumes bandwidth even when nothing usable arrives.
        """
        from .faults import faulted_downstream
        yield from faulted_downstream(self.sim, self, nbytes, decision,
                                      span=span)

    def round_trip(self):
        """Process: one full RTT with no payload (e.g. TCP SYN/SYN-ACK)."""
        yield self.sim.timeout(self.conditions.rtt_s)
