"""Exception hierarchy for the HTTP substrate."""

from __future__ import annotations

__all__ = [
    "HttpError",
    "ProtocolError",
    "MessageTooLarge",
    "ConnectionClosed",
    "RequestTimeout",
    "CircuitOpen",
]


class HttpError(Exception):
    """Base class for all HTTP-layer errors."""


class ProtocolError(HttpError):
    """Malformed message on the wire."""


class MessageTooLarge(ProtocolError):
    """Start line, header block, or body exceeded a configured limit."""


class ConnectionClosed(HttpError):
    """The peer closed the connection mid-message."""


class RequestTimeout(HttpError):
    """The client gave up waiting for a response."""


class CircuitOpen(HttpError):
    """The per-origin circuit breaker refused the request without
    touching the wire (the origin has been failing; back off)."""
