"""HTTP substrate: messages, header semantics, wire codec, asyncio I/O.

Everything caching-related in RFC 9110/9111 that the reproduction needs is
implemented here from scratch (no third-party HTTP library is available in
the offline environment):

- :class:`Headers` — case-insensitive multimap
- :class:`Request` / :class:`Response` — in-memory message model
- :mod:`etag` — entity tags and conditional-request evaluation
- :mod:`cache_control` — Cache-Control directive parsing
- :mod:`dates` — HTTP-date handling
- :mod:`wire` — HTTP/1.1 serialization/parsing
- :class:`AsyncHttpServer` / :class:`AsyncHttpClient` — real-socket path
"""

from .cache_control import CacheControl, parse_cache_control
from .dates import format_http_date, parse_http_date
from .errors import (CircuitOpen, ConnectionClosed, HttpError,
                     MessageTooLarge, ProtocolError, RequestTimeout)
from .etag import (ETag, etag_for_content, if_none_match_matches, parse_etag,
                   parse_etag_list)
from .headers import Headers
from .messages import Request, Response, status_reason
from .aclient import (AsyncHttpClient, CircuitBreaker, FetchResult,
                      FetchTiming)
from .aserver import AsyncHttpServer
from .fleet import FleetConfig, ServerFleet

__all__ = [
    "Headers", "Request", "Response", "status_reason",
    "ETag", "parse_etag", "parse_etag_list", "etag_for_content",
    "if_none_match_matches",
    "CacheControl", "parse_cache_control",
    "format_http_date", "parse_http_date",
    "HttpError", "ProtocolError", "MessageTooLarge", "ConnectionClosed",
    "RequestTimeout", "CircuitOpen",
    "AsyncHttpServer", "AsyncHttpClient", "CircuitBreaker",
    "FetchResult", "FetchTiming",
    "FleetConfig", "ServerFleet",
]
