"""Real asyncio HTTP/1.1 client with per-origin connection pooling.

Mirrors what a browser's network stack gives a page: persistent
connections, a per-origin concurrency cap, and timing for each exchange —
enough to measure request latency in the real-socket integration path.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urlsplit

from ..netsim.faults import backoff_delay
from ..obs.trace import NULL_TRACER
from .errors import ConnectionClosed, HttpError, RequestTimeout
from .headers import Headers
from .messages import Request, Response
from .wire import read_response, serialize_request

__all__ = ["AsyncHttpClient", "FetchTiming", "FetchResult"]

#: browsers open at most this many parallel connections per origin
DEFAULT_CONNECTIONS_PER_ORIGIN = 6

#: failures worth a fresh attempt: silence (timeout) or a broken pipe.
#: HTTP error *responses* are never retried here — they are answers.
_RETRYABLE = (RequestTimeout, ConnectionClosed, ConnectionResetError,
              BrokenPipeError)


@dataclass(frozen=True)
class FetchTiming:
    """Wall-clock timing of one exchange (seconds)."""

    start: float
    connect_done: float
    response_done: float
    reused_connection: bool

    @property
    def total_s(self) -> float:
        return self.response_done - self.start

    @property
    def connect_s(self) -> float:
        return self.connect_done - self.start


@dataclass
class FetchResult:
    response: Response
    timing: FetchTiming
    #: wire attempts this fetch took (1 = no retries)
    attempts: int = 1


@dataclass
class _PooledConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    created_at: float = field(default_factory=time.monotonic)

    def close(self) -> None:
        self.writer.close()


class AsyncHttpClient:
    """Pooled HTTP client.

    Usage::

        async with AsyncHttpClient() as client:
            result = await client.get("http://127.0.0.1:8080/index.html")
    """

    def __init__(self,
                 connections_per_origin: int = DEFAULT_CONNECTIONS_PER_ORIGIN,
                 timeout_s: float = 30.0,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 retry_seed: int = 0,
                 tracer=None):
        self.timeout_s = timeout_s
        #: spans land on the wall clock ("http" category)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.connections_per_origin = connections_per_origin
        #: extra attempts after the first fails (timeouts, broken pipes);
        #: the free same-request retry on a stale *pooled* connection
        #: does not consume this budget
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: seeds the deterministic backoff jitter (reproducible timings)
        self.retry_seed = retry_seed
        self._idle: dict[tuple[str, int], list[_PooledConnection]] = {}
        self._limits: dict[tuple[str, int], asyncio.Semaphore] = {}
        self._closed = False
        #: attempts re-issued after a retryable failure (diagnostics)
        self.retries = 0

    async def __aenter__(self) -> "AsyncHttpClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        for conns in self._idle.values():
            for conn in conns:
                conn.close()
        self._idle.clear()

    # -- public API -----------------------------------------------------------
    async def get(self, url: str,
                  headers: Optional[Headers] = None) -> FetchResult:
        return await self.request(Request(method="GET", url=url,
                                          headers=headers or Headers()))

    async def request(self, request: Request) -> FetchResult:
        """One fetch, with a capped-exponential-backoff retry budget.

        Retryable failures (timeouts, connection drops) are re-attempted
        up to ``max_retries`` times with deterministic jitter; whatever
        failure survives the budget propagates to the caller.
        """
        if self._closed:
            raise HttpError("client is closed")
        tracer = self.tracer
        rspan = tracer.begin(
            "http.request", "http",
            args={"url": request.url, "method": request.method}) \
            if tracer.enabled else None
        attempt = 0
        while True:
            try:
                result = await self._request_once(request)
                result.attempts = attempt + 1
                if rspan is not None:
                    rspan.annotate(
                        status=result.response.status,
                        attempts=result.attempts,
                        reused_connection=result.timing.reused_connection,
                        connect_s=result.timing.connect_s).end()
                return result
            except _RETRYABLE as exc:
                if attempt >= self.max_retries:
                    if rspan is not None:
                        rspan.set("error", type(exc).__name__).end()
                    raise
                backoff_s = backoff_delay(
                    attempt, self.backoff_base_s, self.backoff_cap_s,
                    self.retry_seed, request.url)
                if rspan is not None:
                    tracer.instant("http.retry", "http", parent=rspan,
                                   args={"attempt": attempt,
                                         "error": type(exc).__name__,
                                         "backoff_s": backoff_s})
                await asyncio.sleep(backoff_s)
                self.retries += 1
                attempt += 1

    async def _request_once(self, request: Request) -> FetchResult:
        host, port, origin_form = self._split(request.url)
        key = (host, port)
        semaphore = self._limits.setdefault(
            key, asyncio.Semaphore(self.connections_per_origin))
        wire_request = request.copy()
        wire_request.url = origin_form
        wire_request.headers.setdefault(
            "Host", host if port == 80 else f"{host}:{port}")
        async with semaphore:
            start = time.monotonic()
            conn, reused = await self._acquire(key)
            connect_done = time.monotonic()
            try:
                response = await asyncio.wait_for(
                    self._exchange(conn, wire_request),
                    timeout=self.timeout_s)
            except asyncio.TimeoutError:
                conn.close()
                raise RequestTimeout(f"{request.method} {request.url}")
            except (ConnectionClosed, ConnectionResetError,
                    BrokenPipeError):
                conn.close()
                if reused:
                    # Stale pooled connection: retry once on a fresh one.
                    conn, _ = await self._new_connection(key)
                    try:
                        response = await asyncio.wait_for(
                            self._exchange(conn, wire_request),
                            timeout=self.timeout_s)
                    except asyncio.TimeoutError:
                        conn.close()
                        raise RequestTimeout(
                            f"{request.method} {request.url}")
                else:
                    raise
            done = time.monotonic()
            if (response.headers.get("Connection") or "").lower() == "close":
                conn.close()
            else:
                self._idle.setdefault(key, []).append(conn)
        timing = FetchTiming(start=start, connect_done=connect_done,
                             response_done=done,
                             reused_connection=reused)
        return FetchResult(response=response, timing=timing)

    # -- internals --------------------------------------------------------------
    @staticmethod
    def _split(url: str) -> tuple[str, int, str]:
        parts = urlsplit(url)
        if parts.scheme not in ("http", ""):
            raise HttpError(f"unsupported scheme in {url!r} "
                            "(real-socket path is plain HTTP)")
        if not parts.hostname:
            raise HttpError(f"URL without host: {url!r}")
        origin_form = parts.path or "/"
        if parts.query:
            origin_form += "?" + parts.query
        return parts.hostname, parts.port or 80, origin_form

    async def _acquire(self, key: tuple[str, int]) \
            -> tuple[_PooledConnection, bool]:
        idle = self._idle.get(key, [])
        while idle:
            conn = idle.pop()
            if not conn.writer.is_closing():
                return conn, True
            conn.close()
        return await self._new_connection(key)

    async def _new_connection(self, key: tuple[str, int]) \
            -> tuple[_PooledConnection, bool]:
        host, port = key
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.timeout_s)
        return _PooledConnection(reader=reader, writer=writer), False

    @staticmethod
    async def _exchange(conn: _PooledConnection,
                        request: Request) -> Response:
        conn.writer.write(serialize_request(request))
        await conn.writer.drain()
        return await read_response(conn.reader,
                                   request_method=request.method)
