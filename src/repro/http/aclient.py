"""Real asyncio HTTP/1.1 client with per-origin connection pooling.

Mirrors what a browser's network stack gives a page: persistent
connections, a per-origin concurrency cap, and timing for each exchange —
enough to measure request latency in the real-socket integration path.

Two overload-symmetry features pair with the server's admission control
(:mod:`repro.http.aserver`):

``Retry-After`` honouring
    A ``503``/``408`` response carrying a parseable ``Retry-After``
    header is the server *telling* the client when to come back; the
    client sleeps exactly that hint (capped) and retries, ahead of the
    generic capped-exponential backoff schedule.  Without the header
    the response is an answer and is returned as-is.

per-origin circuit breaker
    Consecutive failures (transport errors, shed ``503``s, ``408``s)
    trip a :class:`CircuitBreaker` from *closed* to *open*: further
    requests to that origin raise :class:`~repro.http.errors.CircuitOpen`
    without touching the wire, so a retry storm cannot amplify an
    overload.  After a deterministic, seeded-jitter open interval one
    probe is allowed through (*half-open*); success closes the breaker,
    failure re-opens it.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional
from urllib.parse import urlsplit

from ..netsim.faults import backoff_delay, deterministic_draw
from ..obs.trace import NULL_TRACER
from ..obs.tracecontext import (TRACEPARENT_HEADER, TRACESTATE_HEADER,
                                format_traceparent, format_tracestate)
from .errors import (CircuitOpen, ConnectionClosed, HttpError,
                     RequestTimeout)
from .headers import Headers
from .messages import Request, Response
from .wire import read_response, serialize_request

__all__ = ["AsyncHttpClient", "CircuitBreaker", "FetchTiming",
           "FetchResult"]

#: browsers open at most this many parallel connections per origin
DEFAULT_CONNECTIONS_PER_ORIGIN = 6

#: failures worth a fresh attempt: silence (timeout) or a broken pipe.
#: HTTP error *responses* are never retried here — they are answers —
#: except 503/408 bearing an explicit Retry-After hint (see above).
_RETRYABLE = (RequestTimeout, ConnectionClosed, ConnectionResetError,
              BrokenPipeError)

#: statuses that count as overload signals for the breaker and that may
#: carry an honourable Retry-After hint
_OVERLOAD_STATUSES = (503, 408)


class CircuitBreaker:
    """Per-origin three-state breaker: closed -> open -> half-open.

    ``threshold`` consecutive failures trip it open; :meth:`allow` then
    refuses until ``open_s`` (jittered deterministically from ``seed``
    and the trip ordinal, span [1x, 2x)) has elapsed on ``clock``, at
    which point exactly one probe passes (half-open).  The probe's
    success closes the breaker; its failure re-opens it with a fresh
    jitter draw.  Everything is deterministic given (seed, key, trip
    ordinal), so retry-storm experiments replay exactly.
    """

    __slots__ = ("threshold", "open_s", "seed", "key", "clock",
                 "state", "failures", "opens", "_opened_at", "_open_for")

    def __init__(self, threshold: int = 5, open_s: float = 1.0,
                 seed: int = 0, key: str = "",
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.open_s = open_s
        self.seed = seed
        self.key = key
        self.clock = clock
        self.state = "closed"
        #: consecutive failures since the last success
        self.failures = 0
        #: times the breaker tripped open (jitter ordinal)
        self.opens = 0
        self._opened_at = 0.0
        self._open_for = 0.0

    def allow(self) -> bool:
        """May a request go to the wire right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self._opened_at >= self._open_for:
                self.state = "half_open"  # this caller is the probe
                return True
            return False
        return False  # half_open: the single probe is already out

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = "open"
        self.opens += 1
        self._opened_at = self.clock()
        self._open_for = self.open_s * (
            1.0 + deterministic_draw(self.seed, "breaker", self.key,
                                     self.opens))


@dataclass(frozen=True)
class FetchTiming:
    """Wall-clock timing of one exchange (seconds)."""

    start: float
    connect_done: float
    response_done: float
    reused_connection: bool

    @property
    def total_s(self) -> float:
        return self.response_done - self.start

    @property
    def connect_s(self) -> float:
        return self.connect_done - self.start


@dataclass
class FetchResult:
    response: Response
    timing: FetchTiming
    #: wire attempts this fetch took (1 = no retries)
    attempts: int = 1


@dataclass
class _PooledConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    created_at: float = field(default_factory=time.monotonic)

    def close(self) -> None:
        self.writer.close()


class AsyncHttpClient:
    """Pooled HTTP client.

    Usage::

        async with AsyncHttpClient() as client:
            result = await client.get("http://127.0.0.1:8080/index.html")
    """

    def __init__(self,
                 connections_per_origin: int = DEFAULT_CONNECTIONS_PER_ORIGIN,
                 timeout_s: float = 30.0,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 retry_seed: int = 0,
                 honor_retry_after: bool = True,
                 retry_after_cap_s: float = 30.0,
                 breaker_threshold: Optional[int] = 5,
                 breaker_open_s: float = 1.0,
                 breaker_clock: Callable[[], float] = time.monotonic,
                 tracer=None):
        self.timeout_s = timeout_s
        #: spans land on the wall clock ("http" category)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.connections_per_origin = connections_per_origin
        #: extra attempts after the first fails (timeouts, broken pipes);
        #: the free same-request retry on a stale *pooled* connection
        #: does not consume this budget
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: seeds the deterministic backoff and breaker jitter
        #: (reproducible timings)
        self.retry_seed = retry_seed
        #: sleep a shed response's Retry-After hint (capped) and retry,
        #: instead of returning the 503/408 straight away
        self.honor_retry_after = honor_retry_after
        self.retry_after_cap_s = retry_after_cap_s
        #: consecutive per-origin failures before the breaker opens;
        #: ``None`` disables the breaker entirely
        self.breaker_threshold = breaker_threshold
        self.breaker_open_s = breaker_open_s
        self.breaker_clock = breaker_clock
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self._idle: dict[tuple[str, int], list[_PooledConnection]] = {}
        self._limits: dict[tuple[str, int], asyncio.Semaphore] = {}
        self._closed = False
        #: attempts re-issued after a retryable failure (diagnostics)
        self.retries = 0
        #: retries that slept a server Retry-After hint instead of the
        #: generic backoff schedule
        self.retries_after_hint = 0
        #: requests refused locally because a breaker was open
        self.circuit_open_rejections = 0

    async def __aenter__(self) -> "AsyncHttpClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        for conns in self._idle.values():
            for conn in conns:
                conn.close()
        self._idle.clear()

    def breaker_for(self, url: str) -> Optional[CircuitBreaker]:
        """The breaker guarding ``url``'s origin (None when disabled)."""
        if self.breaker_threshold is None:
            return None
        host, port, _ = self._split(url)
        return self._breaker((host, port))

    def _breaker(self, key: tuple[str, int]) -> Optional[CircuitBreaker]:
        if self.breaker_threshold is None:
            return None
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.breaker_threshold,
                open_s=self.breaker_open_s, seed=self.retry_seed,
                key=f"{key[0]}:{key[1]}", clock=self.breaker_clock)
            self._breakers[key] = breaker
        return breaker

    # -- public API -----------------------------------------------------------
    async def get(self, url: str,
                  headers: Optional[Headers] = None) -> FetchResult:
        return await self.request(Request(method="GET", url=url,
                                          headers=headers or Headers()))

    async def request(self, request: Request) -> FetchResult:
        """One fetch, with a capped-exponential-backoff retry budget.

        Retryable failures (timeouts, connection drops) are re-attempted
        up to ``max_retries`` times with deterministic jitter; a 503/408
        carrying ``Retry-After`` sleeps the server's hint instead.
        Whatever failure survives the budget propagates to the caller;
        an un-hinted error response is returned as the answer it is.
        Raises :class:`CircuitOpen` without touching the wire while the
        origin's breaker is open.
        """
        if self._closed:
            raise HttpError("client is closed")
        host, port, _ = self._split(request.url)
        breaker = self._breaker((host, port))
        tracer = self.tracer
        rspan = tracer.begin(
            "http.request", "http",
            args={"url": request.url, "method": request.method}) \
            if tracer.enabled else None
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                self.circuit_open_rejections += 1
                if rspan is not None:
                    rspan.set("error", "CircuitOpen").end()
                raise CircuitOpen(
                    f"circuit open for {host}:{port} "
                    f"({breaker.failures} consecutive failures)")
            try:
                result = await self._request_once(
                    request,
                    trace_headers=self._trace_headers(rspan, attempt)
                    if rspan is not None else None)
            except _RETRYABLE as exc:
                if breaker is not None:
                    breaker.record_failure()
                if attempt >= self.max_retries:
                    if rspan is not None:
                        rspan.set("error", type(exc).__name__).end()
                    raise
                backoff_s = backoff_delay(
                    attempt, self.backoff_base_s, self.backoff_cap_s,
                    self.retry_seed, request.url)
                if rspan is not None:
                    tracer.instant("http.retry", "http", parent=rspan,
                                   args={"attempt": attempt,
                                         "error": type(exc).__name__,
                                         "backoff_s": backoff_s})
                await asyncio.sleep(backoff_s)
                self.retries += 1
                attempt += 1
                continue
            status = result.response.status
            if status in _OVERLOAD_STATUSES:
                if breaker is not None:
                    breaker.record_failure()
                hint_s = self._retry_after_s(result.response)
                if self.honor_retry_after and hint_s is not None \
                        and attempt < self.max_retries:
                    if rspan is not None:
                        tracer.instant("http.retry", "http", parent=rspan,
                                       args={"attempt": attempt,
                                             "status": status,
                                             "retry_after_s": hint_s})
                    await asyncio.sleep(hint_s)
                    self.retries += 1
                    self.retries_after_hint += 1
                    attempt += 1
                    continue
            elif breaker is not None:
                breaker.record_success()
            result.attempts = attempt + 1
            if rspan is not None:
                rspan.annotate(
                    status=status,
                    attempts=result.attempts,
                    reused_connection=result.timing.reused_connection,
                    connect_s=result.timing.connect_s).end()
            return result

    def _retry_after_s(self, response: Response) -> Optional[float]:
        """The capped Retry-After hint in seconds, or None.

        Only the delta-seconds form is honoured (the HTTP-date form is
        treated as absent — the generic answer path applies).
        """
        raw = response.headers.get("Retry-After")
        if raw is None:
            return None
        try:
            seconds = float(raw.strip())
        except ValueError:
            return None
        if seconds < 0:
            return None
        return min(seconds, self.retry_after_cap_s)

    def _trace_headers(self, rspan, attempt: int) -> dict:
        """W3C trace-context headers for one wire attempt.

        Rebuilt per attempt so ``tracestate`` carries the retry ordinal:
        a server sees ``repro=attempt:2`` and knows this is the same
        logical request (same ``traceparent`` parent-id) on its third
        try.
        """
        return {
            TRACEPARENT_HEADER: format_traceparent(
                rspan.trace_id, self.tracer.pid, rspan.span_id),
            TRACESTATE_HEADER: format_tracestate(attempt),
        }

    async def _request_once(self, request: Request,
                            trace_headers: Optional[dict] = None
                            ) -> FetchResult:
        host, port, origin_form = self._split(request.url)
        key = (host, port)
        semaphore = self._limits.setdefault(
            key, asyncio.Semaphore(self.connections_per_origin))
        wire_request = request.copy()
        wire_request.url = origin_form
        wire_request.headers.setdefault(
            "Host", host if port == 80 else f"{host}:{port}")
        if trace_headers:
            for name, value in trace_headers.items():
                wire_request.headers.set(name, value)
        async with semaphore:
            start = time.monotonic()
            conn, reused = await self._acquire(key)
            connect_done = time.monotonic()
            try:
                response = await asyncio.wait_for(
                    self._exchange(conn, wire_request),
                    timeout=self.timeout_s)
            except asyncio.TimeoutError:
                conn.close()
                raise RequestTimeout(f"{request.method} {request.url}")
            except (ConnectionClosed, ConnectionResetError,
                    BrokenPipeError):
                conn.close()
                if reused:
                    # Stale pooled connection: retry once on a fresh one.
                    conn, _ = await self._new_connection(key)
                    try:
                        response = await asyncio.wait_for(
                            self._exchange(conn, wire_request),
                            timeout=self.timeout_s)
                    except asyncio.TimeoutError:
                        conn.close()
                        raise RequestTimeout(
                            f"{request.method} {request.url}")
                else:
                    raise
            done = time.monotonic()
            if (response.headers.get("Connection") or "").lower() == "close":
                conn.close()
            else:
                self._idle.setdefault(key, []).append(conn)
        timing = FetchTiming(start=start, connect_done=connect_done,
                             response_done=done,
                             reused_connection=reused)
        return FetchResult(response=response, timing=timing)

    # -- internals --------------------------------------------------------------
    @staticmethod
    def _split(url: str) -> tuple[str, int, str]:
        parts = urlsplit(url)
        if parts.scheme not in ("http", ""):
            raise HttpError(f"unsupported scheme in {url!r} "
                            "(real-socket path is plain HTTP)")
        if not parts.hostname:
            raise HttpError(f"URL without host: {url!r}")
        origin_form = parts.path or "/"
        if parts.query:
            origin_form += "?" + parts.query
        return parts.hostname, parts.port or 80, origin_form

    async def _acquire(self, key: tuple[str, int]) \
            -> tuple[_PooledConnection, bool]:
        idle = self._idle.get(key, [])
        while idle:
            conn = idle.pop()
            if not conn.writer.is_closing():
                return conn, True
            conn.close()
        return await self._new_connection(key)

    async def _new_connection(self, key: tuple[str, int]) \
            -> tuple[_PooledConnection, bool]:
        host, port = key
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.timeout_s)
        return _PooledConnection(reader=reader, writer=writer), False

    @staticmethod
    async def _exchange(conn: _PooledConnection,
                        request: Request) -> Response:
        conn.writer.write(serialize_request(request))
        await conn.writer.drain()
        return await read_response(conn.reader,
                                   request_method=request.method)
