"""Cache-Control directive parsing (RFC 9111 §5.2).

Parses the directives this reproduction's caching logic consumes:
``no-store``, ``no-cache``, ``max-age``, ``s-maxage``, ``must-revalidate``,
``private``, ``public``, ``immutable``, ``stale-while-revalidate``.
Unknown directives are retained verbatim (they must be ignored, not
rejected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CacheControl", "parse_cache_control"]


@dataclass(frozen=True)
class CacheControl:
    """A parsed Cache-Control header value."""

    no_store: bool = False
    no_cache: bool = False
    max_age: Optional[int] = None
    s_maxage: Optional[int] = None
    must_revalidate: bool = False
    private: bool = False
    public: bool = False
    immutable: bool = False
    stale_while_revalidate: Optional[int] = None
    #: directives we don't interpret, name -> value (None for valueless)
    extensions: tuple[tuple[str, Optional[str]], ...] = field(
        default_factory=tuple)

    def __str__(self) -> str:
        parts: list[str] = []
        if self.no_store:
            parts.append("no-store")
        if self.no_cache:
            parts.append("no-cache")
        if self.max_age is not None:
            parts.append(f"max-age={self.max_age}")
        if self.s_maxage is not None:
            parts.append(f"s-maxage={self.s_maxage}")
        if self.must_revalidate:
            parts.append("must-revalidate")
        if self.private:
            parts.append("private")
        if self.public:
            parts.append("public")
        if self.immutable:
            parts.append("immutable")
        if self.stale_while_revalidate is not None:
            parts.append(
                f"stale-while-revalidate={self.stale_while_revalidate}")
        for name, value in self.extensions:
            parts.append(name if value is None else f"{name}={value}")
        return ", ".join(parts)

    @property
    def is_cacheable(self) -> bool:
        """Whether a shared-nothing private cache may store the response."""
        return not self.no_store


def _parse_delta_seconds(raw: str, directive: str) -> int:
    """Parse a delta-seconds argument; negative/garbage handled leniently.

    RFC 9111 says caches should treat unparsable delta-seconds as either 0
    or infinity depending on the directive; we follow the conservative
    reading (0) so a malformed max-age never extends freshness.
    """
    raw = raw.strip().strip('"')
    try:
        value = int(raw)
    except ValueError:
        return 0
    if value < 0:
        return 0
    # Cap per RFC 9111 §1.2.2 recommendation (2**31 seconds).
    return min(value, 2 ** 31)


def parse_cache_control(value: str) -> CacheControl:
    """Parse a Cache-Control field value.

    >>> cc = parse_cache_control("no-cache, max-age=300")
    >>> cc.no_cache, cc.max_age
    (True, 300)
    >>> parse_cache_control("No-Store").no_store
    True
    """
    fields: dict[str, object] = {}
    extensions: list[tuple[str, Optional[str]]] = []
    for part in _split_directives(value):
        if "=" in part:
            name, _, arg = part.partition("=")
        else:
            name, arg = part, None
        name = name.strip().lower()
        if not name:
            continue
        if name == "no-store":
            fields["no_store"] = True
        elif name == "no-cache":
            fields["no_cache"] = True
        elif name == "max-age":
            fields["max_age"] = _parse_delta_seconds(arg or "", name)
        elif name == "s-maxage":
            fields["s_maxage"] = _parse_delta_seconds(arg or "", name)
        elif name == "must-revalidate":
            fields["must_revalidate"] = True
        elif name == "private":
            fields["private"] = True
        elif name == "public":
            fields["public"] = True
        elif name == "immutable":
            fields["immutable"] = True
        elif name == "stale-while-revalidate":
            fields["stale_while_revalidate"] = _parse_delta_seconds(
                arg or "", name)
        else:
            extensions.append(
                (name, arg.strip() if arg is not None else None))
    return CacheControl(extensions=tuple(extensions), **fields)


def _split_directives(value: str) -> list[str]:
    """Split on commas outside quoted strings."""
    parts = []
    current: list[str] = []
    in_quotes = False
    for ch in value:
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
        elif ch == "," and not in_quotes:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return [p for p in parts if p]
