"""Case-insensitive HTTP header multimap.

Semantics follow RFC 9110: field names compare case-insensitively, a field
may occur multiple times, and for list-valued fields the occurrences join
with commas.  Insertion order is preserved (it matters on the wire and for
deterministic tests).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

__all__ = ["Headers"]

_RawItems = Union["Headers", Mapping[str, str],
                  Iterable[tuple[str, str]], None]


class Headers:
    """An ordered, case-insensitive multimap of header fields.

    >>> h = Headers({"Content-Type": "text/html"})
    >>> h["content-type"]
    'text/html'
    >>> h.add("Set-Cookie", "a=1"); h.add("Set-Cookie", "b=2")
    >>> h.get_all("set-cookie")
    ['a=1', 'b=2']
    """

    __slots__ = ("_items",)

    def __init__(self, items: _RawItems = None):
        self._items: list[tuple[str, str]] = []
        if items is None:
            return
        if isinstance(items, Headers):
            self._items = list(items._items)
        elif isinstance(items, Mapping):
            for name, value in items.items():
                self.add(name, value)
        else:
            for name, value in items:
                self.add(name, value)

    # -- mutation ----------------------------------------------------------
    def add(self, name: str, value: str) -> None:
        """Append an occurrence of ``name`` (keeps existing ones)."""
        self._items.append((self._check_name(name), self._check_value(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all occurrences of ``name`` with a single value."""
        self.remove(name)
        self.add(name, value)

    def setdefault(self, name: str, value: str) -> str:
        existing = self.get(name)
        if existing is not None:
            return existing
        self.add(name, value)
        return value

    def replace(self, name: str, value: str) -> None:
        """Set ``name`` to ``value`` *keeping its position* in field order.

        ``set`` removes then appends, which moves the field to the end;
        on the wire (and for byte-identity checks) order matters.  The
        first occurrence is rewritten in place, later duplicates are
        dropped; an absent field is appended like ``set``.
        """
        key = name.lower()
        replaced = False
        items: list[tuple[str, str]] = []
        for n, v in self._items:
            if n.lower() == key:
                if replaced:
                    continue
                items.append((n, self._check_value(value)))
                replaced = True
            else:
                items.append((n, v))
        self._items = items
        if not replaced:
            self.add(name, value)

    def remove(self, name: str) -> None:
        """Drop every occurrence of ``name`` (no error if absent)."""
        key = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != key]

    def extend(self, items: _RawItems) -> None:
        for name, value in Headers(items).items():
            self.add(name, value)

    # -- access ------------------------------------------------------------
    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First occurrence of ``name``, or ``default``."""
        key = name.lower()
        for n, v in self._items:
            if n.lower() == key:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        """Every occurrence of ``name``, in insertion order."""
        key = name.lower()
        return [v for n, v in self._items if n.lower() == key]

    def get_joined(self, name: str) -> Optional[str]:
        """All occurrences joined with ``", "`` (RFC 9110 list semantics)."""
        values = self.get_all(name)
        if not values:
            return None
        return ", ".join(values)

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def names(self) -> list[str]:
        seen: dict[str, str] = {}
        for n, _ in self._items:
            seen.setdefault(n.lower(), n)
        return list(seen.values())

    def copy(self) -> "Headers":
        return Headers(self)

    # -- dunder ------------------------------------------------------------
    def __getitem__(self, name: str) -> str:
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    def __setitem__(self, name: str, value: str) -> None:
        self.set(name, value)

    def __delitem__(self, name: str) -> None:
        if name.lower() not in (n.lower() for n, _ in self._items):
            raise KeyError(name)
        self.remove(name)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return (n for n, _ in self._items)

    def __eq__(self, other: object) -> bool:
        """Order-insensitive, name-case-insensitive equality."""
        if not isinstance(other, Headers):
            return NotImplemented
        mine = sorted((n.lower(), v) for n, v in self._items)
        theirs = sorted((n.lower(), v) for n, v in other._items)
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {v!r}" for n, v in self._items)
        return f"Headers({inner})"

    # -- wire accounting ----------------------------------------------------
    def wire_size(self) -> int:
        """Bytes these headers occupy serialized (``Name: value\\r\\n``)."""
        return sum(len(n) + 2 + len(v.encode("utf-8", "replace")) + 2
                   for n, v in self._items)

    # -- validation ----------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not name or any(c in name for c in " \t\r\n:"):
            raise ValueError(f"invalid header field name: {name!r}")
        return name

    @staticmethod
    def _check_value(value: str) -> str:
        if not isinstance(value, str):
            raise TypeError(f"header value must be str, got {type(value)}")
        if "\r" in value or "\n" in value:
            raise ValueError("header value contains CR/LF (smuggling risk)")
        return value.strip()
