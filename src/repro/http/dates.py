"""HTTP-date parsing and formatting (RFC 9110 §5.6.7).

The preferred format is IMF-fixdate (``Sun, 06 Nov 1994 08:49:37 GMT``);
parsers must also accept the obsolete RFC 850 and asctime forms.  All
values are UTC.  We convert to/from POSIX timestamps (floats), which is
what the simulator clock speaks.
"""

from __future__ import annotations

import calendar
import time
from email.utils import parsedate_to_datetime

__all__ = ["format_http_date", "parse_http_date"]

_IMF_FIXDATE = "%a, %d %b %Y %H:%M:%S GMT"
_RFC850 = "%A, %d-%b-%y %H:%M:%S GMT"
_ASCTIME = "%a %b %d %H:%M:%S %Y"


def format_http_date(timestamp: float) -> str:
    """Format a POSIX timestamp as an IMF-fixdate string.

    >>> format_http_date(784111777.0)
    'Sun, 06 Nov 1994 08:49:37 GMT'
    """
    return time.strftime(_IMF_FIXDATE, time.gmtime(timestamp))


def parse_http_date(value: str) -> float:
    """Parse any of the three HTTP date formats to a POSIX timestamp.

    Raises :class:`ValueError` on malformed input.

    >>> parse_http_date('Sun, 06 Nov 1994 08:49:37 GMT')
    784111777.0
    >>> parse_http_date('Sunday, 06-Nov-94 08:49:37 GMT')
    784111777.0
    >>> parse_http_date('Sun Nov  6 08:49:37 1994')
    784111777.0
    """
    value = value.strip()
    for fmt in (_IMF_FIXDATE, _RFC850, _ASCTIME):
        try:
            parsed = time.strptime(value, fmt)
        except ValueError:
            continue
        return float(calendar.timegm(parsed))
    # email.utils is more lenient (e.g. numeric timezones); last resort.
    try:
        dt = parsedate_to_datetime(value)
    except (TypeError, ValueError, IndexError):
        raise ValueError(f"unparsable HTTP date: {value!r}") from None
    if dt.tzinfo is None:
        return float(calendar.timegm(dt.timetuple()))
    return dt.timestamp()
