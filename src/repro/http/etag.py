"""Entity tags (RFC 9110 §8.8.3) and conditional-request evaluation.

ETags are the currency of this whole reproduction: the origin generates
them, ``If-None-Match`` carries them back, and CacheCatalyst staples fresh
ones onto the base HTML so the client never has to ask.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["ETag", "parse_etag", "parse_etag_list", "etag_for_content"]


@dataclass(frozen=True, order=True)
class ETag:
    """A parsed entity tag.

    ``opaque`` is the tag content without quotes; ``weak`` marks ``W/``
    prefixed tags.
    """

    opaque: str
    weak: bool = False

    def __post_init__(self) -> None:
        if '"' in self.opaque or "\\" in self.opaque:
            raise ValueError(f"invalid etag characters in {self.opaque!r}")

    def __str__(self) -> str:
        quoted = f'"{self.opaque}"'
        return f"W/{quoted}" if self.weak else quoted

    # -- comparison functions (RFC 9110 §8.8.3.2) ---------------------------
    def strong_compare(self, other: "ETag") -> bool:
        """True when both are strong and their opaque tags match."""
        return (not self.weak and not other.weak
                and self.opaque == other.opaque)

    def weak_compare(self, other: "ETag") -> bool:
        """True when opaque tags match, ignoring weakness."""
        return self.opaque == other.opaque


def parse_etag(value: str) -> ETag:
    """Parse one entity-tag production.

    >>> parse_etag('W/"abc"')
    ETag(opaque='abc', weak=True)
    >>> str(parse_etag('"xyz"'))
    '"xyz"'
    """
    text = value.strip()
    weak = False
    if text.startswith(("W/", "w/")):
        weak = True
        text = text[2:]
    if len(text) < 2 or not (text.startswith('"') and text.endswith('"')):
        raise ValueError(f"malformed entity tag: {value!r}")
    return ETag(opaque=text[1:-1], weak=weak)


def parse_etag_list(value: str) -> Optional[list[ETag]]:
    """Parse an ``If-None-Match`` value.

    Returns ``None`` for the wildcard ``*`` (matches any representation),
    otherwise the list of tags.  Malformed members raise ValueError.

    >>> parse_etag_list('"a", W/"b"')
    [ETag(opaque='a', weak=False), ETag(opaque='b', weak=True)]
    >>> parse_etag_list("*") is None
    True
    """
    text = value.strip()
    if text == "*":
        return None
    tags = []
    for part in _split_list(text):
        tags.append(parse_etag(part))
    if not tags:
        raise ValueError("empty If-None-Match list")
    return tags


def _split_list(text: str) -> Iterable[str]:
    """Split a comma-separated etag list, respecting quoted strings."""
    parts = []
    depth_quote = False
    current = []
    for ch in text:
        if ch == '"':
            depth_quote = not depth_quote
            current.append(ch)
        elif ch == "," and not depth_quote:
            if "".join(current).strip():
                parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if "".join(current).strip():
        parts.append("".join(current).strip())
    return parts


def etag_for_content(body: bytes, weak: bool = False) -> ETag:
    """Derive a deterministic strong ETag from response bytes.

    Uses a truncated SHA-256, the common origin-server scheme (nginx and
    Caddy derive theirs from mtime+size; a content hash is stabler for a
    simulated corpus whose "files" have no mtimes).
    """
    digest = hashlib.sha256(body).hexdigest()[:16]
    return ETag(opaque=digest, weak=weak)


def if_none_match_matches(header_value: str, current: ETag) -> bool:
    """Evaluate ``If-None-Match`` against the current representation.

    Per RFC 9110 the *weak* comparison is used for If-None-Match.  Returns
    True when the condition matches, i.e. the server should answer
    ``304 Not Modified`` to a GET.
    """
    tags = parse_etag_list(header_value)
    if tags is None:  # wildcard
        return True
    return any(tag.weak_compare(current) for tag in tags)


__all__.append("if_none_match_matches")
