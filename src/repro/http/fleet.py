"""Multi-process ``SO_REUSEPORT``-sharded serving front.

One :class:`AsyncHttpServer` process tops out at whatever a single
event loop can admit; production origins scale past that by running N
worker processes that all ``bind()`` the same ``(host, port)`` with
``SO_REUSEPORT``, letting the kernel spread incoming connections across
them.  :class:`ServerFleet` is that front:

- the parent reserves a port (binding it with ``SO_REUSEPORT`` itself,
  so the workers can join the group), spawns N workers, and waits for
  each to report ready over a control pipe;
- every worker builds the *same* deterministic application (same seed →
  byte-identical site) behind its own hardened ``AsyncHttpServer``
  (admission caps, shedding, slow-loris guard — see
  :mod:`repro.http.aserver`) and its own
  :class:`~repro.obs.metrics.MetricsRegistry`;
- :meth:`ServerFleet.stats` polls each worker for its counters plus its
  registry ``dump()`` and folds the dumps together through
  :meth:`MetricsRegistry.merge` — the same mergeable wire format the
  process-pool experiment fan-out ships, so fleet-wide
  p50/p90/p99 and shed totals come out of one snapshot;
- :meth:`ServerFleet.stop` drains every worker gracefully
  (``stop(drain_s=...)`` inside the worker) and reaps the processes.

Workers also install SIGTERM/SIGINT handlers that trigger the same
graceful drain, so a Ctrl-C or a supervisor's TERM lands as a drain,
not an abort.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Optional

from ..obs.export import span_to_dict
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.timeseries import diff_dumps

__all__ = ["FleetConfig", "ServerFleet", "build_app", "reuseport_socket",
           "HAVE_REUSEPORT"]

logger = get_logger("http.fleet")

#: whether this platform can shard one port across processes
HAVE_REUSEPORT = hasattr(socket, "SO_REUSEPORT")

#: worker-side drain used for signal-initiated stops
_SIGNAL_DRAIN_S = 5.0


def reuseport_socket(host: str, port: int) -> socket.socket:
    """A bound (not yet listening) TCP socket with ``SO_REUSEPORT`` set.

    Every member of a reuseport group must set the flag before
    ``bind()``; the parent uses one of these to reserve the port and
    each worker uses one to join the group.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if HAVE_REUSEPORT:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


@dataclass(frozen=True)
class FleetConfig:
    """Everything a worker needs to build and serve its shard.

    Must stay picklable: it crosses the ``spawn`` boundary verbatim.
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    seed: int = 42
    #: which application the shards serve: "catalyst" (the full origin)
    #: or "static" (a fixed small body — isolates the serving tier)
    app: str = "catalyst"
    latency_s: float = 0.0
    time_scale: float = 1.0
    max_inflight: Optional[int] = None
    max_connections: Optional[int] = None
    max_requests_per_connection: Optional[int] = None
    keepalive_timeout_s: float = 15.0
    header_read_timeout_s: float = 5.0
    retry_after_s: float = 1.0
    backlog: int = 100
    median_resources: int = 15
    #: give each worker a wall-clock Tracer; spans are collected over
    #: the control pipe ("spans" command) as portable pid-stamped dicts
    trace: bool = False
    #: stream periodic MetricsRegistry *delta* dumps over the control
    #: pipe every this many seconds (None = off).  The parent's
    #: TimeSeriesRecorder buckets them into the live time series.
    telemetry_interval_s: Optional[float] = None


def build_app(config: FleetConfig):
    """``(handler, stats_source)`` for one shard of ``config.app``.

    Deterministic in ``config.seed``: every shard serves byte-identical
    content, which is what makes the kernel's connection spreading
    invisible to clients.
    """
    if config.app == "static":
        body = bytes((config.seed + i) % 256 for i in range(2048))

        def handler(request):
            from .messages import Response
            return Response(body=body, headers={
                "Content-Type": "application/octet-stream",
                "Cache-Control": "no-store"})

        return handler, None
    if config.app == "catalyst":
        # Imported lazily: repro.server imports repro.http, so a
        # module-level import here would be circular.
        from ..server.adapter import as_async_handler
        from ..server.catalyst import CatalystConfig, CatalystServer
        from ..server.site import OriginSite
        from ..workload.sitegen import generate_site
        site = OriginSite(
            generate_site(f"https://fleet{config.seed}.example",
                          seed=config.seed,
                          median_resources=config.median_resources),
            materialize_fully=True)
        # The serving tier exposes cache verdicts (Cache-Status) — the
        # DES paths keep it off to preserve byte-identity invariants.
        catalyst = CatalystServer(site,
                                  CatalystConfig(emit_cache_status=True))
        return (as_async_handler(catalyst, time_scale=config.time_scale),
                catalyst.stats)
    raise ValueError(f"unknown fleet app {config.app!r}")


def _worker_server(config: FleetConfig, metrics: MetricsRegistry,
                   tracer=None):
    """The hardened per-shard server (not yet started)."""
    from .aserver import AsyncHttpServer
    handler, stats_source = build_app(config)
    return AsyncHttpServer(
        handler, host=config.host, latency_s=config.latency_s,
        keepalive_timeout_s=config.keepalive_timeout_s,
        header_read_timeout_s=config.header_read_timeout_s,
        max_connections=config.max_connections,
        max_inflight=config.max_inflight,
        max_requests_per_connection=config.max_requests_per_connection,
        retry_after_s=config.retry_after_s,
        shed_seed=config.seed, backlog=config.backlog,
        tracer=tracer, metrics=metrics, stats_source=stats_source)


def _worker_stats(server, metrics: MetricsRegistry) -> dict:
    """One worker's snapshot in the mergeable wire format."""
    return {
        "pid": os.getpid(),
        "requests_served": server.requests_served,
        "admission": server.admission_stats(),
        "metrics": metrics.dump(),
    }


def _send_telemetry_delta(conn, metrics: MetricsRegistry,
                          started: float, state: dict) -> None:
    """Diff the registry against the last shipped dump and send it."""
    current = metrics.dump()
    delta = diff_dumps(current, state["previous"])
    state["previous"] = current
    if delta:
        _try_send(conn, {"telemetry": True, "pid": os.getpid(),
                         "t_s": time.monotonic() - started,
                         "delta": delta})


async def _telemetry_loop(conn, metrics: MetricsRegistry,
                          interval_s: float, started: float,
                          state: dict) -> None:
    """Periodically ship this worker's registry *delta* to the parent.

    Messages are tagged ``telemetry: True`` so the parent can divert
    them out of the request/response command protocol.  ``t_s`` is
    seconds since the worker became ready — all workers start together,
    so the parent's interval bucketing lines worker streams up.
    ``state["previous"]`` is shared with the stop path, which flushes
    one final delta after the drain so the last partial interval (and
    anything served during the drain itself) still reconciles.
    """
    while True:
        await asyncio.sleep(interval_s)
        _send_telemetry_delta(conn, metrics, started, state)


async def _worker_serve(conn, config: FleetConfig) -> None:
    loop = asyncio.get_running_loop()
    metrics = MetricsRegistry()
    tracer = None
    if config.trace:
        from ..obs.trace import Tracer
        tracer = Tracer()
    server = _worker_server(config, metrics, tracer=tracer)
    sock = reuseport_socket(config.host, config.port)
    await server.start(sock=sock)

    stop_requested = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_requested.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    readable = asyncio.Event()
    loop.add_reader(conn.fileno(), readable.set)
    conn.send({"ready": True, "pid": os.getpid(), "port": server.port})
    telemetry_task = None
    telemetry_state = {"previous": {}}
    telemetry_started = time.monotonic()

    async def _finish_telemetry() -> None:
        """Stop the ticker and ship the final (post-drain) delta."""
        nonlocal telemetry_task
        if telemetry_task is None:
            return
        telemetry_task.cancel()
        try:
            await telemetry_task
        except asyncio.CancelledError:
            pass
        telemetry_task = None
        _send_telemetry_delta(conn, metrics, telemetry_started,
                              telemetry_state)

    if config.telemetry_interval_s is not None:
        telemetry_task = asyncio.ensure_future(_telemetry_loop(
            conn, metrics, config.telemetry_interval_s,
            telemetry_started, telemetry_state))
    try:
        while True:
            read_wait = asyncio.ensure_future(readable.wait())
            stop_wait = asyncio.ensure_future(stop_requested.wait())
            await asyncio.wait({read_wait, stop_wait},
                               return_when=asyncio.FIRST_COMPLETED)
            for waiter in (read_wait, stop_wait):
                waiter.cancel()
            if stop_requested.is_set():
                # Signal-initiated drain (Ctrl-C / supervisor TERM).
                report = await server.stop(drain_s=_SIGNAL_DRAIN_S)
                await _finish_telemetry()
                _try_send(conn, {"stopped": True, "pid": os.getpid(),
                                 **report})
                return
            readable.clear()
            while conn.poll():
                message = conn.recv()
                command = message.get("cmd")
                if command == "stats":
                    _try_send(conn, _worker_stats(server, metrics))
                elif command == "spans":
                    records = [] if tracer is None else \
                        [span_to_dict(span, pid=os.getpid())
                         for span in tracer.spans()]
                    if tracer is not None and message.get("clear"):
                        tracer.clear()
                    _try_send(conn, {"pid": os.getpid(),
                                     "spans": records})
                elif command == "stop":
                    report = await server.stop(
                        drain_s=message.get("drain_s", 0.0))
                    await _finish_telemetry()
                    _try_send(conn, {"stopped": True, "pid": os.getpid(),
                                     **report})
                    return
                else:
                    _try_send(conn, {"error": f"unknown cmd {command!r}"})
    finally:
        if telemetry_task is not None:
            telemetry_task.cancel()
            try:
                await telemetry_task
            except asyncio.CancelledError:
                pass
        loop.remove_reader(conn.fileno())
        if server._server is not None:
            await server.stop()


def _try_send(conn, payload: dict) -> None:
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # parent went away
        pass


def _worker_main(conn, config: FleetConfig) -> None:
    """Entry point of one spawned shard process."""
    try:
        asyncio.run(_worker_serve(conn, config))
    except (KeyboardInterrupt, EOFError):  # pragma: no cover
        pass
    finally:
        conn.close()


class _Worker:
    __slots__ = ("process", "conn", "pid", "port", "pending")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.pid: Optional[int] = None
        self.port: Optional[int] = None
        #: non-telemetry messages read while scanning for telemetry
        self.pending: deque = deque()


class ServerFleet:
    """N ``SO_REUSEPORT`` worker processes behind one (host, port).

    Usage::

        with ServerFleet(FleetConfig(shards=4, app="static")) as fleet:
            ... drive fleet.base_url ...
            stats = fleet.stats()      # merged across shards
        # __exit__ drains and reaps the workers

    ``start``/``stop`` are synchronous (process management); the traffic
    they serve is handled inside each worker's own event loop.
    """

    def __init__(self, config: Optional[FleetConfig] = None, **overrides):
        base = config if config is not None else FleetConfig()
        self.config = replace(base, **overrides) if overrides else base
        if self.config.shards < 1:
            raise ValueError(f"shards must be >= 1, "
                             f"got {self.config.shards}")
        if self.config.shards > 1 and not HAVE_REUSEPORT:
            raise RuntimeError(
                "SO_REUSEPORT unavailable on this platform; "
                "only shards=1 is possible")
        self.port: Optional[int] = None
        self._workers: list[_Worker] = []
        #: drain used when __exit__ stops the fleet
        self.drain_s = 1.0
        #: telemetry messages diverted out of the command protocol,
        #: consumed by :meth:`drain_telemetry`
        self._telemetry: list[dict] = []

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError("fleet not started")
        return f"http://{self.config.host}:{self.port}"

    @property
    def shards(self) -> int:
        return self.config.shards

    def start(self, ready_timeout_s: float = 30.0) -> "ServerFleet":
        if self._workers:
            raise RuntimeError("fleet already started")
        context = multiprocessing.get_context("spawn")
        # Reserve the port: parent binds (never listens) with
        # SO_REUSEPORT, workers join the same group.  The placeholder
        # stays open until every worker is ready so the port cannot be
        # lost to another process in between.
        placeholder = reuseport_socket(self.config.host, self.config.port)
        self.port = placeholder.getsockname()[1]
        worker_config = replace(self.config, port=self.port)
        try:
            for _ in range(self.config.shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child_conn, worker_config),
                    daemon=True)
                process.start()
                child_conn.close()
                self._workers.append(_Worker(process, parent_conn))
            for worker in self._workers:
                if not worker.conn.poll(ready_timeout_s):
                    raise RuntimeError(
                        f"fleet worker pid={worker.process.pid} not "
                        f"ready within {ready_timeout_s}s")
                message = worker.conn.recv()
                if not message.get("ready"):
                    raise RuntimeError(
                        f"fleet worker reported {message!r}")
                worker.pid = message["pid"]
                worker.port = message["port"]
            logger.info("fleet-started", shards=self.config.shards,
                        port=self.port, app=self.config.app)
        except BaseException:
            self._reap(terminate=True)
            raise
        finally:
            placeholder.close()
        return self

    def stats(self, timeout_s: float = 10.0) -> dict:
        """Merged fleet snapshot: per-worker counters + one registry.

        Worker metric dumps fold through
        :meth:`MetricsRegistry.merge`, so histograms (request latency)
        aggregate exactly like the experiment fan-out's fleet metrics.
        """
        merged = self.merged_metrics(timeout_s=timeout_s)
        per_worker = self._last_worker_stats
        totals = {"requests_served": 0, "shed_503": 0,
                  "shed_connections": 0, "timeouts_408": 0,
                  "inflight": 0, "connections": 0}
        for stats in per_worker:
            totals["requests_served"] += stats["requests_served"]
            admission = stats["admission"]
            for key in ("shed_503", "shed_connections", "timeouts_408",
                        "inflight", "connections"):
                totals[key] += admission[key]
        return {"shards": len(per_worker), "totals": totals,
                "workers": per_worker, "metrics": merged.snapshot()}

    def merged_metrics(self, timeout_s: float = 10.0) -> MetricsRegistry:
        """One registry holding every worker's dump, merged."""
        merged = MetricsRegistry()
        self._last_worker_stats: list[dict] = []
        for worker in self._workers:
            worker.conn.send({"cmd": "stats"})
        for worker in self._workers:
            stats = self._recv_response(worker, timeout_s, "stats")
            self._last_worker_stats.append(stats)
            merged.merge(stats["metrics"])
        return merged

    def _recv_response(self, worker: _Worker, timeout_s: float,
                       what: str) -> dict:
        """The next *command response* from ``worker``.

        Telemetry messages interleave freely with command responses on
        the same pipe; anything tagged ``telemetry`` is diverted into
        the buffer :meth:`drain_telemetry` serves instead of being
        mistaken for the answer.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            if worker.pending:
                return worker.pending.popleft()
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not worker.conn.poll(remaining):
                raise RuntimeError(
                    f"fleet worker pid={worker.pid} did not answer "
                    f"{what} within {timeout_s}s")
            message = worker.conn.recv()
            if message.get("telemetry"):
                self._telemetry.append(message)
                continue
            return message

    def drain_telemetry(self) -> list[dict]:
        """All telemetry messages received so far (consumes them).

        Sweeps every worker pipe without blocking, then empties the
        diverted-message buffer.  Each message is
        ``{"telemetry": True, "pid", "t_s", "delta"}`` — feed
        ``(delta, t_s, pid)`` straight into a
        :class:`~repro.obs.timeseries.TimeSeriesRecorder`.
        """
        for worker in self._workers:
            try:
                while worker.conn.poll(0):
                    message = worker.conn.recv()
                    if message.get("telemetry"):
                        self._telemetry.append(message)
                    else:
                        worker.pending.append(message)
            except (EOFError, OSError):
                continue
        drained, self._telemetry = self._telemetry, []
        return drained

    def collect_spans(self, timeout_s: float = 10.0,
                      clear: bool = True) -> list[dict]:
        """Every worker's finished spans as portable pid-stamped dicts.

        The records merge directly with driver-side spans into one
        :func:`~repro.obs.export.to_chrome_trace` call — pid
        namespacing keeps worker span IDs from aliasing.  Workers not
        started with ``trace=True`` contribute nothing.
        """
        spans: list[dict] = []
        for worker in self._workers:
            worker.conn.send({"cmd": "spans", "clear": clear})
        for worker in self._workers:
            answer = self._recv_response(worker, timeout_s, "spans")
            spans.extend(answer.get("spans", []))
        return spans

    def stop(self, drain_s: Optional[float] = None,
             reap_timeout_s: float = 10.0) -> list[dict]:
        """Gracefully drain every worker; returns their drain reports."""
        if not self._workers:
            return []
        drain = self.drain_s if drain_s is None else drain_s
        reports: list[dict] = []
        for worker in self._workers:
            try:
                worker.conn.send({"cmd": "stop", "drain_s": drain})
            except (BrokenPipeError, OSError):
                pass  # already stopping (signal) or dead; reap below
        deadline = drain + reap_timeout_s
        for worker in self._workers:
            try:
                reports.append(
                    self._recv_response(worker, deadline, "stop"))
            except (EOFError, OSError, RuntimeError):
                pass
        self._reap(terminate=False, timeout_s=reap_timeout_s)
        logger.info("fleet-stopped", reports=len(reports))
        return reports

    def _reap(self, terminate: bool, timeout_s: float = 5.0) -> None:
        for worker in self._workers:
            if terminate and worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=timeout_s)
            worker.conn.close()
        self._workers.clear()

    def __enter__(self) -> "ServerFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
