"""Real asyncio HTTP/1.1 server with overload protection.

Serves the same handler objects the discrete-event stack uses
(``handler(request) -> Response``, sync or async), over actual TCP sockets
with keep-alive.  Used by the integration tests and the runnable examples
to demonstrate the system end-to-end outside the simulator.

An optional ``latency_s`` injects a one-way artificial delay before each
response, emulating a distant origin on localhost.

Beyond the basic request loop, the server is *overload-safe*:

admission control
    ``max_connections`` caps concurrent connections (excess connections
    are answered ``503`` and closed before entering the serve loop), and
    ``max_inflight`` caps concurrently *dispatched* requests — the
    high-water mark past which further requests are **load-shed** with
    ``503 + Retry-After`` instead of queueing without bound.  The
    ``Retry-After`` hint is deterministic (seeded by ``shed_seed``) but
    jittered per shed ordinal, so a thundering herd that retries on the
    hint re-arrives spread out instead of in lockstep.
    ``max_requests_per_connection`` guards against a single keep-alive
    peer pipelining forever: after N responses the connection is closed
    (``Connection: close``), recycling the slot.

graceful drain
    :meth:`stop` accepts ``drain_s``.  The listener closes immediately,
    idle keep-alive connections are reclaimed at once, in-flight
    requests get up to ``drain_s`` seconds to finish (their responses
    carry ``Connection: close``), and stragglers are hard-cancelled at
    the deadline.  ``stop`` returns only once every connection task has
    completed — no lingering tasks survive it.

The debug endpoint ``GET /__repro/stats`` is answered ahead of
admission-level request shedding (an overloaded server must still be
observable); it reports the admission gauges and shed counters alongside
the tracer/metrics snapshots, and ``?dump=1`` adds the mergeable
:meth:`~repro.obs.metrics.MetricsRegistry.dump` wire format so a scraper
can fold many shards into one fleet view.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import socket as socket_module
import time
from typing import Awaitable, Callable, Optional, Union

from ..netsim.faults import deterministic_draw
from ..obs.log import get_logger
from ..obs.promtext import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.promtext import to_prometheus_text
from ..obs.trace import NULL_TRACER
from ..obs.tracecontext import extract_context
from .errors import HttpError, ProtocolError
from .headers import Headers
from .messages import Request, Response
from .wire import (read_request_start, read_request_tail,
                   serialize_response)

__all__ = ["AsyncHttpServer", "Handler", "STATS_PATH", "METRICS_PATH"]

logger = get_logger("http.aserver")

Handler = Callable[[Request], Union[Response, Awaitable[Response]]]

#: built-in debug endpoint exposing counters, tracer state, and metrics
STATS_PATH = "/__repro/stats"

#: Prometheus text-format exposition of the metrics registry
METRICS_PATH = "/__repro/metrics"


class _Connection:
    """Book-keeping for one live connection task (drain needs it)."""

    __slots__ = ("task", "writer", "busy", "served")

    def __init__(self, task: asyncio.Task, writer: asyncio.StreamWriter):
        self.task = task
        self.writer = writer
        #: True from "request line arrived" to "response written" — the
        #: window the drain phase must respect
        self.busy = False
        #: responses written on this connection (pipelining guard)
        self.served = 0


class AsyncHttpServer:
    """A minimal but correct HTTP/1.1 origin server.

    Usage::

        server = AsyncHttpServer(handler)
        await server.start()          # binds 127.0.0.1 on a free port
        ... use server.port ...
        await server.stop()           # or stop(drain_s=5.0) to drain

    Also usable as an async context manager.  Admission caps
    (``max_connections``, ``max_inflight``,
    ``max_requests_per_connection``) default to ``None`` — unlimited,
    the pre-hardening behaviour.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, latency_s: float = 0.0,
                 keepalive_timeout_s: float = 15.0,
                 header_read_timeout_s: float = 5.0,
                 max_connections: Optional[int] = None,
                 max_inflight: Optional[int] = None,
                 max_requests_per_connection: Optional[int] = None,
                 retry_after_s: float = 1.0,
                 shed_seed: int = 0,
                 backlog: int = 100,
                 tracer=None, metrics=None, stats_source=None):
        self.handler = handler
        self.host = host
        self.port = port
        self.latency_s = latency_s
        self.keepalive_timeout_s = keepalive_timeout_s
        #: deadline for the rest of the message once a request line has
        #: arrived; a peer that trickles headers slower than this is a
        #: slow-loris and gets a 408 instead of a held connection
        self.header_read_timeout_s = header_read_timeout_s
        #: concurrent-connection cap; excess connections are shed with
        #: ``503 + Retry-After`` and closed without entering the loop
        self.max_connections = max_connections
        #: concurrently dispatched requests past which further requests
        #: are shed ``503 + Retry-After`` (the inflight high-water mark)
        self.max_inflight = max_inflight
        #: keep-alive responses per connection before a forced
        #: ``Connection: close`` (pipelining guard); ``None`` = unlimited
        self.max_requests_per_connection = max_requests_per_connection
        #: base Retry-After hint; actual hints span [base, 2*base),
        #: jittered deterministically from ``shed_seed`` per shed ordinal
        self.retry_after_s = retry_after_s
        self.shed_seed = shed_seed
        #: listen(2) backlog — the bounded accept queue
        self.backlog = backlog
        #: wall-clock request spans (category "http")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: a :class:`repro.obs.MetricsRegistry`; surfaced by the stats
        #: endpoint when provided
        self.metrics = metrics
        #: zero-arg callable returning extra stats (e.g. the wrapped
        #: application server's ``stats()``) merged into the endpoint
        self.stats_source = stats_source
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: set[_Connection] = set()
        #: requests answered by the handler or stats endpoint (sheds and
        #: 408s are counted separately, so shed + served sums to offered)
        self.requests_served = 0
        #: connections closed with 408 for stalling mid-message
        self.timeouts_408 = 0
        #: requests shed 503 at the inflight high-water mark
        self.shed_503 = 0
        #: connections shed 503 at the connection cap
        self.shed_connections = 0
        #: currently dispatched requests (the gauge the cap watches)
        self.inflight = 0
        #: True from stop() until the next start(); new work is refused
        self.draining = False
        #: wall seconds the last stop() took (0.0 before any stop)
        self.last_drain_s = 0.0

    async def start(self, sock: Optional[socket_module.socket] = None
                    ) -> "AsyncHttpServer":
        """Bind and serve.  ``sock`` overrides host/port with an already
        bound socket (how the SO_REUSEPORT fleet shares one port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self.draining = False
        if sock is not None:
            sock.listen(self.backlog)
            self._server = await asyncio.start_server(
                self._serve_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port,
                backlog=self.backlog)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, drain_s: float = 0.0) -> dict:
        """Stop accepting and tear down, gracefully when ``drain_s > 0``.

        Sequence: close the listener; reclaim idle keep-alive
        connections immediately; give busy connections up to ``drain_s``
        seconds to write their in-flight response (which carries
        ``Connection: close``); hard-cancel whatever remains; await
        every connection task.  Returns a report dict —
        ``{"connections", "hard_cancelled", "drain_s"}`` — and leaves
        zero lingering tasks behind.
        """
        if self._server is None:
            return {"connections": 0, "hard_cancelled": 0, "drain_s": 0.0}
        started = time.perf_counter()
        self.draining = True
        self._server.close()
        # Idle connections are parked waiting for a request line that
        # must never be answered now — reclaim them without ceremony.
        for conn in list(self._conns):
            if not conn.busy:
                conn.task.cancel()
        tasks = {conn.task for conn in self._conns}
        hard_cancelled = 0
        if tasks:
            if drain_s > 0:
                _done, pending = await asyncio.wait(tasks, timeout=drain_s)
            else:
                pending = {task for task in tasks if not task.done()}
            hard_cancelled = sum(1 for conn in self._conns
                                 if conn.busy and conn.task in pending)
            for task in pending:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        # Only now: on Python >= 3.12 wait_closed() also waits for
        # connection handlers, so it must come after they are dealt with.
        await self._server.wait_closed()
        self._server = None
        self.last_drain_s = time.perf_counter() - started
        self._gauge_set("http.drain_s", self.last_drain_s)
        return {"connections": len(tasks),
                "hard_cancelled": hard_cancelled,
                "drain_s": self.last_drain_s}

    async def __aenter__(self) -> "AsyncHttpServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def connections(self) -> int:
        """Live connections (admitted, not yet torn down)."""
        return len(self._conns)

    # -- connection loop -----------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn = _Connection(asyncio.current_task(), writer)
        if self.draining or (
                self.max_connections is not None
                and len(self._conns) >= self.max_connections):
            # Connection-level admission: refuse before the serve loop,
            # so a connection storm cannot exhaust tasks or memory.
            self.shed_connections += 1
            self._counter_inc("http.shed_connections")
            try:
                await self._write(writer, self._shed_response(close=True))
                # Drain whatever request bytes the peer already sent:
                # closing with unread data makes the kernel RST the
                # connection, discarding our buffered 503.
                writer.write_eof()
                await asyncio.wait_for(reader.read(65536), timeout=0.25)
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.TimeoutError):
                pass
            finally:
                await self._close_writer(writer)
            return
        self._conns.add(conn)
        self._gauge_set("http.connections", len(self._conns))
        try:
            await self._connection_loop(conn, reader, writer)
        except (ConnectionResetError, BrokenPipeError, HttpError):
            return
        except asyncio.CancelledError:
            # loop teardown or drain while parked on keep-alive: close
            # quietly (returning, not re-raising, keeps task.exception()
            # clean)
            return
        finally:
            self._conns.discard(conn)
            self._gauge_set("http.connections", len(self._conns))
            await self._close_writer(writer)

    async def _connection_loop(self, conn: _Connection,
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        while True:
            # Idle phase: waiting for a request line.  A keep-alive
            # connection going quiet is normal; close silently.
            conn.busy = False
            try:
                line = await asyncio.wait_for(
                    read_request_start(reader),
                    timeout=self.keepalive_timeout_s)
            except asyncio.TimeoutError:
                return
            except ProtocolError as exc:
                await self._write(writer, Response(
                    status=400, body=str(exc).encode(),
                    headers={"Connection": "close"}))
                return
            if line is None:  # clean EOF
                return
            # Committed phase: a request line arrived, so the rest
            # of the message must follow promptly.  A stall here is
            # a slow-loris holding a server slot open: answer 408
            # and reclaim the connection.
            conn.busy = True
            try:
                request = await asyncio.wait_for(
                    read_request_tail(reader, line),
                    timeout=self.header_read_timeout_s)
            except asyncio.TimeoutError:
                self.timeouts_408 += 1
                self._counter_inc("http.timeouts_408")
                await self._write(writer, Response(
                    status=408, body=b"request timed out",
                    headers={"Connection": "close"}))
                return
            except ProtocolError as exc:
                await self._write(writer, Response(
                    status=400, body=str(exc).encode(),
                    headers={"Connection": "close"}))
                return
            shed = False
            if request.method == "GET" and request.path == STATS_PATH:
                # The ops endpoints answer even under overload —
                # an unobservable saturated server cannot be debugged.
                response = self._serve_stats(request)
            elif request.method == "GET" and request.path == METRICS_PATH:
                response = self._serve_metrics()
            elif self.max_inflight is not None \
                    and self.inflight >= self.max_inflight:
                # Request-level load shedding at the high-water mark:
                # a bounded, fast 503 beats an unbounded queue.
                shed = True
                self.shed_503 += 1
                self._counter_inc("http.shed_503")
                response = self._shed_response(close=False)
            else:
                self.inflight += 1
                self._gauge_set("http.inflight", self.inflight)
                try:
                    response = await self._dispatch(request)
                    if self.latency_s > 0:
                        # injected service time occupies an inflight
                        # slot — it is the request being worked on, so
                        # it must count against the admission ceiling
                        await asyncio.sleep(self.latency_s)
                finally:
                    self.inflight -= 1
                    self._gauge_set("http.inflight", self.inflight)
            conn.served += 1
            keep_alive = (self._keep_alive(request)
                          and not self.draining
                          and (self.max_requests_per_connection is None
                               or conn.served
                               < self.max_requests_per_connection))
            if not keep_alive:
                response.headers.set("Connection", "close")
            await self._write(writer, response)
            if not shed:
                self.requests_served += 1
            conn.busy = False
            if not keep_alive:
                return

    def _shed_response(self, close: bool) -> Response:
        headers = Headers({"Retry-After": str(self._retry_after_hint()),
                           "Cache-Control": "no-store"})
        if close:
            headers.set("Connection", "close")
        return Response(status=503, body=b"overloaded; retry later",
                        headers=headers)

    def _retry_after_hint(self) -> int:
        """Whole seconds in [retry_after_s, 2*retry_after_s), jittered
        deterministically per shed ordinal so herd retries de-sync but
        runs stay reproducible."""
        ordinal = self.shed_503 + self.shed_connections
        draw = deterministic_draw(self.shed_seed, "retry-after", ordinal)
        return max(1, round(self.retry_after_s * (1.0 + draw)))

    # -- metrics glue --------------------------------------------------------
    def _counter_inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge_set(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    async def _dispatch(self, request: Request) -> Response:
        tracer = self.tracer
        rspan = None
        if tracer.enabled:
            args = {"method": request.method, "path": request.path}
            remote_parent = None
            context = extract_context(request.headers)
            if context is not None:
                # Parent this span under the client's request span in
                # its process: the merged fleet export draws the edge.
                remote_parent = context.parent_ref
                args["remote_trace_id"] = context.trace_id
                if context.attempt is not None:
                    args["client_attempt"] = context.attempt
            rspan = tracer.begin("server.request", "http", args=args,
                                 remote_parent=remote_parent)
        metrics = self.metrics
        started = time.perf_counter() if metrics is not None else 0.0
        try:
            result = self.handler(request)
            if inspect.isawaitable(result):
                result = await result
        except Exception as exc:
            logger.error("handler-raised", method=request.method,
                         url=request.url, error=type(exc).__name__)
            if rspan is not None:
                rspan.set("error", type(exc).__name__).end()
            result = Response(status=500, body=b"internal server error")
            self._observe(metrics, started, result.status)
            return result
        if not isinstance(result, Response):
            logger.error("bad-handler-result", got=type(result).__name__)
            if rspan is not None:
                rspan.set("error", "bad-handler-result").end()
            result = Response(status=500, body=b"bad handler result")
            self._observe(metrics, started, result.status)
            return result
        if rspan is not None:
            rspan.set("status", result.status)
            cache_status = result.headers.get("Cache-Status")
            if cache_status is not None:
                # surface the origin's cache verdict (hit/miss/which
                # hot-path cache) on the span, the way "Hidden Web
                # Caches Discovery" has to infer it from the outside
                rspan.set("cache_status", cache_status)
            rspan.end()
        self._observe(metrics, started, result.status)
        return result

    @staticmethod
    def _observe(metrics, started: float, status: int) -> None:
        """Time one dispatch into the registry (no-op without one)."""
        if metrics is None:
            return
        elapsed_ms = (time.perf_counter() - started) * 1e3
        metrics.histogram("http.request_ms").observe(elapsed_ms)
        metrics.counter("http.requests").inc()
        metrics.counter(f"http.status.{status // 100}xx").inc()

    def admission_stats(self) -> dict:
        """The admission/shedding state in one plain dict."""
        return {
            "inflight": self.inflight,
            "connections": len(self._conns),
            "max_inflight": self.max_inflight,
            "max_connections": self.max_connections,
            "max_requests_per_connection":
                self.max_requests_per_connection,
            "shed_503": self.shed_503,
            "shed_connections": self.shed_connections,
            "timeouts_408": self.timeouts_408,
            "draining": self.draining,
        }

    def _serve_stats(self, request: Optional[Request] = None) -> Response:
        """``GET /__repro/stats``: one JSON snapshot of everything known.

        Always available (the counters cost nothing); tracer and metrics
        sections appear only as informative as what was wired in.  When
        a registry is wired, every histogram snapshot carries
        p50/p90/p99 (sketch-backed once past the raw-sample cap), so
        the endpoint reports distributions, not just counts.  With
        ``?dump=1`` the payload adds ``metrics_dump`` — the mergeable
        registry wire format for fleet aggregation.
        """
        payload: dict = {
            "requests_served": self.requests_served,
            "timeouts_408": self.timeouts_408,
            "admission": self.admission_stats(),
            "tracer": self.tracer.summary(),
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
            if request is not None and "dump=1" in request.query:
                payload["metrics_dump"] = self.metrics.dump()
        if self.stats_source is not None:
            try:
                payload["app"] = self.stats_source()
            except Exception as exc:
                payload["app_error"] = type(exc).__name__
        body = json.dumps(payload, sort_keys=True).encode()
        return Response(status=200, body=body, headers=Headers({
            "Content-Type": "application/json",
            "Cache-Control": "no-store"}))

    def _serve_metrics(self) -> Response:
        """``GET /__repro/metrics``: Prometheus text exposition.

        Serves whatever registry is wired in (empty exposition without
        one — a scraper sees a healthy target with no series, not an
        error).  Answered ahead of load shedding, like the stats
        endpoint: the scrape must survive the overload it is measuring.
        """
        text = to_prometheus_text(self.metrics) \
            if self.metrics is not None else ""
        return Response(status=200, body=text.encode(),
                        headers=Headers({
                            "Content-Type": PROM_CONTENT_TYPE,
                            "Cache-Control": "no-store"}))

    @staticmethod
    def _keep_alive(request: Request) -> bool:
        conn = (request.headers.get("Connection") or "").lower()
        if request.http_version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    @staticmethod
    async def _write(writer: asyncio.StreamWriter,
                     response: Response) -> None:
        writer.write(serialize_response(response))
        await writer.drain()

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
