"""Real asyncio HTTP/1.1 server.

Serves the same handler objects the discrete-event stack uses
(``handler(request) -> Response``, sync or async), over actual TCP sockets
with keep-alive.  Used by the integration tests and the runnable examples
to demonstrate the system end-to-end outside the simulator.

An optional ``latency_s`` injects a one-way artificial delay before each
response, emulating a distant origin on localhost.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import time
from typing import Awaitable, Callable, Optional, Union

from ..obs.log import get_logger
from ..obs.trace import NULL_TRACER
from .errors import HttpError, ProtocolError
from .headers import Headers
from .messages import Request, Response
from .wire import (read_request_start, read_request_tail,
                   serialize_response)

__all__ = ["AsyncHttpServer", "Handler", "STATS_PATH"]

logger = get_logger("http.aserver")

Handler = Callable[[Request], Union[Response, Awaitable[Response]]]

#: built-in debug endpoint exposing counters, tracer state, and metrics
STATS_PATH = "/__repro/stats"


class AsyncHttpServer:
    """A minimal but correct HTTP/1.1 origin server.

    Usage::

        server = AsyncHttpServer(handler)
        await server.start()          # binds 127.0.0.1 on a free port
        ... use server.port ...
        await server.stop()

    Also usable as an async context manager.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, latency_s: float = 0.0,
                 keepalive_timeout_s: float = 15.0,
                 header_read_timeout_s: float = 5.0,
                 tracer=None, metrics=None, stats_source=None):
        self.handler = handler
        self.host = host
        self.port = port
        self.latency_s = latency_s
        self.keepalive_timeout_s = keepalive_timeout_s
        #: deadline for the rest of the message once a request line has
        #: arrived; a peer that trickles headers slower than this is a
        #: slow-loris and gets a 408 instead of a held connection
        self.header_read_timeout_s = header_read_timeout_s
        #: wall-clock request spans (category "http")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: a :class:`repro.obs.MetricsRegistry`; surfaced by the stats
        #: endpoint when provided
        self.metrics = metrics
        #: zero-arg callable returning extra stats (e.g. the wrapped
        #: application server's ``stats()``) merged into the endpoint
        self.stats_source = stats_source
        self._server: Optional[asyncio.base_events.Server] = None
        #: total requests served (diagnostics / tests)
        self.requests_served = 0
        #: connections closed with 408 for stalling mid-message
        self.timeouts_408 = 0

    async def start(self) -> "AsyncHttpServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "AsyncHttpServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection loop -----------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                # Idle phase: waiting for a request line.  A keep-alive
                # connection going quiet is normal; close silently.
                try:
                    line = await asyncio.wait_for(
                        read_request_start(reader),
                        timeout=self.keepalive_timeout_s)
                except asyncio.TimeoutError:
                    return
                except ProtocolError as exc:
                    await self._write(writer, Response(
                        status=400, body=str(exc).encode(),
                        headers={"Connection": "close"}))
                    return
                if line is None:  # clean EOF
                    return
                # Committed phase: a request line arrived, so the rest
                # of the message must follow promptly.  A stall here is
                # a slow-loris holding a server slot open: answer 408
                # and reclaim the connection.
                try:
                    request = await asyncio.wait_for(
                        read_request_tail(reader, line),
                        timeout=self.header_read_timeout_s)
                except asyncio.TimeoutError:
                    self.timeouts_408 += 1
                    await self._write(writer, Response(
                        status=408, body=b"request timed out",
                        headers={"Connection": "close"}))
                    return
                except ProtocolError as exc:
                    await self._write(writer, Response(
                        status=400, body=str(exc).encode(),
                        headers={"Connection": "close"}))
                    return
                response = await self._dispatch(request)
                if self.latency_s > 0:
                    await asyncio.sleep(self.latency_s)
                keep_alive = self._keep_alive(request)
                if not keep_alive:
                    response.headers.set("Connection", "close")
                await self._write(writer, response)
                self.requests_served += 1
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, HttpError):
            return
        except asyncio.CancelledError:
            # loop teardown while parked on keep-alive: close quietly
            # (returning, not re-raising, keeps task.exception() clean)
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        if request.method == "GET" and request.path == STATS_PATH:
            return self._serve_stats()
        tracer = self.tracer
        rspan = tracer.begin(
            "server.request", "http",
            args={"method": request.method, "path": request.path}) \
            if tracer.enabled else None
        metrics = self.metrics
        started = time.perf_counter() if metrics is not None else 0.0
        try:
            result = self.handler(request)
            if inspect.isawaitable(result):
                result = await result
        except Exception as exc:
            logger.error("handler-raised", method=request.method,
                         url=request.url, error=type(exc).__name__)
            if rspan is not None:
                rspan.set("error", type(exc).__name__).end()
            result = Response(status=500, body=b"internal server error")
            self._observe(metrics, started, result.status)
            return result
        if not isinstance(result, Response):
            logger.error("bad-handler-result", got=type(result).__name__)
            if rspan is not None:
                rspan.set("error", "bad-handler-result").end()
            result = Response(status=500, body=b"bad handler result")
            self._observe(metrics, started, result.status)
            return result
        if rspan is not None:
            rspan.set("status", result.status).end()
        self._observe(metrics, started, result.status)
        return result

    @staticmethod
    def _observe(metrics, started: float, status: int) -> None:
        """Time one dispatch into the registry (no-op without one)."""
        if metrics is None:
            return
        elapsed_ms = (time.perf_counter() - started) * 1e3
        metrics.histogram("http.request_ms").observe(elapsed_ms)
        metrics.counter("http.requests").inc()
        metrics.counter(f"http.status.{status // 100}xx").inc()

    def _serve_stats(self) -> Response:
        """``GET /__repro/stats``: one JSON snapshot of everything known.

        Always available (the counters cost nothing); tracer and metrics
        sections appear only as informative as what was wired in.  When
        a registry is wired, every histogram snapshot carries
        p50/p90/p99 (sketch-backed once past the raw-sample cap), so
        the endpoint reports distributions, not just counts.
        """
        payload: dict = {
            "requests_served": self.requests_served,
            "timeouts_408": self.timeouts_408,
            "tracer": self.tracer.summary(),
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
        if self.stats_source is not None:
            try:
                payload["app"] = self.stats_source()
            except Exception as exc:
                payload["app_error"] = type(exc).__name__
        body = json.dumps(payload, sort_keys=True).encode()
        return Response(status=200, body=body, headers=Headers({
            "Content-Type": "application/json",
            "Cache-Control": "no-store"}))

    @staticmethod
    def _keep_alive(request: Request) -> bool:
        conn = (request.headers.get("Connection") or "").lower()
        if request.http_version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    @staticmethod
    async def _write(writer: asyncio.StreamWriter,
                     response: Response) -> None:
        writer.write(serialize_response(response))
        await writer.drain()
