"""HTTP request/response models.

These are plain in-memory message objects shared by every layer: the DES
browser/server use them directly (no sockets), and the asyncio wire codec
serializes/parses them for real-socket integration runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urlsplit

from .cache_control import CacheControl, parse_cache_control
from .etag import ETag, parse_etag
from .headers import Headers

__all__ = ["Request", "Response", "STATUS_REASONS", "status_reason"]

STATUS_REASONS: dict[int, str] = {
    100: "Continue", 101: "Switching Protocols",
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently", 302: "Found", 303: "See Other",
    304: "Not Modified", 307: "Temporary Redirect", 308: "Permanent Redirect",
    400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 406: "Not Acceptable",
    408: "Request Timeout", 409: "Conflict", 410: "Gone",
    412: "Precondition Failed", 413: "Content Too Large",
    414: "URI Too Long", 415: "Unsupported Media Type",
    428: "Precondition Required", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    502: "Bad Gateway", 503: "Service Unavailable",
    504: "Gateway Timeout", 505: "HTTP Version Not Supported",
}


def status_reason(code: int) -> str:
    """Reason phrase for a status code (empty string when unknown)."""
    return STATUS_REASONS.get(code, "")


@dataclass
class Request:
    """An HTTP request.

    ``url`` may be origin-form (``/a.css``) or absolute
    (``https://example.com/a.css``); helpers split it either way.
    """

    method: str = "GET"
    url: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if isinstance(self.headers, (dict, list, tuple)):
            self.headers = Headers(self.headers)

    # -- URL helpers ---------------------------------------------------------
    @property
    def path(self) -> str:
        path = urlsplit(self.url).path
        return path or "/"

    @property
    def query(self) -> str:
        return urlsplit(self.url).query

    @property
    def origin(self) -> Optional[str]:
        """``scheme://host[:port]`` for absolute URLs, else the Host header."""
        parts = urlsplit(self.url)
        if parts.scheme and parts.netloc:
            return f"{parts.scheme}://{parts.netloc}"
        host = self.headers.get("Host")
        return f"https://{host}" if host else None

    # -- conditional-request helpers -----------------------------------------
    @property
    def if_none_match(self) -> Optional[str]:
        return self.headers.get("If-None-Match")

    @property
    def is_conditional(self) -> bool:
        return ("If-None-Match" in self.headers
                or "If-Modified-Since" in self.headers)

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        start = len(self.method) + 1 + len(self.url) + 1 + \
            len(self.http_version) + 2
        return start + self.headers.wire_size() + 2 + len(self.body)

    def copy(self) -> "Request":
        return Request(method=self.method, url=self.url,
                       headers=self.headers.copy(), body=self.body,
                       http_version=self.http_version)

    def __repr__(self) -> str:
        return f"<Request {self.method} {self.url}>"


@dataclass
class Response:
    """An HTTP response."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    http_version: str = "HTTP/1.1"
    reason: str = ""
    #: When the in-memory ``body`` is a small stand-in for a large simulated
    #: resource, this holds the size the resource has *on the wire*.  The
    #: network simulator bills :attr:`transfer_size`; the wire codec always
    #: sends the literal body.
    declared_size: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.headers, (dict, list, tuple)):
            self.headers = Headers(self.headers)
        if not self.reason:
            self.reason = status_reason(self.status)
        if self.declared_size is not None and self.declared_size < 0:
            raise ValueError("declared_size must be non-negative")

    @property
    def transfer_size(self) -> int:
        """Body bytes as billed by the network model."""
        if self.declared_size is not None:
            return self.declared_size
        return len(self.body)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_not_modified(self) -> bool:
        return self.status == 304

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    # -- caching-related accessors --------------------------------------------
    @property
    def etag(self) -> Optional[ETag]:
        raw = self.headers.get("ETag")
        if raw is None:
            return None
        try:
            return parse_etag(raw)
        except ValueError:
            return None

    @property
    def cache_control(self) -> CacheControl:
        raw = self.headers.get_joined("Cache-Control")
        if raw is None:
            return CacheControl()
        return parse_cache_control(raw)

    def wire_size(self) -> int:
        """Approximate serialized size in bytes (headers + body)."""
        start = len(self.http_version) + 1 + 3 + 1 + len(self.reason) + 2
        return start + self.headers.wire_size() + 2 + len(self.body)

    def copy(self) -> "Response":
        return Response(status=self.status, headers=self.headers.copy(),
                        body=self.body, http_version=self.http_version,
                        reason=self.reason, declared_size=self.declared_size)

    def __repr__(self) -> str:
        return (f"<Response {self.status} {self.reason} "
                f"{len(self.body)}B>")
