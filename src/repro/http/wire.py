"""HTTP/1.1 wire codec over asyncio streams.

Serializes :class:`~repro.http.messages.Request`/``Response`` objects and
parses them back from ``asyncio.StreamReader``.  Supports Content-Length
and chunked transfer coding, enforces size limits, and rejects messages
that smell like request smuggling (conflicting length framing).

This module carries the *real-socket* integration path; the discrete-event
experiments never serialize, they hand message objects across directly.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from .errors import ConnectionClosed, MessageTooLarge, ProtocolError
from .headers import Headers
from .messages import Request, Response, status_reason

__all__ = [
    "serialize_request", "serialize_response",
    "read_request", "read_request_start", "read_request_tail",
    "read_response",
    "MAX_START_LINE", "MAX_HEADER_BLOCK", "MAX_BODY",
]

MAX_START_LINE = 8 * 1024
MAX_HEADER_BLOCK = 256 * 1024   # X-Etag-Config headers can be large
MAX_BODY = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def serialize_request(request: Request) -> bytes:
    """Encode a request for the wire, adding Content-Length when needed."""
    headers = request.headers.copy()
    if request.body and "Content-Length" not in headers:
        headers.set("Content-Length", str(len(request.body)))
    lines = [f"{request.method} {request.url} {request.http_version}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + request.body


def serialize_response(response: Response) -> bytes:
    """Encode a response for the wire, adding Content-Length when needed."""
    headers = response.headers.copy()
    has_body = _response_may_have_body(response.status)
    if has_body and "Content-Length" not in headers \
            and "Transfer-Encoding" not in headers:
        headers.set("Content-Length", str(len(response.body)))
    reason = response.reason or status_reason(response.status)
    lines = [f"{response.http_version} {response.status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + (response.body if has_body else b"")


def _response_may_have_body(status: int) -> bool:
    return not (100 <= status < 200 or status in (204, 304))


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed before start of message")
        raise ProtocolError("truncated line") from exc
    except asyncio.LimitOverrunError as exc:
        raise MessageTooLarge("line exceeds stream limit") from exc
    if len(line) > limit:
        raise MessageTooLarge(f"line of {len(line)} bytes exceeds {limit}")
    return line[:-2]


async def _read_headers(reader: asyncio.StreamReader) -> Headers:
    headers = Headers()
    total = 0
    while True:
        line = await _read_line(reader, MAX_START_LINE)
        if not line:
            return headers
        total += len(line)
        if total > MAX_HEADER_BLOCK:
            raise MessageTooLarge("header block too large")
        if line[:1] in (b" ", b"\t"):
            raise ProtocolError("obsolete header line folding rejected")
        name, sep, value = line.partition(b":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line[:80]!r}")
        if name != name.strip():
            raise ProtocolError("whitespace around header field name")
        headers.add(name.decode("latin-1"),
                    value.strip().decode("latin-1"))


def _body_framing(headers: Headers) -> tuple[str, int]:
    """Determine framing; rejects smuggling-prone combinations.

    Returns ``("length", n)``, ``("chunked", 0)``, or ``("none", 0)``.
    """
    te = headers.get_joined("Transfer-Encoding")
    cl_values = headers.get_all("Content-Length")
    if te is not None:
        if cl_values:
            raise ProtocolError(
                "both Transfer-Encoding and Content-Length present")
        codings = [c.strip().lower() for c in te.split(",") if c.strip()]
        if codings != ["chunked"]:
            raise ProtocolError(f"unsupported transfer coding: {te!r}")
        return ("chunked", 0)
    if cl_values:
        unique = {v.strip() for v in cl_values}
        if len(unique) != 1:
            raise ProtocolError("conflicting Content-Length values")
        raw = unique.pop()
        if not raw.isdigit():
            raise ProtocolError(f"invalid Content-Length: {raw!r}")
        length = int(raw)
        if length > MAX_BODY:
            raise MessageTooLarge(f"declared body of {length} bytes")
        return ("length", length)
    return ("none", 0)


async def _read_body(reader: asyncio.StreamReader,
                     headers: Headers) -> bytes:
    framing, length = _body_framing(headers)
    if framing == "none":
        return b""
    if framing == "length":
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionClosed("body truncated") from exc
    # chunked
    chunks: list[bytes] = []
    total = 0
    while True:
        size_line = await _read_line(reader, MAX_START_LINE)
        size_text = size_line.split(b";", 1)[0].strip()
        try:
            size = int(size_text, 16)
        except ValueError:
            raise ProtocolError(f"bad chunk size: {size_line[:40]!r}")
        if size < 0:
            raise ProtocolError("negative chunk size")
        total += size
        if total > MAX_BODY:
            raise MessageTooLarge("chunked body too large")
        if size == 0:
            # trailer section: read until blank line
            while True:
                trailer = await _read_line(reader, MAX_START_LINE)
                if not trailer:
                    return b"".join(chunks)
        try:
            chunks.append(await reader.readexactly(size))
            crlf = await reader.readexactly(2)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionClosed("chunk truncated") from exc
        if crlf != b"\r\n":
            raise ProtocolError("chunk missing terminating CRLF")


async def read_request_start(
        reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read just the request line; None on clean EOF before any bytes.

    Split out from :func:`read_request` so a server can apply *two*
    deadlines: a long keep-alive timeout while the connection is idle
    (no bytes yet — closing silently is fine) and a short header-read
    timeout once a request line has committed the peer to sending a
    full header block (a stall there is a slow-loris, answered 408).
    """
    try:
        return await _read_line(reader, MAX_START_LINE)
    except ConnectionClosed:
        return None


async def read_request_tail(reader: asyncio.StreamReader,
                            line: bytes) -> Request:
    """Parse the request line and read the rest of the message."""
    parts = line.decode("latin-1").split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {line[:80]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported version {version!r}")
    if not method.isalpha():
        raise ProtocolError(f"malformed method {method!r}")
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers)
    return Request(method=method, url=target, headers=headers, body=body,
                   http_version=version)


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request; returns None on clean EOF before any bytes."""
    line = await read_request_start(reader)
    if line is None:
        return None
    return await read_request_tail(reader, line)


async def read_response(reader: asyncio.StreamReader,
                        request_method: str = "GET") -> Response:
    """Read one response (framing depends on the request method)."""
    line = await _read_line(reader, MAX_START_LINE)
    parts = line.decode("latin-1").split(" ", 2)
    if len(parts) < 2:
        raise ProtocolError(f"malformed status line: {line[:80]!r}")
    version = parts[0]
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported version {version!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(f"non-numeric status: {parts[1]!r}")
    reason = parts[2] if len(parts) == 3 else ""
    headers = await _read_headers(reader)
    if request_method == "HEAD" or not _response_may_have_body(status):
        body = b""
    else:
        body = await _read_body(reader, headers)
    return Response(status=status, headers=headers, body=body,
                    http_version=version, reason=reason)
