"""Sustained-load chaos harness for the hardened serving tier.

Drives a swarm of concurrent asyncio clients — each its own
:class:`~repro.http.aclient.AsyncHttpClient` with one keep-alive
connection, a retry budget, ``Retry-After`` honouring, and a circuit
breaker — against a sharded :class:`~repro.http.fleet.ServerFleet`
origin (or an in-process :class:`~repro.http.aserver.AsyncHttpServer`
for fast unit runs), optionally misbehaving per a seeded
:class:`~repro.netsim.faults.FaultPlan`.

What it measures (the *serving-tier* questions, not the cache ones):

- **sustained rps** — completed ``200`` responses per measured second;
  with an inflight cap ``K`` and per-request service latency ``L`` the
  admission ceiling is ``shards * K / L``, and the harness reports how
  close the tier gets under honest overload;
- **shed behaviour** — how many requests were answered ``503 +
  Retry-After`` rather than queued, and what fraction of offered load
  that was (server-side counters are authoritative; client-side retries
  consume the hints);
- **drain** — how long the final graceful stop took and whether any
  connection had to be hard-cancelled;
- **tail latency** — p50/p90/p99 of successful responses, through the
  two-tier :class:`~repro.obs.metrics.Histogram` so arbitrarily long
  runs stay bounded in memory.

Fault presets map onto client-observable misbehaviour: ``LOSS`` skips
the send and burns a watchdog wait, ``STALL`` delays the send,
``RESET``/``TRUNCATE`` kill the client's pooled connection so the next
exchange pays a reconnect.  All decisions come from the deterministic
``(seed, url, attempt)`` hash, so chaos runs replay exactly.

Per-interval series (sent/ok/shed per ``interval_s`` bucket) land in the
result *and* in the metrics registry, next to the fleet's merged
``http.*`` instruments.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..http.aclient import AsyncHttpClient
from ..http.aserver import AsyncHttpServer
from ..http.errors import CircuitOpen, HttpError
from ..http.fleet import FleetConfig, ServerFleet, build_app
from ..http.messages import Request
from ..netsim.faults import (FaultKind, FaultPlan, captive_portal,
                             flaky_5g, lossy_wifi)
from ..obs.export import span_to_dict
from ..obs.log import get_logger
from ..obs.manifest import build_manifest, stamp
from ..obs.metrics import MetricsRegistry
from ..obs.slo import Objective, SloReport
from ..obs.slo import evaluate as evaluate_slo
from ..obs.timeseries import TimeSeriesRecorder, diff_dumps
from ..obs.trace import Tracer
from .report import format_table

__all__ = ["LoadTestResult", "ScalingResult", "run_load_test",
           "run_scaling_bench", "format_load_test", "format_scaling",
           "load_test_payload", "scaling_bench_payload", "FAULT_PRESETS"]

logger = get_logger("experiments.load_test")

#: name -> FaultPlan factory (seeded) for the chaos presets
FAULT_PRESETS = {"flaky_5g": flaky_5g, "lossy_wifi": lossy_wifi,
                 "captive_portal": captive_portal}

#: client-side wait standing in for a lost request's watchdog timeout
_LOSS_WAIT_S = 0.1

#: cap on client-side stall emulation, so short runs stay short
_STALL_CAP_S = 0.25


@dataclass
class LoadTestResult:
    """One sustained-load run, client- and server-side views combined."""

    shards: int
    clients: int
    duration_s: float
    warmup_s: float
    seed: int
    app: str
    latency_s: float
    max_inflight: Optional[int]
    preset: str
    # client-side, measured window only
    sent: int = 0
    ok: int = 0
    client_shed: int = 0          # 503s that survived the retry budget
    errors: int = 0
    circuit_open: int = 0
    faults_injected: int = 0
    retries_after_hint: int = 0
    latency_ms_p50: float = 0.0
    latency_ms_p90: float = 0.0
    latency_ms_p99: float = 0.0
    # server-side, whole run (authoritative shed accounting)
    served_total: int = 0
    shed_503: int = 0
    shed_connections: int = 0
    timeouts_408: int = 0
    # drain report from the final graceful stop
    drain_s: float = 0.0
    hard_cancelled: int = 0
    #: per-interval {"t_s", "sent", "ok", "shed"} buckets
    series: list = field(default_factory=list)
    metrics_snapshot: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    #: pid-stamped span dicts (driver clients + fleet workers) when the
    #: run was traced; feed straight into ``obs.export.to_chrome_trace``
    spans: list = field(default_factory=list)
    #: per-interval registry snapshots from the telemetry recorder
    timeseries: list = field(default_factory=list)
    #: :class:`~repro.obs.slo.SloReport` when objectives were evaluated
    slo_report: Optional[SloReport] = None

    @property
    def sustained_rps(self) -> float:
        """Completed 200s per measured second."""
        if self.duration_s <= 0:
            return 0.0
        return self.ok / self.duration_s

    @property
    def offered_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.sent / self.duration_s

    @property
    def shed_rate(self) -> float:
        """Server-side: shed / (shed + served) over the whole run."""
        offered = self.shed_503 + self.shed_connections + self.served_total
        if offered == 0:
            return 0.0
        return (self.shed_503 + self.shed_connections) / offered


class _Tallies:
    """Shared mutable counters for the client swarm (single loop — no
    locking needed)."""

    def __init__(self, interval_s: float):
        self.interval_s = interval_s
        self.sent = 0
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.circuit_open = 0
        self.faults = 0
        self.bins: dict[int, dict] = {}

    def record(self, t_s: float, column: str) -> None:
        bucket = self.bins.setdefault(
            int(t_s / self.interval_s),
            {"sent": 0, "ok": 0, "shed": 0})
        bucket[column] += 1

    def series(self) -> list[dict]:
        """Zero-filled interval rows from 0 to the last active bucket.

        A stalled interval (nothing completed — e.g. every client stuck
        in a STALL fault) must appear as a row of zeros, not vanish:
        downstream rate math (``ok / interval_s`` per row) and the
        timeline plot both assume a gapless grid.
        """
        if not self.bins:
            return []
        empty = {"sent": 0, "ok": 0, "shed": 0}
        return [{"t_s": round(index * self.interval_s, 3),
                 **self.bins.get(index, empty)}
                for index in range(max(self.bins) + 1)]


async def _apply_fault(plan: Optional[FaultPlan], url: str, attempt: int,
                       client: AsyncHttpClient,
                       tallies: _Tallies) -> bool:
    """Client-side chaos for one attempt; True = skip the request."""
    if plan is None:
        return False
    decision = plan.decide(url, attempt)
    if decision is None:
        return False
    tallies.faults += 1
    if decision.kind is FaultKind.LOSS:
        await asyncio.sleep(_LOSS_WAIT_S)
        return True
    if decision.kind is FaultKind.STALL:
        await asyncio.sleep(min(decision.stall_s, _STALL_CAP_S))
        return False
    # RESET / TRUNCATE: the connection dies visibly — drop the pooled
    # connection so the next exchange reconnects from scratch.
    for conns in client._idle.values():
        for conn in conns:
            conn.close()
    client._idle.clear()
    return False


async def _client_loop(index: int, base_url: str, paths: Sequence[str],
                       stop_at: float, measure_from: float,
                       plan: Optional[FaultPlan],
                       client_kwargs: dict, latency_hist,
                       tallies: _Tallies) -> AsyncHttpClient:
    loop = asyncio.get_running_loop()
    client = AsyncHttpClient(**client_kwargs)
    attempt = 0
    rotation = 0
    try:
        while loop.time() < stop_at:
            path = paths[(index + rotation) % len(paths)]
            rotation += 1
            url = base_url + path
            skip = await _apply_fault(plan, f"client{index}{url}",
                                      attempt, client, tallies)
            attempt += 1
            if skip:
                continue
            started = loop.time()
            try:
                result = await client.request(Request(url=url))
            except CircuitOpen:
                tallies.circuit_open += 1
                await asyncio.sleep(0.05)
                continue
            except (HttpError, OSError, asyncio.TimeoutError):
                tallies.errors += 1
                continue
            now = loop.time()
            if now < measure_from:
                continue
            tallies.sent += 1
            tallies.record(now - measure_from, "sent")
            if result.response.status == 200:
                tallies.ok += 1
                tallies.record(now - measure_from, "ok")
                latency_hist.observe((now - started) * 1e3)
            elif result.response.status == 503:
                tallies.shed += 1
                tallies.record(now - measure_from, "shed")
            else:
                tallies.errors += 1
    finally:
        await client.close()
    return client


def _resolve_plan(preset: Union[None, str, FaultPlan],
                  seed: int) -> tuple[Optional[FaultPlan], str]:
    if preset is None or preset == "none":
        return None, "none"
    if isinstance(preset, FaultPlan):
        return preset, preset.describe()
    factory = FAULT_PRESETS.get(preset)
    if factory is None:
        raise ValueError(f"unknown fault preset {preset!r} "
                         f"(have {sorted(FAULT_PRESETS)})")
    plan = factory(seed=seed)
    return plan, preset


def run_load_test(*, shards: int = 1, clients: int = 32,
                  duration_s: float = 1.5, warmup_s: float = 0.3,
                  seed: int = 0, app: str = "static",
                  latency_s: float = 0.02,
                  max_inflight: Optional[int] = 8,
                  max_connections: Optional[int] = None,
                  max_requests_per_connection: Optional[int] = None,
                  retry_after_s: float = 0.5,
                  preset: Union[None, str, FaultPlan] = None,
                  drain_s: float = 2.0,
                  honor_retry_after: bool = True, max_retries: int = 2,
                  timeout_s: float = 5.0,
                  paths: Optional[Sequence[str]] = None,
                  interval_s: float = 0.25,
                  metrics: Optional[MetricsRegistry] = None,
                  inprocess: bool = False,
                  time_scale: float = 1.0,
                  trace: bool = False,
                  telemetry_interval_s: Optional[float] = None,
                  timeseries_path: Optional[str] = None,
                  slo: Optional[Sequence[Objective]] = None,
                  live: bool = False) -> LoadTestResult:
    """One sustained-load run against a (possibly sharded) origin.

    ``inprocess=True`` serves shard 1 inside the driving event loop —
    no worker processes, for fast deterministic unit tests; otherwise a
    :class:`ServerFleet` of ``shards`` worker processes is spawned.

    Observability knobs (all off by default, zero overhead when off):
    ``trace`` runs driver clients and origin under real tracers with
    W3C trace-context propagation, landing pid-stamped span dicts in
    ``result.spans``; ``telemetry_interval_s``/``timeseries_path``
    stream per-interval registry deltas into a
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` (and JSONL on
    disk); ``slo`` evaluates objectives over that time series into
    ``result.slo_report``; ``live`` prints a per-interval ticker to
    stderr while the swarm runs.
    """
    if inprocess and shards != 1:
        raise ValueError("inprocess mode supports exactly one shard")
    plan, preset_name = _resolve_plan(preset, seed)
    registry = metrics if metrics is not None else MetricsRegistry()
    sample_interval_s = telemetry_interval_s or interval_s
    recorder = None
    if slo or timeseries_path is not None \
            or telemetry_interval_s is not None:
        recorder = TimeSeriesRecorder(interval_s=sample_interval_s,
                                      path=timeseries_path)
    tracer = Tracer() if trace else None
    config = FleetConfig(
        shards=shards, seed=seed, app=app, latency_s=latency_s,
        time_scale=time_scale, max_inflight=max_inflight,
        max_connections=max_connections,
        max_requests_per_connection=max_requests_per_connection,
        retry_after_s=retry_after_s, trace=trace,
        telemetry_interval_s=(sample_interval_s
                              if recorder is not None else None))
    if paths is None:
        paths = ["/index.html"] if app == "catalyst" else ["/"]
    result = LoadTestResult(
        shards=shards, clients=clients, duration_s=duration_s,
        warmup_s=warmup_s, seed=seed, app=app, latency_s=latency_s,
        max_inflight=max_inflight, preset=preset_name)
    started = time.perf_counter()
    try:
        if inprocess:
            asyncio.run(_run_inprocess(
                config, paths, result, plan, clients, duration_s,
                warmup_s, honor_retry_after, max_retries, timeout_s,
                interval_s, seed, drain_s, registry, tracer=tracer,
                recorder=recorder, live=live))
        else:
            _run_against_fleet(
                config, paths, result, plan, clients, duration_s,
                warmup_s, honor_retry_after, max_retries, timeout_s,
                interval_s, seed, drain_s, registry, tracer=tracer,
                recorder=recorder, live=live)
    finally:
        if recorder is not None:
            recorder.close()
    result.elapsed_s = time.perf_counter() - started
    if recorder is not None:
        result.timeseries = recorder.interval_snapshots()
    if slo:
        result.slo_report = evaluate_slo(list(slo), recorder)
    _emit_metrics(registry, result, interval_s)
    result.metrics_snapshot = registry.snapshot()
    return result


def _client_kwargs(honor_retry_after: bool, max_retries: int,
                   timeout_s: float, seed: int, index: int,
                   tracer=None) -> dict:
    return {
        "connections_per_origin": 1,
        "timeout_s": timeout_s,
        "max_retries": max_retries,
        "backoff_base_s": 0.02,
        "retry_seed": seed * 10_000 + index,
        "honor_retry_after": honor_retry_after,
        # overload 503s are expected here; don't let the breaker turn a
        # load test into a self-DoS of the measurement
        "breaker_threshold": 50,
        "breaker_open_s": 0.2,
        # one shared driver tracer: every client's http.request spans
        # (and the traceparent headers they inject) land in one ring
        "tracer": tracer,
    }


async def _live_ticker(tallies: _Tallies, interval_s: float,
                       stop_at: float) -> None:
    """Print one per-interval line to stderr while the swarm runs."""
    loop = asyncio.get_running_loop()
    last = {"sent": 0, "ok": 0, "shed": 0, "errors": 0}
    tick = 0
    while loop.time() < stop_at:
        await asyncio.sleep(min(interval_s, stop_at - loop.time()))
        tick += 1
        current = {"sent": tallies.sent, "ok": tallies.ok,
                   "shed": tallies.shed, "errors": tallies.errors}
        delta = {key: current[key] - last[key] for key in current}
        last = current
        print(f"[live] t={tick * interval_s:7.2f}s  "
              f"rps={delta['ok'] / interval_s:8.1f}  "
              f"sent={delta['sent']:6d}  ok={delta['ok']:6d}  "
              f"shed={delta['shed']:5d}  errors={delta['errors']:5d}",
              file=sys.stderr, flush=True)


async def _drive(base_url: str, paths: Sequence[str],
                 result: LoadTestResult, plan: Optional[FaultPlan],
                 clients: int, duration_s: float, warmup_s: float,
                 honor_retry_after: bool, max_retries: int,
                 timeout_s: float, interval_s: float, seed: int,
                 registry: MetricsRegistry, tracer=None,
                 live: bool = False) -> _Tallies:
    loop = asyncio.get_running_loop()
    tallies = _Tallies(interval_s)
    latency_hist = registry.histogram("load.latency_ms")
    t0 = loop.time()
    stop_at = t0 + warmup_s + duration_s
    ticker = None
    if live:
        ticker = asyncio.ensure_future(
            _live_ticker(tallies, interval_s, stop_at))
    swarm = [
        _client_loop(i, base_url, paths, stop_at,
                     t0 + warmup_s, plan,
                     _client_kwargs(honor_retry_after, max_retries,
                                    timeout_s, seed, i, tracer=tracer),
                     latency_hist, tallies)
        for i in range(clients)]
    finished = await asyncio.gather(*swarm)
    if ticker is not None:
        ticker.cancel()
        try:
            await ticker
        except asyncio.CancelledError:
            pass
    result.sent = tallies.sent
    result.ok = tallies.ok
    result.client_shed = tallies.shed
    result.errors = tallies.errors
    result.circuit_open = tallies.circuit_open
    result.faults_injected = tallies.faults
    result.retries_after_hint = sum(c.retries_after_hint
                                    for c in finished)
    result.series = tallies.series()
    result.latency_ms_p50 = latency_hist.percentile(50)
    result.latency_ms_p90 = latency_hist.percentile(90)
    result.latency_ms_p99 = latency_hist.percentile(99)
    return tallies


def _run_against_fleet(config: FleetConfig, paths, result, plan, clients,
                       duration_s, warmup_s, honor_retry_after,
                       max_retries, timeout_s, interval_s, seed,
                       drain_s, registry: MetricsRegistry, tracer=None,
                       recorder=None, live=False) -> None:
    fleet = ServerFleet(config).start()
    try:
        asyncio.run(_drive(fleet.base_url, paths, result, plan, clients,
                           duration_s, warmup_s, honor_retry_after,
                           max_retries, timeout_s, interval_s, seed,
                           registry, tracer=tracer, live=live))
        stats = fleet.stats()
        totals = stats["totals"]
        result.served_total = totals["requests_served"]
        result.shed_503 = totals["shed_503"]
        result.shed_connections = totals["shed_connections"]
        result.timeouts_408 = totals["timeouts_408"]
        registry.merge(fleet.merged_metrics().dump())
        if tracer is not None:
            # driver-side client spans + every worker's server spans,
            # all pid-stamped so export IDs never alias across processes
            result.spans = (
                [span_to_dict(span, pid=os.getpid())
                 for span in tracer.spans()]
                + fleet.collect_spans())
    finally:
        reports = fleet.stop(drain_s=drain_s)
        if reports:
            result.drain_s = max(r.get("drain_s", 0.0) for r in reports)
            result.hard_cancelled = sum(r.get("hard_cancelled", 0)
                                        for r in reports)
        if recorder is not None:
            # workers flush a final delta before their stopped reply,
            # so draining *after* stop() captures the whole run
            for message in fleet.drain_telemetry():
                recorder.record(message["delta"], message["t_s"],
                                source=message.get("pid"))


async def _sample_registry(metrics: MetricsRegistry, recorder,
                           interval_s: float) -> None:
    """In-process stand-in for the fleet telemetry loop.

    Diffs the server registry on the same cadence a worker would and
    feeds the recorder directly; flushes one final delta on cancel so
    the last partial interval reconciles exactly.
    """
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    previous: dict = {}

    def flush() -> dict:
        nonlocal previous
        current = metrics.dump()
        delta = diff_dumps(current, previous)
        previous = current
        return delta

    try:
        while True:
            await asyncio.sleep(interval_s)
            delta = flush()
            if delta:
                recorder.record(delta, loop.time() - t0,
                                source="inprocess")
    except asyncio.CancelledError:
        delta = flush()
        if delta:
            recorder.record(delta, loop.time() - t0, source="inprocess")
        raise


async def _run_inprocess(config: FleetConfig, paths, result, plan,
                         clients, duration_s, warmup_s,
                         honor_retry_after, max_retries, timeout_s,
                         interval_s, seed, drain_s,
                         registry: MetricsRegistry, tracer=None,
                         recorder=None, live=False) -> None:
    handler, stats_source = build_app(config)
    server_metrics = MetricsRegistry()
    # one process, one tracer: client and server spans share an ID
    # space, so traceparent round-trips resolve to real local parents
    server = AsyncHttpServer(
        handler, latency_s=config.latency_s,
        max_inflight=config.max_inflight,
        max_connections=config.max_connections,
        max_requests_per_connection=config.max_requests_per_connection,
        retry_after_s=config.retry_after_s, shed_seed=config.seed,
        metrics=server_metrics, stats_source=stats_source,
        tracer=tracer)
    await server.start()
    sampler = None
    if recorder is not None:
        sampler = asyncio.ensure_future(_sample_registry(
            server_metrics, recorder,
            config.telemetry_interval_s or interval_s))
    try:
        await _drive(server.base_url, paths, result, plan, clients,
                     duration_s, warmup_s, honor_retry_after,
                     max_retries, timeout_s, interval_s, seed, registry,
                     tracer=tracer, live=live)
        result.served_total = server.requests_served
        result.shed_503 = server.shed_503
        result.shed_connections = server.shed_connections
        result.timeouts_408 = server.timeouts_408
    finally:
        report = await server.stop(drain_s=drain_s)
        result.drain_s = report["drain_s"]
        result.hard_cancelled = report["hard_cancelled"]
        if sampler is not None:
            sampler.cancel()
            try:
                await sampler
            except asyncio.CancelledError:
                pass
        registry.merge(server_metrics.dump())
        if tracer is not None:
            result.spans = [span_to_dict(span, pid=os.getpid())
                            for span in tracer.spans()]


def _emit_metrics(registry: MetricsRegistry, result: LoadTestResult,
                  interval_s: float) -> None:
    """Fold the run's headline series into the registry."""
    registry.counter("load.sent").inc(result.sent)
    registry.counter("load.ok").inc(result.ok)
    registry.counter("load.shed").inc(result.shed_503
                                      + result.shed_connections)
    registry.counter("load.errors").inc(result.errors)
    registry.counter("load.circuit_open").inc(result.circuit_open)
    registry.counter("load.faults_injected").inc(result.faults_injected)
    registry.gauge("load.clients").set(result.clients)
    registry.gauge("load.shards").set(result.shards)
    registry.gauge("load.sustained_rps").set(result.sustained_rps)
    registry.gauge("load.shed_rate").set(result.shed_rate)
    registry.gauge("load.drain_s").set(result.drain_s)
    registry.gauge("load.hard_cancelled").set(result.hard_cancelled)
    interval_rps = registry.histogram("load.interval_rps")
    for bucket in result.series:
        interval_rps.observe(bucket["ok"] / interval_s)


def format_load_test(result: LoadTestResult) -> str:
    rows = [
        ["shards", str(result.shards)],
        ["clients", str(result.clients)],
        ["app / preset", f"{result.app} / {result.preset}"],
        ["inflight cap / shard", str(result.max_inflight)],
        ["service latency", f"{result.latency_s * 1e3:.0f} ms"],
        ["measured window", f"{result.duration_s:.1f} s "
                            f"(+{result.warmup_s:.1f} s warmup)"],
        ["sustained 200 rps", f"{result.sustained_rps:,.0f}"],
        ["offered rps", f"{result.offered_rps:,.0f}"],
        ["shed rate (server)", f"{result.shed_rate:.1%}"],
        ["shed 503 / conn", f"{result.shed_503} / "
                            f"{result.shed_connections}"],
        ["timeouts 408", str(result.timeouts_408)],
        ["latency p50/p90/p99", f"{result.latency_ms_p50:.1f} / "
                                f"{result.latency_ms_p90:.1f} / "
                                f"{result.latency_ms_p99:.1f} ms"],
        ["retry-after honoured", str(result.retries_after_hint)],
        ["circuit-open rejections", str(result.circuit_open)],
        ["faults injected", str(result.faults_injected)],
        ["client errors", str(result.errors)],
        ["drain", f"{result.drain_s * 1e3:.0f} ms, "
                  f"{result.hard_cancelled} hard-cancelled"],
    ]
    if result.spans:
        rows.append(["trace spans", str(len(result.spans))])
    table = format_table(["load test", "value"], rows)
    if result.slo_report is not None:
        table += "\n\n" + result.slo_report.format()
    return table


def load_test_payload(result: LoadTestResult) -> dict:
    """Machine-readable single-run artifact (manifest-stamped)."""
    payload = {
        "bench": "load_test",
        "schema_version": 1,
        "params": {
            "shards": result.shards, "clients": result.clients,
            "app": result.app, "preset": result.preset,
            "latency_s": result.latency_s,
            "max_inflight": result.max_inflight,
            "duration_s": result.duration_s,
        },
        "sustained_rps": round(result.sustained_rps, 1),
        "offered_rps": round(result.offered_rps, 1),
        "shed": {"rate": round(result.shed_rate, 4),
                 "shed_503": result.shed_503,
                 "shed_connections": result.shed_connections,
                 "timeouts_408": result.timeouts_408},
        "latency_ms": {"p50": round(result.latency_ms_p50, 2),
                       "p90": round(result.latency_ms_p90, 2),
                       "p99": round(result.latency_ms_p99, 2)},
        "drain": {"drain_s": round(result.drain_s, 4),
                  "hard_cancelled": result.hard_cancelled},
        "client": {"sent": result.sent, "ok": result.ok,
                   "errors": result.errors,
                   "circuit_open": result.circuit_open,
                   "retries_after_hint": result.retries_after_hint,
                   "faults_injected": result.faults_injected},
        "series": result.series,
    }
    if result.timeseries:
        payload["timeseries"] = result.timeseries
    if result.slo_report is not None:
        payload["slo"] = result.slo_report.payload()
    if result.spans:
        payload["trace"] = {"spans": len(result.spans)}
    return stamp(payload, build_manifest(
        config={"bench": "load_test", "shards": result.shards,
                "clients": result.clients, "app": result.app,
                "preset": result.preset, "seed": result.seed,
                "latency_s": result.latency_s,
                "max_inflight": result.max_inflight},
        sampling={"duration_s": result.duration_s,
                  "warmup_s": result.warmup_s},
        seeds=[result.seed], workers=result.shards,
        wall_time_s=result.elapsed_s or None))


# -- the sharding bench (BENCH_PR7 lane) ---------------------------------


@dataclass
class ScalingResult:
    """Single-shard ceiling vs N-shard SO_REUSEPORT scaling."""

    runs: dict  # shard count -> LoadTestResult
    seed: int
    elapsed_s: float = 0.0

    @property
    def shard_counts(self) -> list[int]:
        return sorted(self.runs)

    @property
    def scaling_x(self) -> float:
        counts = self.shard_counts
        base = self.runs[counts[0]].sustained_rps
        top = self.runs[counts[-1]].sustained_rps
        return top / base if base > 0 else 0.0


def run_scaling_bench(shard_counts: Sequence[int] = (1, 4), *,
                      clients: int = 64, duration_s: float = 2.0,
                      warmup_s: float = 0.4, seed: int = 0,
                      app: str = "static", latency_s: float = 0.02,
                      max_inflight: int = 8,
                      retry_after_s: float = 0.5) -> ScalingResult:
    """The sustained-rps lane: one config per shard count.

    The workload is deliberately admission-bound (per-request service
    time dominated by ``latency_s``, an I/O wait), so the ceiling is
    ``shards * max_inflight / latency_s`` and the scaling factor
    reflects the sharded front — not the host's core count.
    """
    started = time.perf_counter()
    runs: dict[int, LoadTestResult] = {}
    for shards in shard_counts:
        logger.info("scaling-bench-run", shards=shards, clients=clients)
        runs[shards] = run_load_test(
            shards=shards, clients=clients, duration_s=duration_s,
            warmup_s=warmup_s, seed=seed, app=app, latency_s=latency_s,
            max_inflight=max_inflight, retry_after_s=retry_after_s)
    return ScalingResult(runs=runs, seed=seed,
                         elapsed_s=time.perf_counter() - started)


def format_scaling(result: ScalingResult) -> str:
    rows = []
    for shards in result.shard_counts:
        run = result.runs[shards]
        ceiling = (shards * (run.max_inflight or 0) / run.latency_s
                   if run.latency_s > 0 and run.max_inflight else 0.0)
        rows.append([
            str(shards), f"{run.sustained_rps:,.0f}",
            f"{ceiling:,.0f}", f"{run.shed_rate:.1%}",
            f"{run.latency_ms_p99:.1f}",
            f"{run.drain_s * 1e3:.0f}"])
    table = format_table(
        ["shards", "sustained rps", "admission ceiling", "shed rate",
         "p99 ms", "drain ms"], rows)
    return (table + f"\n\nSO_REUSEPORT scaling: {result.scaling_x:.2f}x "
            f"({result.shard_counts[0]} -> {result.shard_counts[-1]} "
            f"shards)")


def scaling_bench_payload(result: ScalingResult) -> dict:
    """The ``BENCH_PR7.json`` serving-tier payload (manifest-stamped)."""
    first = result.runs[result.shard_counts[0]]
    sustained = {f"shards_{shards}":
                 round(result.runs[shards].sustained_rps, 1)
                 for shards in result.shard_counts}
    sustained["scaling_x"] = round(result.scaling_x, 3)
    payload = {
        "bench": "serving_tier",
        "schema_version": 1,
        "params": {"shard_counts": result.shard_counts,
                   "clients": first.clients, "app": first.app,
                   "latency_s": first.latency_s,
                   "max_inflight": first.max_inflight},
        "sustained_rps": sustained,
        "per_shard_count": {
            str(shards): {
                "sustained_rps": round(run.sustained_rps, 1),
                "offered_rps": round(run.offered_rps, 1),
                "shed_rate": round(run.shed_rate, 4),
                "latency_ms_p99": round(run.latency_ms_p99, 2),
                "drain_s": round(run.drain_s, 4),
                "hard_cancelled": run.hard_cancelled,
            } for shards, run in sorted(result.runs.items())},
    }
    return stamp(payload, build_manifest(
        config={"bench": "serving_tier",
                "shard_counts": list(result.shard_counts),
                "clients": first.clients, "app": first.app,
                "seed": result.seed, "latency_s": first.latency_s,
                "max_inflight": first.max_inflight},
        sampling={"duration_s": first.duration_s,
                  "warmup_s": first.warmup_s},
        seeds=[result.seed],
        workers=max(result.shard_counts),
        wall_time_s=result.elapsed_s or None))
