"""User-weighted expected benefit.

Figure 3 averages over five arbitrary delays; a deployment decision asks
a different question: *over a realistic population of revisits, what PLT
does a user actually save?*  This experiment samples revisit intervals
from :data:`~repro.workload.revisits.DEFAULT_REVISIT_MODEL` and reports
the distribution of per-revisit reductions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..browser.engine import BrowserConfig
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus, make_corpus
from ..workload.revisits import DEFAULT_REVISIT_MODEL, RevisitModel
from .stats import Summary, summarize

__all__ = ["UserWeightedResult", "run_user_weighted"]


@dataclass
class UserWeightedResult:
    """Distribution of per-revisit reductions over sampled intervals."""

    conditions: str
    reductions: list[float]
    delays_s: list[float]

    @property
    def summary(self) -> Summary:
        return summarize(self.reductions)

    def format(self) -> str:
        pct = summarize([r * 100.0 for r in self.reductions])
        return (f"{self.conditions}: user-weighted PLT reduction "
                f"mean {pct.mean:.1f}% "
                f"(95% CI [{pct.ci_low:.1f}%, {pct.ci_high:.1f}%]), "
                f"median {pct.median:.1f}%, "
                f"p10-p90 [{pct.p10:.1f}%, {pct.p90:.1f}%], n={pct.n}")


def run_user_weighted(corpus: Optional[Corpus] = None,
                      conditions: NetworkConditions = NetworkConditions.of(
                          60, 40, label="60Mbps/40ms"),
                      model: RevisitModel = DEFAULT_REVISIT_MODEL,
                      sites: int = 5, revisits_per_site: int = 4,
                      seed: int = 99,
                      base_config: BrowserConfig = BrowserConfig()
                      ) -> UserWeightedResult:
    """Sample (site, revisit-interval) pairs and measure each."""
    if corpus is None:
        corpus = make_corpus()
    subset = corpus.sample(sites, seed=seed).frozen()
    rng = random.Random(seed)
    reductions: list[float] = []
    delays: list[float] = []
    for site in subset:
        for delay_s in model.draw_many(rng, revisits_per_site):
            warm = {}
            for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
                setup = build_mode(mode, site, base_config)
                outcomes = run_visit_sequence(setup, conditions,
                                              [0.0, delay_s])
                warm[mode] = outcomes[1].result.plt_ms
            if warm[CachingMode.STANDARD] > 0:
                reductions.append(
                    (warm[CachingMode.STANDARD]
                     - warm[CachingMode.CATALYST])
                    / warm[CachingMode.STANDARD])
                delays.append(delay_s)
    return UserWeightedResult(conditions=conditions.describe(),
                              reductions=reductions, delays_s=delays)
