"""User-weighted expected benefit.

Figure 3 averages over five arbitrary delays; a deployment decision asks
a different question: *over a realistic population of revisits, what PLT
does a user actually save?*  This experiment draws revisit intervals
from :data:`~repro.workload.revisits.DEFAULT_REVISIT_MODEL` and reports
the distribution of per-revisit reductions.

It is a thin single-cohort view over the population engine
(:mod:`repro.workload.population`): :func:`user_weighted_spec` builds a
one-cohort, uniform-popularity :class:`PopulationSpec`, and the
measured revisits are the first ``sites * revisits_per_site`` warm
entries of its deterministic schedule — the same sampler the fleet
experiment shards across cohorts, so the two stay consistent by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..browser.engine import BrowserConfig
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus, make_corpus
from ..workload.population import CohortSpec, PopulationSpec, sample_visits
from ..workload.revisits import DEFAULT_REVISIT_MODEL, RevisitModel
from .stats import Summary, summarize

__all__ = ["UserWeightedResult", "run_user_weighted", "user_weighted_spec"]


@dataclass
class UserWeightedResult:
    """Distribution of per-revisit reductions over sampled intervals."""

    conditions: str
    reductions: list[float]
    delays_s: list[float]

    @property
    def summary(self) -> Summary:
        return summarize(self.reductions)

    def format(self) -> str:
        pct = summarize([r * 100.0 for r in self.reductions])
        return (f"{self.conditions}: user-weighted PLT reduction "
                f"mean {pct.mean:.1f}% "
                f"(95% CI [{pct.ci_low:.1f}%, {pct.ci_high:.1f}%]), "
                f"median {pct.median:.1f}%, "
                f"p10-p90 [{pct.p10:.1f}%, {pct.p90:.1f}%], n={pct.n}")


def user_weighted_spec(conditions: NetworkConditions,
                       model: RevisitModel = DEFAULT_REVISIT_MODEL,
                       sites: int = 5, revisits_per_site: int = 4,
                       seed: int = 99) -> PopulationSpec:
    """The single-cohort population behind :func:`run_user_weighted`.

    ``alpha=0`` makes site popularity uniform (the experiment samples
    its subset evenly, like the original bespoke loop); the visit
    budget leaves headroom so the first ``sites * revisits_per_site``
    *warm* schedule entries always exist.
    """
    n_pairs = sites * revisits_per_site
    return PopulationSpec(
        n_users=max(2, sites),
        n_sites=sites,
        cohorts=(CohortSpec("users", 1.0, conditions, model),),
        n_warmup=0,
        n_measured=4 * n_pairs,
        alpha=0.0,
        seed=seed,
    )


def run_user_weighted(corpus: Optional[Corpus] = None,
                      conditions: NetworkConditions = NetworkConditions.of(
                          60, 40, label="60Mbps/40ms"),
                      model: RevisitModel = DEFAULT_REVISIT_MODEL,
                      sites: int = 5, revisits_per_site: int = 4,
                      seed: int = 99,
                      base_config: Optional[BrowserConfig] = None
                      ) -> UserWeightedResult:
    """Measure the population sampler's first warm (site, delay) pairs.

    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    if corpus is None:
        corpus = make_corpus()
    subset = list(corpus.sample(sites, seed=seed).frozen())
    spec = user_weighted_spec(conditions=conditions, model=model,
                              sites=sites,
                              revisits_per_site=revisits_per_site,
                              seed=seed)
    visits = sample_visits(spec, sites * revisits_per_site,
                           measured_only=False, warm_only=True)
    reductions: list[float] = []
    delays: list[float] = []
    for visit in visits:
        site = subset[visit.site]
        delay_s = visit.delay_s
        warm = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site, base_config)
            outcomes = run_visit_sequence(setup, conditions,
                                          [0.0, delay_s])
            warm[mode] = outcomes[1].result.plt_ms
        if warm[CachingMode.STANDARD] > 0:
            reductions.append(
                (warm[CachingMode.STANDARD]
                 - warm[CachingMode.CATALYST])
                / warm[CachingMode.STANDARD])
            delays.append(delay_s)
    return UserWeightedResult(conditions=conditions.describe(),
                              reductions=reductions, delays_s=delays)
