"""Cross-page navigation: caching pays on pages never visited before.

The paper motivates caching with reuse "in future requests to the same
page **or other pages within the same website**" (§1).  This experiment
measures exactly that: load the homepage, then navigate to an inner page
for the *first time*.  Site-wide assets (theme CSS, framework JS, fonts)
are already cached; the inner page's own HTML staples their current
ETags, so CacheCatalyst serves them with zero round trips even though
this page has never been loaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..browser.engine import BrowserConfig
from ..core.modes import CachingMode, build_mode
from ..netsim.link import Link, NetworkConditions
from ..netsim.sim import Simulator
from ..workload.sitegen import SiteSpec, generate_site
from .report import format_pct, format_table

__all__ = ["CrossPageResult", "run_cross_page", "make_multipage_site"]


def make_multipage_site(seed: int = 1234, pages: int = 3,
                        shared_fraction: float = 0.6,
                        median_resources: int = 60) -> SiteSpec:
    """A site with a homepage plus inner pages sharing 60 % of assets."""
    return generate_site(
        origin=f"https://multipage{seed}.example", seed=seed,
        extra_pages=pages, shared_asset_fraction=shared_fraction,
        median_resources=median_resources)


@dataclass
class CrossPageResult:
    """PLTs of a homepage visit followed by first inner-page visits."""

    mode: str
    homepage_plt_ms: float
    #: per inner page: first-ever visit PLT, milliseconds
    inner_plts_ms: list[float]

    @property
    def mean_inner_plt_ms(self) -> float:
        return sum(self.inner_plts_ms) / len(self.inner_plts_ms)


def run_cross_page(site: SiteSpec | None = None,
                   conditions: NetworkConditions = NetworkConditions.of(
                       60, 40),
                   navigation_gap_s: float = 30.0,
                   modes: tuple[CachingMode, ...] = (
                       CachingMode.NO_CACHE, CachingMode.STANDARD,
                       CachingMode.CATALYST),
                   base_config: Optional[BrowserConfig] = None
                   ) -> list[CrossPageResult]:
    """Homepage at t=0, then each inner page 30 s apart, per mode.

    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    if site is None:
        site = make_multipage_site()
    inner_urls = [url for url in site.pages if url != "/index.html"]
    results = []
    for mode in modes:
        setup = build_mode(mode, site, base_config)
        sim = Simulator()
        link = Link(sim, conditions)
        home = sim.run_process(setup.session.load(
            sim, link, setup.handler, "/index.html",
            mode_label=mode.value, push_urls_fn=setup.push_urls_fn,
            session_id=setup.session_id))
        inner_plts = []
        for inner_url in inner_urls:
            sim.run(until=sim.now + navigation_gap_s)
            link = Link(sim, conditions)
            result = sim.run_process(setup.session.load(
                sim, link, setup.handler, inner_url,
                mode_label=mode.value, push_urls_fn=setup.push_urls_fn,
                session_id=setup.session_id))
            inner_plts.append(result.plt_ms)
        results.append(CrossPageResult(
            mode=mode.value, homepage_plt_ms=home.plt_ms,
            inner_plts_ms=inner_plts))
    return results


def format_cross_page(results: list[CrossPageResult]) -> str:
    baseline = next(r for r in results if r.mode == "no-cache")
    rows = []
    for result in results:
        saving = ((baseline.mean_inner_plt_ms - result.mean_inner_plt_ms)
                  / baseline.mean_inner_plt_ms)
        rows.append([result.mode, f"{result.homepage_plt_ms:.0f}",
                     f"{result.mean_inner_plt_ms:.0f}",
                     format_pct(saving)])
    return format_table(
        ["mode", "homepage PLT ms", "first inner-page PLT ms",
         "inner saving vs no-cache"], rows)


__all__.append("format_cross_page")
